//! A shelf (level-oriented) rectangle packer.
//!
//! The paper performs only a "trivial placement" — Σarea times an
//! overhead factor. The packer provides an independent cross-check: pack
//! the actual component outlines into a strip of the width predicted by
//! the [`SubstrateRule`](crate::SubstrateRule) and verify that they fit
//! with the claimed overhead. It is also used by the placement ablation
//! bench.

use ipass_units::Area;
use std::error::Error;
use std::fmt;

/// An axis-aligned rectangle to place, in mm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Width in mm.
    pub w: f64,
    /// Height in mm.
    pub h: f64,
}

impl Rect {
    /// Create a rectangle.
    ///
    /// # Panics
    ///
    /// Panics on non-positive or non-finite dimensions.
    pub fn new(w: f64, h: f64) -> Rect {
        assert!(
            w > 0.0 && h > 0.0 && w.is_finite() && h.is_finite(),
            "rectangle sides must be positive, got {w} × {h}"
        );
        Rect { w, h }
    }

    /// The rectangle's area.
    pub fn area(&self) -> Area {
        Area::rect_mm(self.w, self.h)
    }

    /// The rectangle rotated by 90°.
    pub fn rotated(&self) -> Rect {
        Rect {
            w: self.h,
            h: self.w,
        }
    }
}

/// A placed rectangle: position of the lower-left corner plus final
/// orientation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Index into the input rectangle list.
    pub index: usize,
    /// X of the lower-left corner (mm).
    pub x: f64,
    /// Y of the lower-left corner (mm).
    pub y: f64,
    /// Final size after optional rotation.
    pub rect: Rect,
    /// Whether the rectangle was rotated by 90°.
    pub rotated: bool,
}

impl Placement {
    /// Whether two placements overlap (touching edges is allowed).
    pub fn overlaps(&self, other: &Placement) -> bool {
        let eps = 1e-9;
        !(self.x + self.rect.w <= other.x + eps
            || other.x + other.rect.w <= self.x + eps
            || self.y + self.rect.h <= other.y + eps
            || other.y + other.rect.h <= self.y + eps)
    }
}

/// Error from a packing attempt.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PackError {
    /// A rectangle is wider than the strip even when rotated.
    TooWide {
        /// Index of the offending rectangle.
        index: usize,
        /// Its smaller side (mm).
        min_side: f64,
        /// The strip width (mm).
        strip_width: f64,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::TooWide {
                index,
                min_side,
                strip_width,
            } => write!(
                f,
                "rectangle #{index} (min side {min_side} mm) exceeds strip width {strip_width} mm"
            ),
        }
    }
}

impl Error for PackError {}

/// A next-fit decreasing-height shelf packer for a fixed strip width.
///
/// # Examples
///
/// ```
/// use ipass_layout::{Rect, ShelfPacker};
///
/// let parts = vec![Rect::new(2.0, 1.25); 8]; // eight 0805 bodies
/// let packing = ShelfPacker::new(8.0).pack(&parts)?; // 4 per shelf
/// assert_eq!(packing.placements().len(), 8);
/// // Shelf packing of equal rectangles is essentially perfect:
/// assert!(packing.utilization() > 0.95);
/// # Ok::<(), ipass_layout::PackError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShelfPacker {
    strip_width: f64,
    allow_rotation: bool,
}

impl ShelfPacker {
    /// Create a packer for a strip of the given width (mm), with
    /// rotation allowed.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive width.
    pub fn new(strip_width: f64) -> ShelfPacker {
        assert!(
            strip_width > 0.0 && strip_width.is_finite(),
            "strip width must be positive, got {strip_width}"
        );
        ShelfPacker {
            strip_width,
            allow_rotation: true,
        }
    }

    /// Forbid 90° rotation (for polarized or keyed components).
    pub fn without_rotation(mut self) -> ShelfPacker {
        self.allow_rotation = false;
        self
    }

    /// Pack rectangles onto shelves, sorted by decreasing height.
    ///
    /// # Errors
    ///
    /// Returns [`PackError::TooWide`] when a rectangle cannot fit the
    /// strip in either orientation.
    pub fn pack(&self, rects: &[Rect]) -> Result<Packing, PackError> {
        // Normalize: lay every rectangle flat (wider than tall) when
        // rotation is allowed, then sort by decreasing height.
        let mut items: Vec<(usize, Rect, bool)> = rects
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if self.allow_rotation && r.h > r.w {
                    (i, r.rotated(), true)
                } else {
                    (i, *r, false)
                }
            })
            .collect();
        for (i, r, _) in &items {
            if r.w > self.strip_width {
                let rotatable = self.allow_rotation && r.h <= self.strip_width;
                if !rotatable {
                    return Err(PackError::TooWide {
                        index: *i,
                        min_side: r.w.min(r.h),
                        strip_width: self.strip_width,
                    });
                }
            }
        }
        items.sort_by(|a, b| {
            b.1.h
                .partial_cmp(&a.1.h)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut placements = Vec::with_capacity(items.len());
        let mut shelf_y = 0.0f64;
        let mut shelf_height = 0.0f64;
        let mut cursor_x = 0.0f64;
        for (index, mut rect, mut rotated) in items {
            if rect.w > self.strip_width {
                rect = rect.rotated();
                rotated = !rotated;
            }
            if cursor_x + rect.w > self.strip_width + 1e-12 {
                // Open a new shelf.
                shelf_y += shelf_height;
                shelf_height = 0.0;
                cursor_x = 0.0;
            }
            placements.push(Placement {
                index,
                x: cursor_x,
                y: shelf_y,
                rect,
                rotated,
            });
            cursor_x += rect.w;
            shelf_height = shelf_height.max(rect.h);
        }
        let height = shelf_y + shelf_height;
        Ok(Packing {
            strip_width: self.strip_width,
            height,
            placements,
        })
    }
}

/// The result of a packing run.
#[derive(Debug, Clone, PartialEq)]
pub struct Packing {
    strip_width: f64,
    height: f64,
    placements: Vec<Placement>,
}

impl Packing {
    /// Assemble a packing from raw parts (used by the packers).
    pub(crate) fn from_parts(strip_width: f64, height: f64, placements: Vec<Placement>) -> Packing {
        Packing {
            strip_width,
            height,
            placements,
        }
    }

    /// The placements, in packing order.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Height of the used strip (mm).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// The bounding area actually used.
    pub fn bounding_area(&self) -> Area {
        Area::rect_mm(self.strip_width, self.height)
    }

    /// Component area over bounding area (0–1; higher is denser).
    pub fn utilization(&self) -> f64 {
        if self.height == 0.0 {
            return 0.0;
        }
        let used: f64 = self.placements.iter().map(|p| p.rect.w * p.rect.h).sum();
        used / (self.strip_width * self.height)
    }

    /// The packing overhead factor (bounding / component area; ≥ 1) —
    /// directly comparable to
    /// [`SubstrateRule::overhead`](crate::SubstrateRule::overhead).
    pub fn overhead(&self) -> f64 {
        let u = self.utilization();
        if u == 0.0 {
            f64::INFINITY
        } else {
            1.0 / u
        }
    }

    /// Verify the structural invariants: no overlaps, everything inside
    /// the strip. Mostly useful in tests and benches.
    pub fn validate(&self) -> bool {
        for (i, a) in self.placements.iter().enumerate() {
            if a.x < -1e-9
                || a.y < -1e-9
                || a.x + a.rect.w > self.strip_width + 1e-9
                || a.y + a.rect.h > self.height + 1e-9
            {
                return false;
            }
            for b in &self.placements[i + 1..] {
                if a.overlaps(b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipass_sim::SimRng;
    use proptest::prelude::*;

    #[test]
    fn packs_uniform_parts_tightly() {
        let parts = vec![Rect::new(2.0, 1.0); 10];
        let packing = ShelfPacker::new(10.0).pack(&parts).unwrap();
        assert!(packing.validate());
        assert_eq!(packing.placements().len(), 10);
        assert!((packing.height() - 2.0).abs() < 1e-9);
        assert!((packing.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_saves_space() {
        // Tall skinny parts must be laid flat to fit a low strip.
        let parts = vec![Rect::new(1.0, 8.0); 4];
        let with_rot = ShelfPacker::new(8.0).pack(&parts).unwrap();
        assert!(with_rot.validate());
        assert!(with_rot.placements().iter().all(|p| p.rotated));
        let without = ShelfPacker::new(8.0)
            .without_rotation()
            .pack(&parts)
            .unwrap();
        assert!(without.height() >= with_rot.height());
    }

    #[test]
    fn too_wide_is_an_error() {
        let err = ShelfPacker::new(5.0)
            .without_rotation()
            .pack(&[Rect::new(6.0, 1.0)])
            .unwrap_err();
        assert!(matches!(err, PackError::TooWide { index: 0, .. }));
        assert!(err.to_string().contains("strip width"));
    }

    #[test]
    fn rotation_rescues_wide_parts() {
        let packing = ShelfPacker::new(5.0).pack(&[Rect::new(6.0, 1.0)]).unwrap();
        assert!(packing.validate());
        assert!(packing.placements()[0].rotated);
    }

    #[test]
    fn empty_input_is_empty_packing() {
        let packing = ShelfPacker::new(5.0).pack(&[]).unwrap();
        assert_eq!(packing.placements().len(), 0);
        assert_eq!(packing.height(), 0.0);
        assert_eq!(packing.utilization(), 0.0);
        assert!(packing.overhead().is_infinite());
        assert!(packing.validate());
    }

    #[test]
    fn mcm_overhead_claim_is_achievable() {
        // The paper's 1.1 factor: pack a realistic GPS-like component mix
        // into the strip the MCM rule would allocate and check the shelf
        // packer achieves ≤ ~1.35 overhead (shelf packing is not optimal,
        // so the claimed 1.1 with hand layout is plausible).
        let mut parts = vec![
            Rect::new(5.3, 5.3), // RF die (WB)
            Rect::new(9.4, 9.4), // DSP die (WB)
        ];
        parts.extend(std::iter::repeat_n(Rect::new(1.6 + 0.95, 0.8 + 0.95), 100)); // 0603 footprints
        parts.extend(std::iter::repeat_n(Rect::new(2.0 + 1.0, 1.25 + 1.0), 8)); // 0805 footprints
        parts.extend(std::iter::repeat_n(Rect::new(5.5, 5.0), 4)); // filter modules
        let total: f64 = parts.iter().map(|r| r.area().mm2()).sum();
        let strip = (1.1 * total).sqrt();
        let packing = ShelfPacker::new(strip).pack(&parts).unwrap();
        assert!(packing.validate());
        assert!(
            packing.overhead() < 1.35,
            "shelf overhead {:.3} should approach the trivial-placement claim",
            packing.overhead()
        );
    }

    #[test]
    fn overlap_detection_works() {
        let a = Placement {
            index: 0,
            x: 0.0,
            y: 0.0,
            rect: Rect::new(2.0, 2.0),
            rotated: false,
        };
        let mut b = a;
        b.index = 1;
        b.x = 1.0;
        assert!(a.overlaps(&b));
        b.x = 2.0; // touching is fine
        assert!(!a.overlaps(&b));
        b.x = 0.0;
        b.y = 2.0;
        assert!(!a.overlaps(&b));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rect_rejected() {
        let _ = Rect::new(0.0, 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn packing_never_overlaps(seed in 0u64..500, n in 1usize..60, strip in 5.0f64..50.0) {
            let mut rng = SimRng::stream(seed, 0);
            let rects: Vec<Rect> = (0..n)
                .map(|_| Rect::new(rng.range_f64(0.2, 4.0), rng.range_f64(0.2, 4.0)))
                .collect();
            let packing = ShelfPacker::new(strip).pack(&rects).unwrap();
            prop_assert!(packing.validate());
            prop_assert_eq!(packing.placements().len(), n);
            // Conservation: bounding area ≥ component area.
            let total: f64 = rects.iter().map(|r| r.area().mm2()).sum();
            prop_assert!(packing.bounding_area().mm2() >= total - 1e-6);
        }
    }
}
