//! Substrate sizing rules (Table 1) and the BGA laminate carrier.

use ipass_units::Area;
use std::fmt;

/// A substrate sizing rule: components are placed with a technology-
/// dependent routing overhead and the board gets an edge clearance.
///
/// The resulting (square) substrate side is
/// `√(overhead × Σarea / sides) + 2 × edge`.
///
/// # Examples
///
/// ```
/// use ipass_layout::SubstrateRule;
/// use ipass_units::Area;
///
/// let rule = SubstrateRule::mcm_d_si();
/// let area = rule.required_area(Area::from_mm2(100.0));
/// // √110 ≈ 10.49 mm, +2 mm edge → 12.49² ≈ 156 mm².
/// assert!((area.mm2() - 156.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SubstrateRule {
    name: &'static str,
    overhead: f64,
    sides: u8,
    edge_clearance_mm: f64,
}

impl SubstrateRule {
    /// Table 1's MCM-D(Si) rule: `1.1 × Σarea` + 1 mm edge clearance on
    /// either side. Thin-film fine lines route almost on top of the
    /// components.
    pub fn mcm_d_si() -> SubstrateRule {
        SubstrateRule {
            name: "MCM-D(Si)",
            overhead: 1.1,
            sides: 1,
            edge_clearance_mm: 1.0,
        }
    }

    /// The PCB reference rule: double-sided FR4 assembly with a 1.78×
    /// routing/keep-out overhead per side (net board area ≈ 0.89 ×
    /// Σarea) and a 1 mm board edge.
    ///
    /// FR4 design rules (fan-out of QFP packages, vias, test points)
    /// consume far more area per component than thin film; mounting on
    /// both sides wins some of it back. The 1.78 factor is calibrated so
    /// the GPS case study reproduces the paper's Fig. 3 ladder.
    pub fn pcb_double_sided() -> SubstrateRule {
        SubstrateRule {
            name: "PCB (double-sided FR4)",
            overhead: 1.78,
            sides: 2,
            edge_clearance_mm: 1.0,
        }
    }

    /// A custom rule.
    ///
    /// # Panics
    ///
    /// Panics when the overhead is below 1, `sides` is not 1 or 2, or the
    /// clearance is negative.
    pub fn custom(
        name: &'static str,
        overhead: f64,
        sides: u8,
        edge_clearance_mm: f64,
    ) -> SubstrateRule {
        assert!(
            overhead >= 1.0 && overhead.is_finite(),
            "routing overhead must be ≥ 1, got {overhead}"
        );
        assert!(
            sides == 1 || sides == 2,
            "sides must be 1 or 2, got {sides}"
        );
        assert!(
            edge_clearance_mm >= 0.0 && edge_clearance_mm.is_finite(),
            "edge clearance must be non-negative, got {edge_clearance_mm}"
        );
        SubstrateRule {
            name,
            overhead,
            sides,
            edge_clearance_mm,
        }
    }

    /// Rule name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Routing/assembly overhead factor (≥ 1).
    pub fn overhead(&self) -> f64 {
        self.overhead
    }

    /// Assembly sides (1 or 2).
    pub fn sides(&self) -> u8 {
        self.sides
    }

    /// Edge clearance in mm (added on either side).
    pub fn edge_clearance_mm(&self) -> f64 {
        self.edge_clearance_mm
    }

    /// The side length (mm) of the square substrate needed for
    /// `component_area` of mounted components.
    pub fn required_side_mm(&self, component_area: Area) -> f64 {
        let core = self.overhead * component_area.mm2() / f64::from(self.sides);
        core.sqrt() + 2.0 * self.edge_clearance_mm
    }

    /// The substrate area needed for `component_area` of components.
    pub fn required_area(&self, component_area: Area) -> Area {
        let side = self.required_side_mm(component_area);
        Area::rect_mm(side, side)
    }
}

impl fmt::Display for SubstrateRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}× overhead, {} side(s), {} mm edge)",
            self.name, self.overhead, self.sides, self.edge_clearance_mm
        )
    }
}

/// The BGA laminate carrier an MCM-D silicon substrate is mounted onto
/// (Table 1: "Laminate: total area silicon substrate + 5 mm edge
/// clearance on either side").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BgaLaminate {
    edge_clearance_mm: f64,
}

impl BgaLaminate {
    /// The paper's 5 mm clearance.
    pub fn standard() -> BgaLaminate {
        BgaLaminate {
            edge_clearance_mm: 5.0,
        }
    }

    /// A custom clearance (e.g. for finer BGA pitches).
    ///
    /// # Panics
    ///
    /// Panics on negative clearance.
    pub fn with_clearance_mm(edge_clearance_mm: f64) -> BgaLaminate {
        assert!(
            edge_clearance_mm >= 0.0 && edge_clearance_mm.is_finite(),
            "clearance must be non-negative, got {edge_clearance_mm}"
        );
        BgaLaminate { edge_clearance_mm }
    }

    /// Clearance in mm.
    pub fn edge_clearance_mm(&self) -> f64 {
        self.edge_clearance_mm
    }

    /// The module (laminate) area for a silicon substrate of
    /// `silicon_area` (assumed square).
    pub fn module_area(&self, silicon_area: Area) -> Area {
        let side = silicon_area.square_side_mm() + 2.0 * self.edge_clearance_mm;
        Area::rect_mm(side, side)
    }

    /// The module side length in mm.
    pub fn module_side_mm(&self, silicon_area: Area) -> f64 {
        silicon_area.square_side_mm() + 2.0 * self.edge_clearance_mm
    }
}

impl Default for BgaLaminate {
    fn default() -> BgaLaminate {
        BgaLaminate::standard()
    }
}

impl fmt::Display for BgaLaminate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BGA laminate (+{} mm edge)", self.edge_clearance_mm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mcm_rule_matches_table1() {
        let rule = SubstrateRule::mcm_d_si();
        assert_eq!(rule.overhead(), 1.1);
        assert_eq!(rule.sides(), 1);
        assert_eq!(rule.edge_clearance_mm(), 1.0);
        // 100 mm² of components: √110 + 2 ≈ 12.488 mm side.
        let side = rule.required_side_mm(Area::from_mm2(100.0));
        assert!((side - 12.488).abs() < 0.01);
    }

    #[test]
    fn pcb_rule_is_net_denser_but_coarser() {
        let pcb = SubstrateRule::pcb_double_sided();
        // Per placed component the PCB consumes 1.78×, but two sides make
        // the *board* smaller than single-sided MCM for equal Σarea…
        let a = Area::from_mm2(1000.0);
        let pcb_area = pcb.required_area(a);
        let mcm_area = SubstrateRule::mcm_d_si().required_area(a);
        assert!(pcb_area.mm2() < mcm_area.mm2());
        // …which is exactly why the MCM only wins via smaller components.
    }

    #[test]
    fn laminate_adds_10mm_to_the_side() {
        let si = Area::from_mm2(810.0); // ≈ 28.46 mm side
        let module = BgaLaminate::standard().module_area(si);
        let expect = (810.0f64.sqrt() + 10.0).powi(2);
        assert!((module.mm2() - expect).abs() < 1e-9);
        assert!(
            (BgaLaminate::standard().module_side_mm(si) - (810.0f64.sqrt() + 10.0)).abs() < 1e-12
        );
    }

    #[test]
    fn zero_components_still_need_the_edge() {
        let rule = SubstrateRule::mcm_d_si();
        let area = rule.required_area(Area::ZERO);
        assert!((area.mm2() - 4.0).abs() < 1e-9); // (2×1 mm)²
    }

    #[test]
    fn custom_rule_validation() {
        let ok = SubstrateRule::custom("x", 1.5, 2, 0.5);
        assert_eq!(ok.name(), "x");
        assert!(ok.to_string().contains("1.5"));
    }

    #[test]
    #[should_panic(expected = "routing overhead")]
    fn overhead_below_one_rejected() {
        let _ = SubstrateRule::custom("bad", 0.9, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "sides")]
    fn three_sides_rejected() {
        let _ = SubstrateRule::custom("bad", 1.2, 3, 1.0);
    }

    #[test]
    #[should_panic(expected = "clearance")]
    fn negative_clearance_rejected() {
        let _ = BgaLaminate::with_clearance_mm(-1.0);
    }

    proptest! {
        #[test]
        fn area_is_monotone_in_components(a in 0.0f64..1e5, extra in 0.1f64..1e4) {
            let rule = SubstrateRule::mcm_d_si();
            let small = rule.required_area(Area::from_mm2(a));
            let large = rule.required_area(Area::from_mm2(a + extra));
            prop_assert!(large.mm2() > small.mm2());
        }

        #[test]
        fn substrate_always_fits_components(a in 1.0f64..1e5) {
            // The sized substrate is at least as big as the raw component
            // area divided over the sides.
            let rule = SubstrateRule::pcb_double_sided();
            let sized = rule.required_area(Area::from_mm2(a));
            prop_assert!(sized.mm2() >= a * rule.overhead() / 2.0);
        }
    }
}
