//! Property test: on randomly generated production lines, the Monte
//! Carlo engine converges to the analytic engine — the strongest
//! correctness check the two independent implementations give each other.

use ipass_moe::{
    Attach, CostCategory, FailAction, Flow, Line, Part, Process, Rework, SimOptions, StepCost,
    Test, YieldModel,
};
use ipass_units::{Money, Probability};
use proptest::prelude::*;

fn p(v: f64) -> Probability {
    Probability::clamped(v)
}

#[derive(Debug, Clone)]
enum StageSpec {
    Process {
        cost: f64,
        yield_: f64,
    },
    Attach {
        part_cost: f64,
        part_yield: f64,
        qty: u32,
    },
    Test {
        cost: f64,
        coverage: f64,
        rework: Option<(f64, f64, u32)>,
    },
}

fn stage_strategy() -> impl Strategy<Value = StageSpec> {
    prop_oneof![
        (0.0f64..5.0, 0.8f64..1.0).prop_map(|(cost, yield_)| StageSpec::Process { cost, yield_ }),
        (0.0f64..20.0, 0.85f64..1.0, 1u32..4).prop_map(|(part_cost, part_yield, qty)| {
            StageSpec::Attach {
                part_cost,
                part_yield,
                qty,
            }
        }),
        (
            0.0f64..3.0,
            0.7f64..1.0,
            proptest::option::of((0.0f64..2.0, 0.2f64..0.9, 1u32..3))
        )
            .prop_map(|(cost, coverage, rework)| StageSpec::Test {
                cost,
                coverage,
                rework
            }),
    ]
}

fn build_flow(carrier_cost: f64, carrier_yield: f64, stages: &[StageSpec]) -> Flow {
    let mut builder = Line::builder(
        "random",
        Part::new("carrier", CostCategory::Substrate)
            .with_cost(StepCost::fixed(Money::new(carrier_cost)))
            .with_incoming_yield(YieldModel::flat(p(carrier_yield))),
    );
    for (i, spec) in stages.iter().enumerate() {
        builder = match spec {
            StageSpec::Process { cost, yield_ } => builder.process(
                Process::new(format!("proc{i}"))
                    .with_cost(StepCost::fixed(Money::new(*cost)))
                    .with_yield(YieldModel::flat(p(*yield_))),
            ),
            StageSpec::Attach {
                part_cost,
                part_yield,
                qty,
            } => builder.attach(
                Attach::new(format!("attach{i}"))
                    .input(
                        Part::new(format!("part{i}"), CostCategory::Chip)
                            .with_cost(StepCost::fixed(Money::new(*part_cost)))
                            .with_incoming_yield(YieldModel::flat(p(*part_yield))),
                        *qty,
                    )
                    .with_cost(StepCost::per_item(Money::new(0.1), *qty)),
            ),
            StageSpec::Test {
                cost,
                coverage,
                rework,
            } => {
                let action = match rework {
                    Some((rc, rs, attempts)) => FailAction::Rework(Rework::new(
                        StepCost::fixed(Money::new(*rc)),
                        p(*rs),
                        *attempts,
                    )),
                    None => FailAction::Scrap,
                };
                builder.test(
                    Test::new(format!("test{i}"))
                        .with_cost(StepCost::fixed(Money::new(*cost)))
                        .with_coverage(p(*coverage))
                        .on_fail(action),
                )
            }
        };
    }
    Flow::new(builder.build().expect("non-empty line"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn mc_converges_to_analytic(
        carrier_cost in 1.0f64..20.0,
        carrier_yield in 0.85f64..1.0,
        stages in proptest::collection::vec(stage_strategy(), 1..6),
        seed in 0u64..1_000,
    ) {
        let flow = build_flow(carrier_cost, carrier_yield, &stages);
        let analytic = flow.analyze().expect("random line ships something");
        let mc = flow
            .simulate(&SimOptions::new(60_000).with_seed(seed))
            .expect("simulation runs");
        // Shipped fraction: binomial std error ≈ sqrt(p(1-p)/n) < 0.21%.
        prop_assert!(
            (mc.shipped_fraction() - analytic.shipped_fraction()).abs() < 0.012,
            "shipped {} vs {}",
            mc.shipped_fraction(),
            analytic.shipped_fraction()
        );
        // Final cost within 2.5% (cost estimator has higher variance).
        let rel = mc.final_cost_per_shipped().units() / analytic.final_cost_per_shipped().units();
        prop_assert!((rel - 1.0).abs() < 0.025, "cost ratio {rel}");
        // Escapes agree in absolute terms.
        prop_assert!(
            (mc.escape_rate() - analytic.escape_rate()).abs() < 0.01,
            "escapes {} vs {}",
            mc.escape_rate(),
            analytic.escape_rate()
        );
        // Category totals are conserved: Σ categories = total spend.
        let cat_total = analytic.by_category().total();
        prop_assert!(
            (cat_total.units() - analytic.total_spend().units()).abs() < 1e-6,
            "category sum {} vs total {}",
            cat_total,
            analytic.total_spend()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn mc_error_shrinks_as_units_grow(
        carrier_cost in 1.0f64..20.0,
        carrier_yield in 0.85f64..1.0,
        stages in proptest::collection::vec(stage_strategy(), 1..5),
        seed in 0u64..1_000,
    ) {
        // The Monte Carlo estimate converges on the analytic value: the
        // worst shipped-fraction error over the growing unit ladder must
        // come down, ending within the binomial noise floor.
        let flow = build_flow(carrier_cost, carrier_yield, &stages);
        let analytic = flow.analyze().expect("random line ships something");
        let errors: Vec<f64> = [500u64, 5_000, 50_000, 500_000]
            .iter()
            .map(|&units| {
                let mc = flow
                    .simulate(&SimOptions::new(units).with_seed(seed))
                    .expect("simulation runs");
                (mc.shipped_fraction() - analytic.shipped_fraction()).abs()
            })
            .collect();
        let first = errors.first().copied().unwrap();
        let last = errors.last().copied().unwrap();
        prop_assert!(
            last <= first.max(0.004) && last < 0.004,
            "errors did not converge: {errors:?}"
        );
    }

    #[test]
    fn thread_count_never_changes_the_report(
        carrier_cost in 1.0f64..20.0,
        carrier_yield in 0.85f64..1.0,
        stages in proptest::collection::vec(stage_strategy(), 1..5),
        seed in 0u64..1_000,
    ) {
        // The determinism contract, end to end on random lines: the
        // full CostReport (every floating-point field, the defect
        // pareto, everything) is bit-identical for 1 vs 8 threads.
        let flow = build_flow(carrier_cost, carrier_yield, &stages);
        let single = flow
            .simulate(&SimOptions::new(20_000).with_seed(seed).with_threads(1))
            .expect("simulation runs");
        let eight = flow
            .simulate(&SimOptions::new(20_000).with_seed(seed).with_threads(8))
            .expect("simulation runs");
        prop_assert_eq!(single, eight);
    }
}
