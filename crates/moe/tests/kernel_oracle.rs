//! The compiled routing kernel against the interpreter oracle: on
//! randomly generated production lines — including nested subassembly
//! lines, rework loops and early stopping — the kernel must reproduce
//! the PR-1 interpreter **bit for bit**, for every thread count.
//!
//! This is the determinism half of the engine story (the statistical
//! half lives in `engine_agreement.rs`): compilation may precompute and
//! flatten, but it must not change which random draws a unit consumes,
//! their order, or any floating-point accumulation order.

use ipass_moe::{
    simulate_line_reference, Attach, CostCategory, FailAction, Flow, Line, Part, Process, Rework,
    SimOptions, StepCost, StopRule, Test, YieldModel,
};
use ipass_units::{Money, Probability};
use proptest::prelude::*;

fn p(v: f64) -> Probability {
    Probability::clamped(v)
}

#[derive(Debug, Clone)]
enum StageSpec {
    Process {
        cost: f64,
        yield_: f64,
    },
    Attach {
        part_cost: f64,
        part_yield: f64,
        qty: u32,
    },
    /// An attach consuming a nested line's output: sub-carrier cost, a
    /// fab yield, whether the sub-line ends in a probe test, and the
    /// consumed quantity.
    SubLine {
        sub_cost: f64,
        sub_yield: f64,
        tested: bool,
        qty: u32,
    },
    Test {
        cost: f64,
        coverage: f64,
        rework: Option<(f64, f64, u32)>,
    },
}

fn stage_strategy() -> impl Strategy<Value = StageSpec> {
    prop_oneof![
        (0.0f64..5.0, 0.8f64..1.0).prop_map(|(cost, yield_)| StageSpec::Process { cost, yield_ }),
        (0.0f64..20.0, 0.85f64..1.0, 1u32..4).prop_map(|(part_cost, part_yield, qty)| {
            StageSpec::Attach {
                part_cost,
                part_yield,
                qty,
            }
        }),
        (0.5f64..8.0, 0.7f64..1.0, proptest::bool::ANY, 1u32..3).prop_map(
            |(sub_cost, sub_yield, tested, qty)| StageSpec::SubLine {
                sub_cost,
                sub_yield,
                tested,
                qty,
            }
        ),
        (
            0.0f64..3.0,
            0.7f64..1.0,
            proptest::option::of((0.0f64..2.0, 0.2f64..0.9, 1u32..3))
        )
            .prop_map(|(cost, coverage, rework)| StageSpec::Test {
                cost,
                coverage,
                rework
            }),
    ]
}

fn build_flow(carrier_cost: f64, carrier_yield: f64, stages: &[StageSpec]) -> Flow {
    let mut builder = Line::builder(
        "random",
        Part::new("carrier", CostCategory::Substrate)
            .with_cost(StepCost::fixed(Money::new(carrier_cost)))
            .with_incoming_yield(YieldModel::flat(p(carrier_yield))),
    );
    for (i, spec) in stages.iter().enumerate() {
        builder = match spec {
            StageSpec::Process { cost, yield_ } => builder.process(
                Process::new(format!("proc{i}"))
                    .with_cost(StepCost::fixed(Money::new(*cost)))
                    .with_yield(YieldModel::flat(p(*yield_))),
            ),
            StageSpec::Attach {
                part_cost,
                part_yield,
                qty,
            } => builder.attach(
                Attach::new(format!("attach{i}"))
                    .input(
                        Part::new(format!("part{i}"), CostCategory::Chip)
                            .with_cost(StepCost::fixed(Money::new(*part_cost)))
                            .with_incoming_yield(YieldModel::flat(p(*part_yield))),
                        *qty,
                    )
                    .with_cost(StepCost::per_item(Money::new(0.1), *qty)),
            ),
            StageSpec::SubLine {
                sub_cost,
                sub_yield,
                tested,
                qty,
            } => {
                let mut sub = Line::builder(
                    format!("sub{i}"),
                    Part::new(format!("blank{i}"), CostCategory::Substrate)
                        .with_cost(StepCost::fixed(Money::new(*sub_cost))),
                )
                .process(
                    Process::new(format!("fab{i}")).with_yield(YieldModel::flat(p(*sub_yield))),
                );
                if *tested {
                    sub = sub.test(Test::new(format!("probe{i}")).with_coverage(p(0.95)));
                }
                builder.attach(
                    Attach::new(format!("join{i}"))
                        .input(sub.build().expect("sub-line is non-empty"), *qty)
                        .with_yield(YieldModel::flat(p(0.99))),
                )
            }
            StageSpec::Test {
                cost,
                coverage,
                rework,
            } => {
                let action = match rework {
                    Some((rc, rs, attempts)) => FailAction::Rework(Rework::new(
                        StepCost::fixed(Money::new(*rc)),
                        p(*rs),
                        *attempts,
                    )),
                    None => FailAction::Scrap,
                };
                builder.test(
                    Test::new(format!("test{i}"))
                        .with_cost(StepCost::fixed(Money::new(*cost)))
                        .with_coverage(p(*coverage))
                        .on_fail(action),
                )
            }
        };
    }
    Flow::new(builder.build().expect("non-empty line"))
        .with_nre(Money::new(500.0))
        .with_volume(10_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn kernel_is_bit_identical_to_interpreter(
        carrier_cost in 1.0f64..20.0,
        carrier_yield in 0.85f64..1.0,
        stages in proptest::collection::vec(stage_strategy(), 1..6),
        seed in 0u64..1_000,
    ) {
        let flow = build_flow(carrier_cost, carrier_yield, &stages);
        let opts = SimOptions::new(20_000).with_seed(seed);
        let kernel = flow.simulate_summary(&opts).expect("kernel runs");
        let oracle = simulate_line_reference(flow.line(), flow.nre(), flow.volume(), &opts, None)
            .expect("oracle runs");
        // Full structural equality: every count, every floating-point
        // sum, the defect pareto, the rework and sub-unit tallies.
        prop_assert_eq!(kernel, oracle);
    }

    #[test]
    fn kernel_is_bit_identical_across_thread_counts(
        carrier_cost in 1.0f64..20.0,
        carrier_yield in 0.85f64..1.0,
        stages in proptest::collection::vec(stage_strategy(), 1..5),
        seed in 0u64..1_000,
    ) {
        let flow = build_flow(carrier_cost, carrier_yield, &stages);
        let single = flow
            .simulate_summary(&SimOptions::new(20_000).with_seed(seed).with_threads(1))
            .expect("kernel runs");
        for threads in [2, 4, 8] {
            let multi = flow
                .simulate_summary(&SimOptions::new(20_000).with_seed(seed).with_threads(threads))
                .expect("kernel runs");
            prop_assert_eq!(&single, &multi, "threads = {}", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn adaptive_kernel_matches_adaptive_interpreter(
        carrier_cost in 1.0f64..20.0,
        stages in proptest::collection::vec(stage_strategy(), 1..4),
        seed in 0u64..1_000,
    ) {
        // Early stopping folds at deterministic chunk boundaries, so
        // the stopping point — and everything after it — must agree
        // between the engines too.
        let flow = build_flow(carrier_cost, 0.95, &stages);
        let stop = StopRule::half_width_95(0.02);
        let opts = SimOptions::new(500_000).with_seed(seed);
        let kernel = flow.simulate_adaptive(&opts, stop).expect("kernel runs");
        let oracle =
            simulate_line_reference(flow.line(), flow.nre(), flow.volume(), &opts, Some(stop))
                .expect("oracle runs");
        prop_assert_eq!(kernel, oracle);
    }
}

/// Golden pin for the nested-subassembly flow (carrier + 2-deep attach
/// with retries, rework loop behind the final test): the exact seeded
/// values the PR-1 interpreter produced. If this test fails, the
/// engines did not merely drift — seeded reproducibility across
/// releases is broken.
fn nested_flow() -> Flow {
    let sub = Line::builder(
        "subassembly",
        Part::new("blank", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(4.0))),
    )
    .process(
        Process::new("fab")
            .with_cost(StepCost::fixed(Money::new(1.5)))
            .with_yield(YieldModel::percent(82.0)),
    )
    .test(
        Test::new("probe")
            .with_cost(StepCost::fixed(Money::new(0.2)))
            .with_coverage(p(0.97)),
    )
    .build()
    .unwrap();
    let line = Line::builder(
        "main",
        Part::new("pcb", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(2.0))),
    )
    .attach(
        Attach::new("join")
            .input(sub, 2)
            .input(
                Part::new("die", CostCategory::Chip)
                    .with_cost(StepCost::fixed(Money::new(7.0)))
                    .with_incoming_yield(YieldModel::flat(p(0.95))),
                3,
            )
            .with_cost(StepCost::per_item(Money::new(0.05), 5))
            .with_yield(YieldModel::percent(98.5)),
    )
    .test(
        Test::new("ft")
            .with_cost(StepCost::fixed(Money::new(1.0)))
            .with_coverage(p(0.96))
            .on_fail(FailAction::Rework(Rework::new(
                StepCost::fixed(Money::new(0.8)),
                p(0.55),
                2,
            ))),
    )
    .build()
    .unwrap();
    Flow::new(line)
        .with_nre(Money::new(10_000.0))
        .with_volume(50_000)
}

#[test]
fn golden_nested_flow_seed7() {
    let flow = nested_flow();
    for threads in [1usize, 2, 4, 8] {
        let s = flow
            .simulate_summary(&SimOptions::new(60_000).with_seed(7).with_threads(threads))
            .unwrap();
        let r = &s.report;
        assert_eq!(r.started(), 60_000.0, "threads {threads}");
        assert_eq!(r.shipped(), 58_243.0);
        assert_eq!(r.good_shipped(), 57_600.0);
        assert_eq!(r.total_spend().units(), 2_307_458.400_000_031_6);
        assert_eq!(r.shipped_embodied().units(), 2_094_856.150_000_032_7);
        assert_eq!(r.by_category()[CostCategory::Chip].units(), 1_260_000.0);
        assert_eq!(r.by_category()[CostCategory::Substrate].units(), 700_800.0);
        assert_eq!(r.by_category()[CostCategory::Assembly].units(), 232_800.0);
        assert_eq!(
            r.by_category()[CostCategory::Test].units(),
            102_828.000_000_000_83
        );
        assert_eq!(
            r.by_category()[CostCategory::Other].units(),
            11_030.399_999_999_989
        );
        assert_eq!(s.scrapped, 26_957.0);
        assert_eq!(s.rework_attempts, 13_788);
        assert_eq!(s.sub_units_built, 145_200);
        assert!(!s.stopped_early);
        let pareto = r.defect_pareto();
        assert_eq!(pareto[0].0, "subassembly/fab");
        assert_eq!(pareto[0].1, 0.433_45);
        assert_eq!(pareto[1].0, "join/die (incoming)");
        assert_eq!(pareto[1].1, 0.138_733_333_333_333_32);
        assert_eq!(pareto[2].0, "join");
        assert_eq!(pareto[2].1, 0.014_966_666_666_666_666);
    }
}

#[test]
fn golden_nested_flow_adaptive_seed9() {
    let flow = nested_flow();
    for threads in [1usize, 4] {
        let s = flow
            .simulate_adaptive(
                &SimOptions::new(1_000_000)
                    .with_seed(9)
                    .with_threads(threads),
                StopRule::half_width_95(0.004),
            )
            .unwrap();
        let r = &s.report;
        assert!(s.stopped_early, "threads {threads}");
        assert_eq!(r.started(), 15_625.0);
        assert_eq!(r.shipped(), 15_177.0);
        assert_eq!(r.good_shipped(), 15_013.0);
        assert_eq!(r.total_spend().units(), 601_873.450_000_135_1);
        assert_eq!(r.shipped_embodied().units(), 545_905.650_000_141_4);
        assert_eq!(s.scrapped, 7_182.0);
        assert_eq!(s.rework_attempts, 3_588);
        assert_eq!(s.sub_units_built, 37_984);
    }
}
