//! Property tests for the static verifier: on randomly generated
//! production lines — nested subassembly lines, rework loops, zero
//! coverages, the low-yield regime — every freshly compiled program
//! must verify with zero errors, and every number either engine
//! produces must fall inside the verifier's [`StaticBounds`]:
//! per-started-unit cost, shipped fraction, rework attempts, sub-unit
//! builds, and — read off the probe plane's exact per-unit draw
//! counters, across lane widths — RNG draws consumed. The probed
//! [`RunStats`] snapshot itself must be bit-identical across thread
//! counts, and width-invariant in its core.
//!
//! [`RunStats`]: ipass_moe::RunStats

use ipass_moe::{
    Attach, CostCategory, FailAction, Flow, Line, Part, Probe, Process, Rework, SimOptions,
    StepCost, Test, YieldModel, DEFAULT_SUBASSEMBLY_RETRY_BUDGET,
};
use ipass_units::{Money, Probability};
use proptest::prelude::*;

fn p(v: f64) -> Probability {
    Probability::clamped(v)
}

#[derive(Debug, Clone)]
enum StageSpec {
    Process {
        cost: f64,
        yield_: f64,
    },
    Attach {
        part_cost: f64,
        part_yield: f64,
        qty: u32,
    },
    /// An attach consuming a nested line's output.
    SubLine {
        sub_cost: f64,
        sub_yield: f64,
        tested: bool,
        qty: u32,
    },
    Test {
        cost: f64,
        coverage: f64,
        rework: Option<(f64, f64, u32)>,
    },
}

fn stage_strategy() -> impl Strategy<Value = StageSpec> {
    prop_oneof![
        (0.0f64..5.0, 0.1f64..=1.0).prop_map(|(cost, yield_)| StageSpec::Process { cost, yield_ }),
        (0.0f64..20.0, 0.5f64..=1.0, 1u32..4).prop_map(|(part_cost, part_yield, qty)| {
            StageSpec::Attach {
                part_cost,
                part_yield,
                qty,
            }
        }),
        // Sub-line yields stay ≥ 0.4 so expected retry counts remain
        // far inside the retry budget (see the analytic-containment
        // caveat in the `verify` module docs).
        (0.5f64..8.0, 0.4f64..1.0, proptest::bool::ANY, 1u32..3).prop_map(
            |(sub_cost, sub_yield, tested, qty)| StageSpec::SubLine {
                sub_cost,
                sub_yield,
                tested,
                qty,
            }
        ),
        (
            0.0f64..3.0,
            0.0f64..=1.0,
            proptest::option::of((0.0f64..2.0, 0.0f64..=1.0, 0u32..4))
        )
            .prop_map(|(cost, coverage, rework)| StageSpec::Test {
                cost,
                coverage,
                rework
            }),
    ]
}

fn build_flow(carrier_cost: f64, carrier_yield: f64, stages: &[StageSpec]) -> Flow {
    let mut builder = Line::builder(
        "random",
        Part::new("carrier", CostCategory::Substrate)
            .with_cost(StepCost::fixed(Money::new(carrier_cost)))
            .with_incoming_yield(YieldModel::flat(p(carrier_yield))),
    );
    for (i, spec) in stages.iter().enumerate() {
        builder = match spec {
            StageSpec::Process { cost, yield_ } => builder.process(
                Process::new(format!("proc{i}"))
                    .with_cost(StepCost::fixed(Money::new(*cost)))
                    .with_yield(YieldModel::flat(p(*yield_))),
            ),
            StageSpec::Attach {
                part_cost,
                part_yield,
                qty,
            } => builder.attach(
                Attach::new(format!("attach{i}"))
                    .input(
                        Part::new(format!("part{i}"), CostCategory::Chip)
                            .with_cost(StepCost::fixed(Money::new(*part_cost)))
                            .with_incoming_yield(YieldModel::flat(p(*part_yield))),
                        *qty,
                    )
                    .with_cost(StepCost::per_item(Money::new(0.1), *qty)),
            ),
            StageSpec::SubLine {
                sub_cost,
                sub_yield,
                tested,
                qty,
            } => {
                let mut sub = Line::builder(
                    format!("sub{i}"),
                    Part::new(format!("blank{i}"), CostCategory::Substrate)
                        .with_cost(StepCost::fixed(Money::new(*sub_cost))),
                )
                .process(
                    Process::new(format!("fab{i}")).with_yield(YieldModel::flat(p(*sub_yield))),
                );
                if *tested {
                    sub = sub.test(Test::new(format!("probe{i}")).with_coverage(p(0.95)));
                }
                builder.attach(
                    Attach::new(format!("join{i}"))
                        .input(sub.build().expect("sub-line is non-empty"), *qty)
                        .with_yield(YieldModel::flat(p(0.99))),
                )
            }
            StageSpec::Test {
                cost,
                coverage,
                rework,
            } => {
                let action = match rework {
                    Some((rc, rs, attempts)) => FailAction::Rework(Rework::new(
                        StepCost::fixed(Money::new(*rc)),
                        p(*rs),
                        *attempts,
                    )),
                    None => FailAction::Scrap,
                };
                builder.test(
                    Test::new(format!("test{i}"))
                        .with_cost(StepCost::fixed(Money::new(*cost)))
                        .with_coverage(p(*coverage))
                        .on_fail(action),
                )
            }
        };
    }
    Flow::new(builder.build().expect("non-empty line"))
        .with_nre(Money::new(500.0))
        .with_volume(10_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every freshly compiled program passes structural verification:
    /// compilation may never emit a program that violates the invariant
    /// catalog. (Warnings are legitimate — the generator produces
    /// zero-coverage tests and zero-attempt rework on purpose.)
    #[test]
    fn compiled_programs_verify_without_errors(
        carrier_cost in 0.5f64..20.0,
        carrier_yield in 0.5f64..=1.0,
        stages in proptest::collection::vec(stage_strategy(), 1..6),
    ) {
        let flow = build_flow(carrier_cost, carrier_yield, &stages);
        let diags = flow.compiled().unwrap().verify();
        prop_assert!(!diags.has_errors(), "errors on a compiled program:\n{diags}");
    }

    /// Both engines land inside the verifier's static intervals: the
    /// analytic expectation and the Monte Carlo estimate of
    /// per-started-unit cost and shipped fraction, and the Monte Carlo
    /// rework-attempt and sub-build totals against `units × bound`.
    #[test]
    fn engine_reports_fall_inside_static_bounds(
        carrier_cost in 0.5f64..20.0,
        carrier_yield in 0.5f64..=1.0,
        stages in proptest::collection::vec(stage_strategy(), 1..6),
        seed in 0u64..1_000,
    ) {
        let flow = build_flow(carrier_cost, carrier_yield, &stages);
        let compiled = flow.compiled().unwrap();
        let bounds = compiled
            .static_bounds(DEFAULT_SUBASSEMBLY_RETRY_BUDGET)
            .unwrap();

        if let Ok(report) = compiled.analyze() {
            // total_spend excludes NRE, matching the bounds' scope.
            let per_started = report.total_spend().units() / report.started();
            prop_assert!(
                bounds.cost_per_unit.contains(per_started),
                "analytic {per_started} outside {:?}", bounds.cost_per_unit
            );
            prop_assert!(bounds.shipped_fraction.contains(report.shipped_fraction()));
        }

        let units = 2_000u64;
        match compiled.simulate_summary(&SimOptions::new(units).with_seed(seed)) {
            Ok(summary) => {
                let report = &summary.report;
                let per_started = report.total_spend().units() / report.started();
                prop_assert!(
                    bounds.cost_per_unit.contains(per_started),
                    "mc {per_started} outside {:?}", bounds.cost_per_unit
                );
                prop_assert!(bounds.shipped_fraction.contains(report.shipped_fraction()));
                prop_assert!(
                    summary.rework_attempts
                        <= bounds.rework_per_unit.hi.saturating_mul(units)
                );
                prop_assert!(summary.rework_attempts >= bounds.rework_per_unit.lo * units);
                prop_assert!(
                    summary.sub_units_built
                        <= bounds.sub_builds_per_unit.hi.saturating_mul(units)
                );
                prop_assert!(summary.sub_units_built >= bounds.sub_builds_per_unit.lo * units);
            }
            // A flow that ships (essentially) nothing is a legal
            // generator outcome; the bounds have nothing to contain.
            Err(e) => prop_assert!(
                matches!(e, ipass_moe::FlowError::NothingShipped { .. }),
                "unexpected MC failure: {e}"
            ),
        }
    }

    /// The draw budget is sound per unit: the probe plane counts each
    /// unit's actual RNG consumption exactly (off the counter-based
    /// generator's stream position), and the measured min/max must land
    /// inside `bounds.draws_per_unit` — the interval the lane kernel's
    /// run-batching budget relies on. The simulated report must also be
    /// identical across lane widths.
    #[test]
    fn measured_draws_stay_inside_the_budget_across_lane_widths(
        carrier_cost in 0.5f64..20.0,
        carrier_yield in 0.5f64..=1.0,
        stages in proptest::collection::vec(stage_strategy(), 1..6),
        seed in 0u64..1_000,
    ) {
        let flow = build_flow(carrier_cost, carrier_yield, &stages);
        let compiled = flow.compiled().unwrap();
        let bounds = compiled
            .static_bounds(DEFAULT_SUBASSEMBLY_RETRY_BUDGET)
            .unwrap();
        match compiled.simulate_summary(
            &SimOptions::new(300).with_seed(seed).with_probe(Probe::ON),
        ) {
            Ok(summary) => {
                let stats = summary.stats.expect("probed run carries stats");
                prop_assert_eq!(stats.units, 300);
                prop_assert!(
                    bounds.draws_per_unit.contains(stats.draws_min)
                        && bounds.draws_per_unit.contains(stats.draws_max),
                    "draw range [{}, {}] escapes bounds {:?}",
                    stats.draws_min,
                    stats.draws_max,
                    bounds.draws_per_unit
                );
                prop_assert_eq!(stats.rework_attempts, summary.rework_attempts);
                prop_assert_eq!(stats.sub_units_built, summary.sub_units_built);
            }
            Err(e) => prop_assert!(
                matches!(
                    e,
                    ipass_moe::FlowError::NothingShipped { .. }
                        | ipass_moe::FlowError::SubassemblyStarved { .. }
                ),
                "unexpected routing failure: {e}"
            ),
        }

        let units = 500u64;
        let widths = [1usize, 4, 64];
        let reports: Vec<_> = widths
            .iter()
            .map(|&w| {
                compiled.simulate_summary(
                    &SimOptions::new(units).with_seed(seed).with_lane_width(w),
                )
            })
            .collect();
        match &reports[0] {
            Ok(base) => {
                for (w, r) in widths.iter().zip(&reports).skip(1) {
                    let r = r.as_ref().unwrap_or_else(|e| {
                        panic!("width {w} failed where width 1 succeeded: {e}")
                    });
                    prop_assert_eq!(&base.report, &r.report, "lane width {} diverged", w);
                    prop_assert_eq!(base.rework_attempts, r.rework_attempts);
                    prop_assert_eq!(base.sub_units_built, r.sub_units_built);
                }
            }
            Err(e) => prop_assert!(matches!(
                e,
                ipass_moe::FlowError::NothingShipped { .. }
                    | ipass_moe::FlowError::SubassemblyStarved { .. }
            )),
        }
    }

    /// The deterministic plane's promise: a probed [`RunStats`] is
    /// bit-identical for any thread count (full equality, lanes
    /// histogram included — chunk geometry depends only on `units`),
    /// and its [`invariant_core`] — everything except the
    /// width-dependent lane-occupancy histogram and the racy memo
    /// counters — is additionally identical across lane widths.
    ///
    /// [`RunStats`]: ipass_moe::RunStats
    /// [`invariant_core`]: ipass_moe::RunStats::invariant_core
    #[test]
    fn probed_run_stats_are_invariant_across_threads_and_widths(
        carrier_cost in 0.5f64..20.0,
        carrier_yield in 0.5f64..=1.0,
        stages in proptest::collection::vec(stage_strategy(), 1..6),
        seed in 0u64..1_000,
    ) {
        let flow = build_flow(carrier_cost, carrier_yield, &stages);
        let compiled = flow.compiled().unwrap();
        let units = 600u64;
        let run = |threads: usize, width: usize| {
            compiled.simulate_summary(
                &SimOptions::new(units)
                    .with_seed(seed)
                    .with_threads(threads)
                    .with_lane_width(width)
                    .with_probe(Probe::ON),
            )
        };
        match run(1, 4) {
            Ok(base) => {
                let base_stats = base.stats.expect("probed run carries stats");
                for threads in [2usize, 8] {
                    let r = run(threads, 4).unwrap_or_else(|e| {
                        panic!("{threads} threads failed where 1 succeeded: {e}")
                    });
                    prop_assert_eq!(
                        base_stats,
                        r.stats.expect("probed run carries stats"),
                        "RunStats diverged at {} threads",
                        threads
                    );
                }
                for width in [1usize, 64] {
                    let r = run(1, width).unwrap_or_else(|e| {
                        panic!("width {width} failed where 4 succeeded: {e}")
                    });
                    prop_assert_eq!(
                        base_stats.invariant_core(),
                        r.stats.expect("probed run carries stats").invariant_core(),
                        "invariant core diverged at lane width {}",
                        width
                    );
                }
            }
            Err(e) => prop_assert!(matches!(
                e,
                ipass_moe::FlowError::NothingShipped { .. }
                    | ipass_moe::FlowError::SubassemblyStarved { .. }
            )),
        }
    }
}
