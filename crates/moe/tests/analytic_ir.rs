//! The IR cohort walker against the `Line`-walking analytic oracle: on
//! randomly generated production lines — including nested subassembly
//! lines and rework loops — `Flow::analyze` (which evaluates the
//! compiled `RoutingProgram`) must reproduce the original object-graph
//! engine to 1e-12 relative, on every report field.
//!
//! This is the analytic half of the compiled-engine story (the Monte
//! Carlo half lives in `kernel_oracle.rs`): lowering cohort propagation
//! onto precomputed ops may reorder nothing and re-derive nothing — the
//! op fields are the *same* floats the oracle computes per walk, so the
//! two engines may diverge only through the benign `1 − (1 − y)`
//! round-trip the generic step op applies to the carrier's entry mass.

use ipass_moe::{
    analyze_line_reference, Attach, CostCategory, CostReport, FailAction, Flow, Line, Part,
    Process, Rework, SimOptions, StepCost, Test, YieldModel,
};
use ipass_units::{Money, Probability};
use proptest::prelude::*;
use proptest::TestCaseError;

fn p(v: f64) -> Probability {
    Probability::clamped(v)
}

#[derive(Debug, Clone)]
enum StageSpec {
    Process {
        cost: f64,
        yield_: f64,
    },
    Attach {
        part_cost: f64,
        part_yield: f64,
        qty: u32,
    },
    /// An attach consuming a nested line's output.
    SubLine {
        sub_cost: f64,
        sub_yield: f64,
        tested: bool,
        qty: u32,
    },
    Test {
        cost: f64,
        coverage: f64,
        rework: Option<(f64, f64, u32)>,
    },
}

fn stage_strategy() -> impl Strategy<Value = StageSpec> {
    prop_oneof![
        // Yields range down to 0.1: the analytic engines must agree in
        // the low-yield regime the MC property tests avoid (no draw
        // streams to starve here).
        (0.0f64..5.0, 0.1f64..=1.0).prop_map(|(cost, yield_)| StageSpec::Process { cost, yield_ }),
        (0.0f64..20.0, 0.5f64..=1.0, 1u32..4).prop_map(|(part_cost, part_yield, qty)| {
            StageSpec::Attach {
                part_cost,
                part_yield,
                qty,
            }
        }),
        (0.5f64..8.0, 0.4f64..1.0, proptest::bool::ANY, 1u32..3).prop_map(
            |(sub_cost, sub_yield, tested, qty)| StageSpec::SubLine {
                sub_cost,
                sub_yield,
                tested,
                qty,
            }
        ),
        (
            0.0f64..3.0,
            0.0f64..=1.0,
            proptest::option::of((0.0f64..2.0, 0.0f64..=1.0, 1u32..4))
        )
            .prop_map(|(cost, coverage, rework)| StageSpec::Test {
                cost,
                coverage,
                rework
            }),
    ]
}

fn build_flow(carrier_cost: f64, carrier_yield: f64, stages: &[StageSpec]) -> Flow {
    let mut builder = Line::builder(
        "random",
        Part::new("carrier", CostCategory::Substrate)
            .with_cost(StepCost::fixed(Money::new(carrier_cost)))
            .with_incoming_yield(YieldModel::flat(p(carrier_yield))),
    );
    for (i, spec) in stages.iter().enumerate() {
        builder = match spec {
            StageSpec::Process { cost, yield_ } => builder.process(
                Process::new(format!("proc{i}"))
                    .with_cost(StepCost::fixed(Money::new(*cost)))
                    .with_yield(YieldModel::flat(p(*yield_))),
            ),
            StageSpec::Attach {
                part_cost,
                part_yield,
                qty,
            } => builder.attach(
                Attach::new(format!("attach{i}"))
                    .input(
                        Part::new(format!("part{i}"), CostCategory::Chip)
                            .with_cost(StepCost::fixed(Money::new(*part_cost)))
                            .with_incoming_yield(YieldModel::flat(p(*part_yield))),
                        *qty,
                    )
                    .with_cost(StepCost::per_item(Money::new(0.1), *qty)),
            ),
            StageSpec::SubLine {
                sub_cost,
                sub_yield,
                tested,
                qty,
            } => {
                let mut sub = Line::builder(
                    format!("sub{i}"),
                    Part::new(format!("blank{i}"), CostCategory::Substrate)
                        .with_cost(StepCost::fixed(Money::new(*sub_cost))),
                )
                .process(
                    Process::new(format!("fab{i}")).with_yield(YieldModel::flat(p(*sub_yield))),
                );
                if *tested {
                    sub = sub.test(Test::new(format!("probe{i}")).with_coverage(p(0.95)));
                }
                builder.attach(
                    Attach::new(format!("join{i}"))
                        .input(sub.build().expect("sub-line is non-empty"), *qty)
                        .with_yield(YieldModel::flat(p(0.99))),
                )
            }
            StageSpec::Test {
                cost,
                coverage,
                rework,
            } => {
                let action = match rework {
                    Some((rc, rs, attempts)) => FailAction::Rework(Rework::new(
                        StepCost::fixed(Money::new(*rc)),
                        p(*rs),
                        *attempts,
                    )),
                    None => FailAction::Scrap,
                };
                builder.test(
                    Test::new(format!("test{i}"))
                        .with_cost(StepCost::fixed(Money::new(*cost)))
                        .with_coverage(p(*coverage))
                        .on_fail(action),
                )
            }
        };
    }
    Flow::new(builder.build().expect("non-empty line"))
        .with_nre(Money::new(500.0))
        .with_volume(10_000)
}

/// `|a − b| ≤ 1e-12 · max(1, |a|, |b|)` on every scalar of the report.
fn assert_reports_match(ir: &CostReport, oracle: &CostReport) -> Result<(), TestCaseError> {
    let close = |a: f64, b: f64, what: &str| -> Result<(), TestCaseError> {
        prop_assert!(
            (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0),
            "{what}: IR {a} vs oracle {b}"
        );
        Ok(())
    };
    close(ir.started(), oracle.started(), "started")?;
    close(ir.shipped(), oracle.shipped(), "shipped")?;
    close(ir.good_shipped(), oracle.good_shipped(), "good_shipped")?;
    close(
        ir.total_spend().units(),
        oracle.total_spend().units(),
        "total_spend",
    )?;
    close(
        ir.shipped_embodied().units(),
        oracle.shipped_embodied().units(),
        "shipped_embodied",
    )?;
    close(
        ir.final_cost_per_shipped().units(),
        oracle.final_cost_per_shipped().units(),
        "final_cost_per_shipped",
    )?;
    for cat in CostCategory::ALL {
        close(
            ir.by_category()[cat].units(),
            oracle.by_category()[cat].units(),
            cat.label(),
        )?;
    }
    let ir_pareto = ir.defect_pareto();
    let oracle_pareto = oracle.defect_pareto();
    prop_assert_eq!(ir_pareto.len(), oracle_pareto.len());
    for ((na, va), (nb, vb)) in ir_pareto.iter().zip(oracle_pareto.iter()) {
        prop_assert_eq!(na, nb);
        close(*va, *vb, na)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn ir_walker_matches_line_oracle(
        carrier_cost in 1.0f64..20.0,
        carrier_yield in 0.0f64..=1.0,
        stages in proptest::collection::vec(stage_strategy(), 1..6),
        seed in 0u64..1_000,
    ) {
        // `seed` only perturbs the generated structure mix.
        let _ = seed;
        let flow = build_flow(carrier_cost, carrier_yield, &stages);
        let ir = flow.analyze();
        let oracle = analyze_line_reference(flow.line(), flow.nre(), flow.volume());
        match (ir, oracle) {
            (Ok(ir), Ok(oracle)) => assert_reports_match(&ir, &oracle)?,
            // Degenerate inputs may legitimately ship nothing — then
            // both engines must say so.
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "engines disagree on failure: IR {:?} vs oracle {:?}", a, b),
        }
    }

    #[test]
    fn patched_point_matches_rebuilt_line(
        carrier_cost in 1.0f64..20.0,
        scale in 0.25f64..4.0,
        yield_ in 0.3f64..=0.999,
    ) {
        // One representative structured case: patching (carrier cost,
        // process yield) must equal rebuilding the line with those
        // values — the contract the patched sweeps rely on.
        let build = |cost: f64| {
            Flow::new(
                Line::builder(
                    "family",
                    Part::new("carrier", CostCategory::Substrate)
                        .with_cost(StepCost::fixed(Money::new(cost))),
                )
                .process(Process::new("work").with_yield(YieldModel::flat(p(0.9))))
                .test(Test::new("probe").with_coverage(p(0.97)))
                .build()
                .expect("non-empty line"),
            )
        };
        let base = build(carrier_cost);
        let compiled = base.compiled().expect("valid line");
        let mut patch = compiled.patch();
        patch
            .set_cost("carrier", Money::new(carrier_cost * scale))
            .expect("carrier slot exists")
            .set_yield("work", Probability::new(yield_).unwrap())
            .expect("yield slot exists");
        let patched = patch.analyze().expect("patched flow ships");

        let rebuilt_flow = Flow::new(
            Line::builder(
                "family",
                Part::new("carrier", CostCategory::Substrate)
                    .with_cost(StepCost::fixed(Money::new(carrier_cost * scale))),
            )
            .process(Process::new("work").with_yield(YieldModel::flat(p(yield_))))
            .test(Test::new("probe").with_coverage(p(0.97)))
            .build()
            .expect("non-empty line"),
        );
        let rebuilt = rebuilt_flow.analyze().expect("rebuilt flow ships");
        assert_reports_match(&patched, &rebuilt)?;
    }
}

/// MC-vs-analytic agreement must survive the IR lowering end to end:
/// the two compiled engines read the *same* program.
#[test]
fn both_compiled_engines_share_one_program_truth() {
    let flow = build_flow(
        5.0,
        0.95,
        &[
            StageSpec::Attach {
                part_cost: 8.0,
                part_yield: 0.93,
                qty: 2,
            },
            StageSpec::Test {
                cost: 1.0,
                coverage: 0.98,
                rework: Some((0.5, 0.6, 2)),
            },
        ],
    );
    let analytic = flow.analyze().unwrap();
    let mc = flow
        .simulate(&SimOptions::new(200_000).with_seed(21))
        .unwrap();
    assert!((analytic.shipped_fraction() - mc.shipped_fraction()).abs() < 0.005);
    let rel = mc.final_cost_per_shipped().units() / analytic.final_cost_per_shipped().units();
    assert!((rel - 1.0).abs() < 0.01, "relative error {rel}");
}
