//! Golden renders of a [`Diagnostics`] report through the
//! `ipass-report` sinks: the aligned-text and JSON forms of a report
//! carrying at least one diagnostic of every severity are pinned
//! byte-for-byte, so the `ipass lint` output and the docs-book artifact
//! stay stable (the `regen` drift gate relies on deterministic bytes).

use ipass_moe::{Diagnostic, Diagnostics, Severity};
use ipass_report::{Artifact, Format};

fn report() -> Diagnostics {
    let mut d = Diagnostics::new("demo flow");
    d.push(Diagnostic::new(
        Severity::Error,
        "threshold-mismatch",
        "wire bonding",
        "stored draw threshold 42 but \u{2308}p\u{b7}2\u{2075}\u{b3}\u{2309} = 43 for p = 0.9",
    ));
    d.push(Diagnostic::new(
        Severity::Warning,
        "zero-coverage-test",
        "final test",
        "test has zero fault coverage: it books cost but can detect nothing",
    ));
    d.push(Diagnostic::new(
        Severity::Info,
        "cost-category-never-booked",
        "program",
        "no op books the packaging category; its breakdown share is structurally zero",
    ));
    d
}

#[test]
fn txt_render_is_pinned() {
    let artifact = Artifact::Findings(report().artifact());
    let txt = artifact.render(Format::Txt).unwrap();
    let expected = "\
lint — demo flow
severity  code                        path          message
error     threshold-mismatch          wire bonding  stored draw threshold 42 but ⌈p·2⁵³⌉ = 43 for p = 0.9
warning   zero-coverage-test          final test    test has zero fault coverage: it books cost but can detect nothing
info      cost-category-never-booked  program       no op books the packaging category; its breakdown share is structurally zero
note: 1 error(s), 1 warning(s), 1 info(s); `ipass lint --deny-warnings` fails on warnings and errors
";
    assert_eq!(txt, expected);
}

#[test]
fn json_render_is_pinned() {
    let artifact = Artifact::Findings(report().artifact());
    let json = artifact.render(Format::Json).unwrap();
    let expected = r#"{
  "kind": "findings",
  "title": "lint — demo flow",
  "counts": {
    "error": 1,
    "warning": 1,
    "info": 1
  },
  "items": [
    {
      "severity": "error",
      "code": "threshold-mismatch",
      "path": "wire bonding",
      "message": "stored draw threshold 42 but ⌈p·2⁵³⌉ = 43 for p = 0.9"
    },
    {
      "severity": "warning",
      "code": "zero-coverage-test",
      "path": "final test",
      "message": "test has zero fault coverage: it books cost but can detect nothing"
    },
    {
      "severity": "info",
      "code": "cost-category-never-booked",
      "path": "program",
      "message": "no op books the packaging category; its breakdown share is structurally zero"
    }
  ],
  "notes": [
    "1 error(s), 1 warning(s), 1 info(s); `ipass lint --deny-warnings` fails on warnings and errors"
  ]
}
"#;
    assert_eq!(json, expected);
}

#[test]
fn renders_are_deterministic_and_cover_every_severity() {
    let artifact = Artifact::Findings(report().artifact());
    for format in artifact.formats() {
        let once = artifact.render(format).unwrap();
        assert_eq!(once, artifact.render(format).unwrap(), "{format}");
        for severity in ["error", "warning", "info"] {
            assert!(once.contains(severity), "{format} misses {severity}");
        }
    }
}
