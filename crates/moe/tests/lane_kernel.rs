//! The batched lane kernel against the scalar walk and the interpreter
//! oracle: for every lane width, every thread count and every flow
//! shape — including degenerate probabilities, rework loops, nested
//! sub-lines and flows that ship nothing — the seeded results must be
//! **bit-identical**. Lane width and thread count are performance
//! knobs; if any of them changes a single bit of a [`CostReport`], the
//! kernel is wrong.
//!
//! (`kernel_oracle.rs` pins the compiled kernel against the PR-1
//! interpreter at the default width; this suite pins the width/thread
//! *invariance* of the kernel itself, with generators biased toward the
//! lane kernel's edge cases.)

use ipass_moe::{
    simulate_line_reference, Attach, CostCategory, FailAction, Flow, Line, Part, Process, Rework,
    SimOptions, StepCost, StopRule, Test, YieldModel,
};
use ipass_units::{Money, Probability};
use proptest::prelude::*;
use proptest::OneOf;

/// Every lane width with a monomorphized kernel (1 is the scalar walk;
/// 16/32/64 additionally have explicit SIMD kernels on AVX-512 builds).
const WIDTHS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn p(v: f64) -> Probability {
    Probability::clamped(v)
}

/// A step yield, deliberately including the exact degenerate values:
/// `p ≤ 0` compiles to a condemning op and `p ≥ 1` to a pure cost op,
/// and neither consumes a draw — the lane kernel must agree on both
/// the routing and the draw-stream positions that follow.
fn yield_strategy() -> impl Strategy<Value = f64> {
    // (The local `prop_oneof!` is unweighted; repetition biases arms.)
    prop_oneof![
        Just(0.0f64),
        Just(1.0f64),
        0.7f64..1.0,
        0.7f64..1.0,
        0.0f64..0.2, // near-certain failure: dead lanes early
    ]
}

/// A test coverage including the degenerate endpoints: `1.0` catches
/// without drawing, `0.0` never catches (and never draws).
fn coverage_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0f64), Just(1.0f64), 0.3f64..1.0, 0.3f64..1.0,]
}

#[derive(Debug, Clone)]
enum StageSpec {
    Process {
        cost: f64,
        yield_: f64,
    },
    Test {
        cost: f64,
        coverage: f64,
        rework: Option<(f64, f64, u32)>,
    },
    /// An attach consuming a nested line's output — the program is then
    /// non-flat and every width must take the scalar fallback.
    SubLine {
        sub_cost: f64,
        sub_yield: f64,
        qty: u32,
    },
}

fn stage_strategy(nested: bool) -> impl Strategy<Value = StageSpec> {
    let mut arms = vec![
        (0.0f64..5.0, yield_strategy())
            .prop_map(|(cost, yield_)| StageSpec::Process { cost, yield_ })
            .boxed(),
        (
            0.0f64..3.0,
            coverage_strategy(),
            proptest::option::of((0.0f64..2.0, 0.2f64..0.9, 1u32..3)),
        )
            .prop_map(|(cost, coverage, rework)| StageSpec::Test {
                cost,
                coverage,
                rework,
            })
            .boxed(),
    ];
    if nested {
        arms.push(
            (0.5f64..8.0, 0.7f64..1.0, 1u32..3)
                .prop_map(|(sub_cost, sub_yield, qty)| StageSpec::SubLine {
                    sub_cost,
                    sub_yield,
                    qty,
                })
                .boxed(),
        );
    }
    OneOf::new(arms)
}

fn build_flow(carrier_yield: f64, stages: &[StageSpec]) -> Flow {
    let mut builder = Line::builder(
        "lane-prop",
        Part::new("carrier", CostCategory::Substrate)
            .with_cost(StepCost::fixed(Money::new(2.0)))
            .with_incoming_yield(YieldModel::flat(p(carrier_yield))),
    );
    for (i, spec) in stages.iter().enumerate() {
        builder = match spec {
            StageSpec::Process { cost, yield_ } => builder.process(
                Process::new(format!("proc{i}"))
                    .with_cost(StepCost::fixed(Money::new(*cost)))
                    .with_yield(YieldModel::flat(p(*yield_))),
            ),
            StageSpec::Test {
                cost,
                coverage,
                rework,
            } => {
                let action = match rework {
                    Some((rc, rs, attempts)) => FailAction::Rework(Rework::new(
                        StepCost::fixed(Money::new(*rc)),
                        p(*rs),
                        *attempts,
                    )),
                    None => FailAction::Scrap,
                };
                builder.test(
                    Test::new(format!("test{i}"))
                        .with_cost(StepCost::fixed(Money::new(*cost)))
                        .with_coverage(p(*coverage))
                        .on_fail(action),
                )
            }
            StageSpec::SubLine {
                sub_cost,
                sub_yield,
                qty,
            } => {
                let sub = Line::builder(
                    format!("sub{i}"),
                    Part::new(format!("blank{i}"), CostCategory::Substrate)
                        .with_cost(StepCost::fixed(Money::new(*sub_cost))),
                )
                .process(
                    Process::new(format!("fab{i}")).with_yield(YieldModel::flat(p(*sub_yield))),
                )
                .build()
                .expect("sub-line is non-empty");
                builder.attach(Attach::new(format!("join{i}")).input(sub, *qty))
            }
        };
    }
    Flow::new(builder.build().expect("non-empty line"))
        .with_nre(Money::new(250.0))
        .with_volume(10_000)
}

/// Either every width agrees on the summary, or every width fails with
/// the same error (a flow where nothing ships errors identically
/// regardless of how units were batched).
fn assert_width_invariant(flow: &Flow, opts_for: impl Fn(usize) -> SimOptions) {
    let reference = flow.simulate_summary(&opts_for(1));
    for width in WIDTHS[1..].iter().copied() {
        let got = flow.simulate_summary(&opts_for(width));
        match (&reference, &got) {
            (Ok(r), Ok(g)) => assert_eq!(r, g, "width {width} diverged"),
            (Err(r), Err(g)) => {
                assert_eq!(format!("{r:?}"), format!("{g:?}"), "width {width} error")
            }
            _ => panic!("width {width}: one width errored, another shipped"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    /// The core contract: every (width, thread count) pair produces the
    /// same bits as the scalar walk, which itself matches the
    /// interpreter oracle. Unit count 10_007 is deliberately odd so
    /// every width leaves a different-sized scalar tail.
    #[test]
    fn widths_and_threads_match_scalar_and_oracle(
        carrier_yield in yield_strategy(),
        stages in proptest::collection::vec(stage_strategy(false), 1..6),
        seed in 0u64..1_000,
    ) {
        let flow = build_flow(carrier_yield, &stages);
        let opts = SimOptions::new(10_007).with_seed(seed).with_threads(1).with_lane_width(1);
        let scalar = flow.simulate_summary(&opts);
        if let Ok(scalar) = &scalar {
            let oracle =
                simulate_line_reference(flow.line(), flow.nre(), flow.volume(), &opts, None)
                    .expect("oracle runs whenever the kernel does");
            prop_assert_eq!(scalar, &oracle);
        }
        for threads in [1usize, 3] {
            assert_width_invariant(&flow, |w| {
                SimOptions::new(10_007).with_seed(seed).with_threads(threads).with_lane_width(w)
            });
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Non-flat programs (nested sub-lines, possibly starving) must
    /// fall back identically for every width — including identical
    /// starvation errors.
    #[test]
    fn nested_lines_fall_back_identically(
        carrier_yield in 0.8f64..1.0,
        stages in proptest::collection::vec(stage_strategy(true), 1..5),
        seed in 0u64..1_000,
    ) {
        let flow = build_flow(carrier_yield, &stages);
        assert_width_invariant(&flow, |w| {
            SimOptions::new(4_003).with_seed(seed).with_threads(1).with_lane_width(w)
        });
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Rework loops force units off the shared cost schedule
    /// (materialization) and re-enter the draw stream through a rebuilt
    /// scalar RNG — the most intricate lane path, so it gets its own
    /// generator with rework guaranteed present and defects plentiful.
    #[test]
    fn rework_materialization_is_width_invariant(
        step_yield in 0.5f64..0.95,
        coverage in 0.5f64..1.0,
        success in 0.2f64..0.9,
        attempts in 1u32..4,
        seed in 0u64..1_000,
    ) {
        let line = Line::builder(
            "rework",
            Part::new("carrier", CostCategory::Substrate)
                .with_cost(StepCost::fixed(Money::new(3.0))),
        )
        .process(
            Process::new("fab")
                .with_cost(StepCost::fixed(Money::new(1.0)))
                .with_yield(YieldModel::flat(p(step_yield))),
        )
        .test(
            Test::new("t1")
                .with_cost(StepCost::fixed(Money::new(0.5)))
                .with_coverage(p(coverage))
                .on_fail(FailAction::Rework(Rework::new(
                    StepCost::fixed(Money::new(0.7)),
                    p(success),
                    attempts,
                ))),
        )
        .process(Process::new("finish").with_yield(YieldModel::flat(p(0.98))))
        .test(Test::new("t2").with_coverage(p(0.9)))
        .build()
        .unwrap();
        let flow = Flow::new(line);
        assert_width_invariant(&flow, |w| {
            SimOptions::new(10_007).with_seed(seed).with_threads(1).with_lane_width(w)
        });
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Early stopping folds at deterministic chunk boundaries that do
    /// not depend on how a chunk was batched internally — so adaptive
    /// runs must stop at the same unit count and produce the same bits
    /// for every width.
    #[test]
    fn stop_rule_is_invariant_across_widths(
        carrier_yield in 0.85f64..1.0,
        stages in proptest::collection::vec(stage_strategy(false), 1..4),
        seed in 0u64..1_000,
    ) {
        let flow = build_flow(carrier_yield, &stages);
        let stop = StopRule::half_width_95(0.02);
        let reference = flow.simulate_adaptive(
            &SimOptions::new(300_000).with_seed(seed).with_lane_width(1),
            stop,
        );
        for width in [8usize, 16, 64] {
            let got = flow.simulate_adaptive(
                &SimOptions::new(300_000).with_seed(seed).with_lane_width(width),
                stop,
            );
            match (&reference, &got) {
                (Ok(r), Ok(g)) => prop_assert_eq!(r, g, "width {} diverged", width),
                (Err(r), Err(g)) => {
                    prop_assert_eq!(format!("{r:?}"), format!("{g:?}"), "width {}", width)
                }
                _ => prop_assert!(false, "width {}: divergent error-ness", width),
            }
        }
    }
}

/// Unit counts around the lane geometry: smaller than any lane, exactly
/// one widest lane, one lane plus a tail straddling every width.
#[test]
fn tiny_and_tail_unit_counts_are_width_invariant() {
    let flow = build_flow(
        0.95,
        &[
            StageSpec::Process {
                cost: 1.0,
                yield_: 0.9,
            },
            StageSpec::Test {
                cost: 0.3,
                coverage: 0.95,
                rework: None,
            },
        ],
    );
    for units in [1u64, 3, 63, 64, 65, 130, 1_000] {
        for seed in [0u64, 7, 42] {
            assert_width_invariant(&flow, |w| {
                SimOptions::new(units)
                    .with_seed(seed)
                    .with_threads(1)
                    .with_lane_width(w)
            });
        }
    }
}

/// A flow that ships nothing must report the *same* error for every
/// width — the starved/empty outcome is part of the seeded contract.
#[test]
fn nothing_shipped_errors_identically_across_widths() {
    let flow = build_flow(
        0.0, // every carrier arrives defective
        &[StageSpec::Test {
            cost: 0.5,
            coverage: 1.0, // ...and certain coverage scraps them all
            rework: None,
        }],
    );
    for width in WIDTHS {
        let err = flow
            .simulate_summary(&SimOptions::new(5_000).with_seed(11).with_lane_width(width))
            .expect_err("nothing ships");
        assert_eq!(
            format!("{err:?}"),
            format!(
                "{:?}",
                flow.simulate_summary(&SimOptions::new(5_000).with_seed(11).with_lane_width(1))
                    .expect_err("nothing ships")
            ),
            "width {width}"
        );
    }
}
