//! Property tests for the forward-mode dual pass: on randomly
//! generated production lines — nested subassembly lines, rework
//! loops, the low-yield regime the MC suites avoid — the dual
//! gradients must agree with central finite differences of the patched
//! walk, and the dual primal must be *bit-identical* to the plain
//! `f64` walk (the generic walker may not perturb the arithmetic).

use ipass_moe::{
    Attach, CompiledFlow, CostCategory, DualDirection, FailAction, Flow, Line, Part, Process,
    Rework, SlotKind, StepCost, Test, YieldModel,
};
use ipass_units::{Money, Probability};
use proptest::prelude::*;

fn p(v: f64) -> Probability {
    Probability::clamped(v)
}

#[derive(Debug, Clone)]
enum StageSpec {
    Process {
        cost: f64,
        yield_: f64,
    },
    Attach {
        part_cost: f64,
        part_yield: f64,
        qty: u32,
    },
    /// An attach consuming a nested line's output.
    SubLine {
        sub_cost: f64,
        sub_yield: f64,
        tested: bool,
        qty: u32,
    },
    Test {
        cost: f64,
        coverage: f64,
        rework: Option<(f64, f64, u32)>,
    },
}

fn stage_strategy() -> impl Strategy<Value = StageSpec> {
    prop_oneof![
        // Yields range down to 0.1: the gradients must stay accurate in
        // the low-yield regime where per-shipped costs blow up.
        (0.0f64..5.0, 0.1f64..=1.0).prop_map(|(cost, yield_)| StageSpec::Process { cost, yield_ }),
        (0.0f64..20.0, 0.5f64..=1.0, 1u32..4).prop_map(|(part_cost, part_yield, qty)| {
            StageSpec::Attach {
                part_cost,
                part_yield,
                qty,
            }
        }),
        (0.5f64..8.0, 0.4f64..1.0, proptest::bool::ANY, 1u32..3).prop_map(
            |(sub_cost, sub_yield, tested, qty)| StageSpec::SubLine {
                sub_cost,
                sub_yield,
                tested,
                qty,
            }
        ),
        (
            0.0f64..3.0,
            0.0f64..=1.0,
            proptest::option::of((0.0f64..2.0, 0.0f64..=1.0, 1u32..4))
        )
            .prop_map(|(cost, coverage, rework)| StageSpec::Test {
                cost,
                coverage,
                rework
            }),
    ]
}

fn build_flow(carrier_cost: f64, carrier_yield: f64, stages: &[StageSpec]) -> Flow {
    let mut builder = Line::builder(
        "random",
        Part::new("carrier", CostCategory::Substrate)
            .with_cost(StepCost::fixed(Money::new(carrier_cost)))
            .with_incoming_yield(YieldModel::flat(p(carrier_yield))),
    );
    for (i, spec) in stages.iter().enumerate() {
        builder = match spec {
            StageSpec::Process { cost, yield_ } => builder.process(
                Process::new(format!("proc{i}"))
                    .with_cost(StepCost::fixed(Money::new(*cost)))
                    .with_yield(YieldModel::flat(p(*yield_))),
            ),
            StageSpec::Attach {
                part_cost,
                part_yield,
                qty,
            } => builder.attach(
                Attach::new(format!("attach{i}"))
                    .input(
                        Part::new(format!("part{i}"), CostCategory::Chip)
                            .with_cost(StepCost::fixed(Money::new(*part_cost)))
                            .with_incoming_yield(YieldModel::flat(p(*part_yield))),
                        *qty,
                    )
                    .with_cost(StepCost::per_item(Money::new(0.1), *qty)),
            ),
            StageSpec::SubLine {
                sub_cost,
                sub_yield,
                tested,
                qty,
            } => {
                let mut sub = Line::builder(
                    format!("sub{i}"),
                    Part::new(format!("blank{i}"), CostCategory::Substrate)
                        .with_cost(StepCost::fixed(Money::new(*sub_cost))),
                )
                .process(
                    Process::new(format!("fab{i}")).with_yield(YieldModel::flat(p(*sub_yield))),
                );
                if *tested {
                    sub = sub.test(Test::new(format!("probe{i}")).with_coverage(p(0.95)));
                }
                builder.attach(
                    Attach::new(format!("join{i}"))
                        .input(sub.build().expect("sub-line is non-empty"), *qty)
                        .with_yield(YieldModel::flat(p(0.99))),
                )
            }
            StageSpec::Test {
                cost,
                coverage,
                rework,
            } => {
                let action = match rework {
                    Some((rc, rs, attempts)) => FailAction::Rework(Rework::new(
                        StepCost::fixed(Money::new(*rc)),
                        p(*rs),
                        *attempts,
                    )),
                    None => FailAction::Scrap,
                };
                builder.test(
                    Test::new(format!("test{i}"))
                        .with_cost(StepCost::fixed(Money::new(*cost)))
                        .with_coverage(p(*coverage))
                        .on_fail(action),
                )
            }
        };
    }
    Flow::new(builder.build().expect("non-empty line"))
        .with_nre(Money::new(500.0))
        .with_volume(10_000)
}

/// Every patch slot of the generated flow the test can perturb, with
/// its current value: costs of the carrier, parts, processes and
/// tests; process and part yields; test coverages.
fn perturbable_slots(stages: &[StageSpec], carrier_cost: f64) -> Vec<(String, SlotKind, f64)> {
    let mut slots = vec![("carrier".to_string(), SlotKind::Cost, carrier_cost)];
    for (i, spec) in stages.iter().enumerate() {
        match spec {
            StageSpec::Process { cost, yield_ } => {
                slots.push((format!("proc{i}"), SlotKind::Cost, *cost));
                slots.push((format!("proc{i}"), SlotKind::Yield, *yield_));
            }
            StageSpec::Attach {
                part_cost,
                part_yield,
                ..
            } => {
                slots.push((format!("part{i}"), SlotKind::Cost, *part_cost));
                slots.push((format!("part{i}"), SlotKind::Yield, *part_yield));
            }
            StageSpec::SubLine { sub_cost, .. } => {
                slots.push((format!("blank{i}"), SlotKind::Cost, *sub_cost));
            }
            StageSpec::Test { cost, coverage, .. } => {
                slots.push((format!("test{i}"), SlotKind::Cost, *cost));
                slots.push((format!("test{i}"), SlotKind::Coverage, *coverage));
            }
        }
    }
    slots
}

/// Final cost per shipped with one slot patched to `value`, or `None`
/// if the patch or the walk rejects the point.
fn patched_cost(compiled: &CompiledFlow, slot: &str, kind: SlotKind, value: f64) -> Option<f64> {
    let mut patch = compiled.patch();
    match kind {
        SlotKind::Cost => patch.set_cost(slot, Money::new(value)).ok()?,
        SlotKind::Yield => patch.set_yield(slot, Probability::new(value).ok()?).ok()?,
        SlotKind::Coverage => patch
            .set_coverage(slot, Probability::new(value).ok()?)
            .ok()?,
    };
    Some(patch.analyze().ok()?.final_cost_per_shipped().units())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ∂(final cost per shipped)/∂slot from one dual pass equals the
    /// central finite difference of the patched walk, for every slot
    /// kind, within 1e-6 of the magnitudes involved.
    #[test]
    fn dual_gradients_match_finite_differences_on_random_flows(
        carrier_cost in 1.0f64..20.0,
        carrier_yield in 0.3f64..=1.0,
        stages in proptest::collection::vec(stage_strategy(), 1..6),
    ) {
        let flow = build_flow(carrier_cost, carrier_yield, &stages);
        let compiled = match flow.compiled() {
            Ok(c) => c,
            Err(_) => return Ok(()), // degenerate line
        };
        let base = match compiled.analyze() {
            Ok(report) => report.final_cost_per_shipped().units(),
            Err(_) => return Ok(()), // nothing ships — no gradients to check
        };

        let mut directions = Vec::new();
        let mut checks = Vec::new();
        for (slot, kind, value) in perturbable_slots(&stages, carrier_cost) {
            // Stay clear of the [0, 1] boundary for probabilities so
            // the central stencil remains inside the domain.
            let h = match kind {
                SlotKind::Cost => 1e-6 * (1.0 + value.abs()),
                SlotKind::Yield | SlotKind::Coverage => {
                    if !(0.01..=0.99).contains(&value) {
                        continue;
                    }
                    1e-6
                }
            };
            // Some generated slots collide across stages (ambiguous
            // names never occur here, but a sub-line may fail to ship
            // under perturbation); skip anything the patched walk
            // rejects.
            let (Some(hi), Some(lo)) = (
                patched_cost(&compiled, &slot, kind, value + h),
                patched_cost(&compiled, &slot, kind, value - h),
            ) else {
                continue;
            };
            directions.push(DualDirection::new().with(&slot, kind, 1.0));
            checks.push((slot, (hi - lo) / (2.0 * h)));
        }
        prop_assume!(!directions.is_empty());

        let dual = compiled.analyze_duals(&directions).expect("base point ships");
        for ((slot, fd), gradient) in checks.iter().zip(&dual.gradients) {
            let g = gradient.final_cost_per_shipped;
            let tol = 1e-6 * fd.abs().max(g.abs()).max(base).max(1.0);
            prop_assert!(
                (g - fd).abs() <= tol,
                "slot {slot}: dual {g} vs FD {fd} (base {base})"
            );
        }
    }

    /// The dual primal is bit-identical to the plain `f64` walk for
    /// every program the generator produces — the generic walker must
    /// execute the exact same float sequence.
    #[test]
    fn dual_primal_is_bit_identical_to_the_plain_walk(
        carrier_cost in 1.0f64..20.0,
        carrier_yield in 0.0f64..=1.0,
        stages in proptest::collection::vec(stage_strategy(), 1..6),
    ) {
        let flow = build_flow(carrier_cost, carrier_yield, &stages);
        let compiled = match flow.compiled() {
            Ok(c) => c,
            Err(_) => return Ok(()),
        };
        let directions = [DualDirection::cost("carrier")];
        match (compiled.analyze(), compiled.analyze_duals(&directions)) {
            (Ok(plain), Ok(dual)) => {
                let bits = |v: f64| v.to_bits();
                prop_assert_eq!(
                    bits(dual.report.final_cost_per_shipped().units()),
                    bits(plain.final_cost_per_shipped().units())
                );
                prop_assert_eq!(
                    bits(dual.report.total_spend().units()),
                    bits(plain.total_spend().units())
                );
                prop_assert_eq!(bits(dual.report.shipped()), bits(plain.shipped()));
                prop_assert_eq!(bits(dual.report.good_shipped()), bits(plain.good_shipped()));
                for cat in CostCategory::ALL {
                    prop_assert_eq!(
                        bits(dual.report.by_category()[cat].units()),
                        bits(plain.by_category()[cat].units()),
                        "category {}", cat.label()
                    );
                }
                prop_assert_eq!(dual.report, plain);
            }
            // Degenerate flows must fail identically through both paths.
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(
                false,
                "walks disagree on failure: plain {:?} vs dual {:?}",
                a.map(|r| r.shipped()),
                b.map(|r| r.report.shipped())
            ),
        }
    }
}
