//! Closed-form expected-value engine.
//!
//! The population of in-flight units is propagated as a small set of
//! *cohorts* — groups of units with identical accumulated cost. Cost
//! and step ops transform cohorts in place; test ops split them
//! (pass / scrap / rework loop). The result is exact, including bounded
//! rework loops and nested subassembly lines.
//!
//! Since PR 3 the production path no longer interprets the nested
//! [`Line`] object graph per evaluation: [`analyze_program`] walks the
//! same flat [`RoutingProgram`] op vector the Monte Carlo kernel
//! executes, reusing every precomputed cost, yield and `p^q` fold (see
//! [`crate::compile`]). Cohort semantics per op:
//!
//! * [`Op::Cost`] — add cost to every cohort; no mass moves.
//! * [`Op::Condemn`] — add cost, move each cohort's entire good mass to
//!   defective, attribute it to the op's label.
//! * [`Op::Step`] — add cost, move `good · (1 − p_good)` to defective.
//! * [`Op::SubLine`] — evaluate the nested region to a per-started-unit
//!   outcome, fold `qty` consumed units' cost/yield into each cohort and
//!   scale the nested scrap/defect accounting by the implied sub-starts.
//! * [`Op::TestScrap`] / [`Op::TestRework`] — split each cohort into
//!   pass / caught; scrap the caught mass or push it through the
//!   bounded rework loop.
//!
//! The original `Line`-walking engine is kept below (exposed through
//! [`analyze_line_reference`]) as the oracle the property tests pin the
//! IR walker against, exactly like the Monte Carlo interpreter oracle.

use crate::compile::{Op, RoutingProgram, SlotKind};
use crate::cost::{CostCategory, CostVector};
use crate::dual::{Dual, DualReport, Gradient, NoSeeds, Scalar, SeedTable, TangentSeeds};
use crate::error::FlowError;
use crate::labels::{self, InputLabels, LineLabels, StageLabels};
use crate::line::Line;
use crate::part::AttachInput;
use crate::stage::{FailAction, Stage};
use ipass_units::Money;

const NCAT: usize = CostCategory::COUNT;

/// A group of in-flight units with identical accumulated cost.
///
/// Generic over the [`Scalar`]: `f64` for plain evaluation, a dual for
/// forward-mode differentiation — same walk, same arithmetic sequence.
#[derive(Debug, Clone)]
struct Cohort<S = f64> {
    /// Mass of defect-free units.
    good: S,
    /// Mass of defective units.
    def: S,
    /// Accumulated cost per unit.
    cost: S,
    /// Accumulated cost per unit, by category.
    by_cat: [S; NCAT],
}

impl<S: Scalar> Cohort<S> {
    fn mass(&self) -> S {
        self.good + self.def
    }

    fn add_cost(&mut self, amount: S, category: CostCategory) {
        self.cost += amount;
        self.by_cat[category.index()] += amount;
    }

    fn add_costs(&mut self, amount: S, cats: &[S; NCAT]) {
        self.cost += amount;
        for (a, b) in self.by_cat.iter_mut().zip(cats.iter()) {
            *a += *b;
        }
    }
}

/// Scrap and defect accounting, normalized per started unit of the line
/// being evaluated.
#[derive(Debug, Clone)]
struct Acc<S = f64> {
    scrap_mass: S,
    scrap_spend: S,
    scrap_by_cat: [S; NCAT],
    /// Defect-source masses stay primal-only: no report derivative
    /// reads them (the [`Gradient`] exposes no per-label terms), and a
    /// K-wide tangent on every label update is the walk's single
    /// biggest slab of dead arithmetic. Accumulating `val()` performs
    /// the identical `f64` sequence, so the primal stays bit-exact.
    ///
    /// [`Gradient`]: crate::Gradient
    defects: Vec<f64>,
}

impl<S: Scalar> Acc<S> {
    fn new(n_labels: usize) -> Acc<S> {
        Acc {
            scrap_mass: S::ZERO,
            scrap_spend: S::ZERO,
            scrap_by_cat: [S::ZERO; NCAT],
            defects: vec![0.0; n_labels],
        }
    }

    fn scrap(&mut self, mass: S, cohort: &Cohort<S>) {
        self.scrap_mass += mass;
        self.scrap_spend += mass * cohort.cost;
        for (a, b) in self.scrap_by_cat.iter_mut().zip(cohort.by_cat.iter()) {
            *a += mass * *b;
        }
    }

    fn merge_scaled(&mut self, other: &Acc<S>, scale: S) {
        self.scrap_mass += other.scrap_mass * scale;
        self.scrap_spend += other.scrap_spend * scale;
        for (a, b) in self.scrap_by_cat.iter_mut().zip(other.scrap_by_cat.iter()) {
            *a += *b * scale;
        }
        for (a, b) in self.defects.iter_mut().zip(other.defects.iter()) {
            *a += *b * scale.val();
        }
    }
}

/// Per-started-unit outcome of a line.
#[derive(Debug, Clone)]
struct LineOutcome<S = f64> {
    shipped: S,
    good: S,
    embodied: S,
    by_cat: [S; NCAT],
}

/// Assemble the [`CostReport`](crate::report::CostReport) from a
/// per-started-unit outcome (shared by the IR walker and the
/// `Line`-walking oracle, so their outputs are built identically).
fn report_from(
    line_name: &str,
    names: &[String],
    outcome: &LineOutcome,
    acc: &Acc,
    nre: Money,
    volume: u64,
) -> Result<crate::report::CostReport, FlowError> {
    if outcome.shipped <= 1e-12 {
        return Err(FlowError::NothingShipped {
            flow: line_name.to_owned(),
        });
    }
    let mut by_category = CostVector::new();
    for cat in CostCategory::ALL {
        let i = cat.index();
        by_category.book(cat, Money::new(outcome.by_cat[i] + acc.scrap_by_cat[i]));
    }
    Ok(crate::report::CostReport::from_parts(
        line_name.to_owned(),
        1.0,
        outcome.shipped,
        outcome.good,
        Money::new(outcome.embodied + acc.scrap_spend),
        Money::new(outcome.embodied),
        by_category,
        nre,
        volume,
        labels::pareto(names, &acc.defects, 1.0),
    ))
}

/// Evaluate a compiled program analytically (the production path behind
/// [`Flow::analyze`](crate::Flow::analyze)).
pub(crate) fn analyze_program(
    program: &RoutingProgram,
    nre: Money,
    volume: u64,
) -> Result<crate::report::CostReport, FlowError> {
    let (entry, len) = program.top_region();
    analyze_ops(
        program.ops(),
        entry,
        len,
        program.names(),
        program.line_name(),
        nre,
        volume,
    )
}

/// Evaluate one op vector analytically — the entry point shared by
/// [`analyze_program`] and patched programs (which substitute their own
/// op vector for the base program's).
pub(crate) fn analyze_ops(
    ops: &[Op],
    entry: u32,
    len: u32,
    names: &[String],
    line_name: &str,
    nre: Money,
    volume: u64,
) -> Result<crate::report::CostReport, FlowError> {
    let (outcome, acc) = eval_region(ops, entry, len, names.len(), &NoSeeds);
    report_from(line_name, names, &outcome, &acc, nre, volume)
}

/// Propagate one unit of cohort mass through a region of the op vector;
/// returns the outcome normalized to one started unit. The math is the
/// oracle's [`eval_line`] expressed over precomputed ops.
///
/// Generic over the [`Scalar`]: `seeds` lifts each op parameter into
/// `S` — the identity for the production `f64` path ([`NoSeeds`]), a
/// tangent-seeding lookup for dual passes. Every branch guard compares
/// only the primal component, so control flow (and therefore the primal
/// arithmetic sequence) is identical across scalars.
fn eval_region<S: Scalar>(
    ops: &[Op],
    entry: u32,
    len: u32,
    n_labels: usize,
    seeds: &impl TangentSeeds<S>,
) -> (LineOutcome<S>, Acc<S>) {
    let mut acc = Acc::new(n_labels);
    let mut cohorts = vec![Cohort {
        good: S::ONE,
        def: S::ZERO,
        cost: S::ZERO,
        by_cat: [S::ZERO; NCAT],
    }];
    let mut scratch: Vec<Cohort<S>> = Vec::new();
    for (i, op) in ops[entry as usize..(entry + len) as usize]
        .iter()
        .enumerate()
    {
        let idx = entry as usize + i;
        match *op {
            Op::Cost { cost, cat } => {
                let cost = seeds.cost(idx, cost);
                for cohort in cohorts.iter_mut() {
                    cohort.add_cost(cost, cat);
                }
            }
            Op::Condemn { cost, cat, label } => {
                let cost = seeds.cost(idx, cost);
                for cohort in cohorts.iter_mut() {
                    cohort.add_cost(cost, cat);
                    let newly = cohort.good;
                    cohort.good -= newly;
                    cohort.def += newly;
                    acc.defects[label as usize] += newly.val();
                }
            }
            Op::Step {
                cost,
                cat,
                threshold: _,
                p_good,
                label,
            } => {
                let cost = seeds.cost(idx, cost);
                let p_good = seeds.p_good(idx, p_good);
                for cohort in cohorts.iter_mut() {
                    cohort.add_cost(cost, cat);
                    let newly = cohort.good * (S::ONE - p_good);
                    cohort.good -= newly;
                    cohort.def += newly;
                    acc.defects[label as usize] += newly.val();
                }
            }
            Op::SubLine {
                qty,
                entry,
                len,
                name: _,
            } => {
                let (sub_out, sub_acc) = eval_region(ops, entry, len, n_labels, seeds);
                if sub_out.shipped.val() <= 1e-12 {
                    // The subassembly ships nothing: every consumer is
                    // starved. Model as all-defective free input; the
                    // flow-level NothingShipped check reports the
                    // problem if it matters.
                    for cohort in cohorts.iter_mut() {
                        cohort.def += cohort.good;
                        cohort.good = S::ZERO;
                    }
                    continue;
                }
                let q = qty as f64;
                let unit_cost = sub_out.embodied / sub_out.shipped;
                let mut unit_cats = [S::ZERO; NCAT];
                for (u, s) in unit_cats.iter_mut().zip(sub_out.by_cat.iter()) {
                    *u = *s / sub_out.shipped;
                }
                for u in unit_cats.iter_mut() {
                    *u = u.scale(q);
                }
                let p_good = (sub_out.good / sub_out.shipped).powf(q);
                let mut alive = S::ZERO;
                for cohort in cohorts.iter() {
                    alive += cohort.mass();
                }
                // Sub-units consumed per started outer unit, and
                // sub-starts needed to produce them.
                let consumed = alive.scale(q);
                let sub_starts = consumed / sub_out.shipped;
                acc.merge_scaled(&sub_acc, sub_starts);
                for cohort in cohorts.iter_mut() {
                    cohort.add_costs(unit_cost.scale(q), &unit_cats);
                    let newly = cohort.good * (S::ONE - p_good);
                    cohort.good -= newly;
                    cohort.def += newly;
                    // Escapes of the sub-line are already counted in
                    // its own defect labels (scaled above), so no extra
                    // label here.
                }
            }
            Op::TestScrap { cost, coverage } => {
                let cost = seeds.cost(idx, cost);
                let coverage = seeds.coverage(idx, coverage);
                test_stage(&mut cohorts, &mut scratch, &mut acc, cost, coverage, None);
            }
            Op::TestRework {
                cost,
                coverage,
                rework_cost,
                success,
                max_attempts,
            } => {
                let cost = seeds.cost(idx, cost);
                let coverage = seeds.coverage(idx, coverage);
                test_stage(
                    &mut cohorts,
                    &mut scratch,
                    &mut acc,
                    cost,
                    coverage,
                    Some((rework_cost, success, max_attempts)),
                );
            }
        }
    }

    let mut outcome = LineOutcome {
        shipped: S::ZERO,
        good: S::ZERO,
        embodied: S::ZERO,
        by_cat: [S::ZERO; NCAT],
    };
    for cohort in &cohorts {
        outcome.shipped += cohort.mass();
        outcome.good += cohort.good;
        outcome.embodied += cohort.mass() * cohort.cost;
        for (o, c) in outcome.by_cat.iter_mut().zip(cohort.by_cat.iter()) {
            *o += cohort.mass() * *c;
        }
    }
    (outcome, acc)
}

/// Split every cohort at a test op: pass/escape mass continues, caught
/// mass scraps or loops through bounded rework — the oracle's test
/// branch, parameterized by the op's precomputed floats. The rework
/// parameters stay plain `f64`s: they carry no patch slot, hence no
/// tangent.
fn test_stage<S: Scalar>(
    cohorts: &mut Vec<Cohort<S>>,
    scratch: &mut Vec<Cohort<S>>,
    acc: &mut Acc<S>,
    t_cost: S,
    cov: S,
    rework: Option<(f64, f64, u32)>,
) {
    // `scratch` is the previous swap's spent cohort list — reusing it
    // keeps a multi-test walk at zero allocations per op, which the
    // K-wide dual cohorts (hundreds of bytes each) actually feel.
    scratch.clear();
    let next = scratch;
    next.reserve(cohorts.len() + 2);
    for mut cohort in cohorts.drain(..) {
        cohort.add_cost(t_cost, CostCategory::Test);
        let caught = cohort.def * cov;
        let escape = cohort.def - caught;
        let pass = Cohort {
            good: cohort.good,
            def: escape,
            cost: cohort.cost,
            by_cat: cohort.by_cat,
        };
        if pass.mass().val() > 0.0 {
            next.push(pass);
        }
        if caught.val() <= 0.0 {
            continue;
        }
        match rework {
            None => {
                let scrapped = Cohort {
                    good: S::ZERO,
                    def: caught,
                    cost: cohort.cost,
                    by_cat: cohort.by_cat,
                };
                acc.scrap(caught, &scrapped);
            }
            Some((r_cost, rho, max_attempts)) => {
                let r_cost = S::from_f64(r_cost);
                let rho = S::from_f64(rho);
                let mut current = caught;
                let mut unit = Cohort {
                    good: S::ZERO,
                    def: current,
                    cost: cohort.cost,
                    by_cat: cohort.by_cat,
                };
                for _ in 0..max_attempts {
                    if current.val() <= 0.0 {
                        break;
                    }
                    unit.add_cost(r_cost, CostCategory::Other);
                    unit.add_cost(t_cost, CostCategory::Test);
                    let fixed = current * rho;
                    let unfixed = current - fixed;
                    let escaped = unfixed * (S::ONE - cov);
                    let recaught = unfixed - escaped;
                    if (fixed + escaped).val() > 0.0 {
                        next.push(Cohort {
                            good: fixed,
                            def: escaped,
                            cost: unit.cost,
                            by_cat: unit.by_cat,
                        });
                    }
                    current = recaught;
                }
                if current.val() > 0.0 {
                    let scrapped = Cohort {
                        good: S::ZERO,
                        def: current,
                        cost: unit.cost,
                        by_cat: unit.by_cat,
                    };
                    acc.scrap(current, &scrapped);
                }
            }
        }
    }
    std::mem::swap(cohorts, next);
}

// ---------------------------------------------------------------------
// The dual pass: one generic walk, K tangent directions at once.
// ---------------------------------------------------------------------

/// One resolved component of a tangent direction: `weight` is the
/// derivative of the op's **folded** parameter along the direction
/// (the per-unit → folded chain rule was already applied by the
/// resolver in [`crate::patch`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FoldedSeed {
    pub(crate) op: u32,
    pub(crate) kind: SlotKind,
    pub(crate) weight: f64,
}

/// Every direction's [`FoldedSeed`]s in one flat allocation;
/// `ends[i]` is the exclusive end of direction `i`'s range in `seeds`.
/// (A vec-of-vecs costs one allocation per direction per evaluation —
/// measurable next to the walk itself.)
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FoldedDirections {
    pub(crate) seeds: Vec<FoldedSeed>,
    pub(crate) ends: Vec<u32>,
}

impl FoldedDirections {
    fn len(&self) -> usize {
        self.ends.len()
    }

    fn direction(&self, i: usize) -> &[FoldedSeed] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.seeds[start..self.ends[i] as usize]
    }
}

/// Widest dual carried in one pass; more directions chunk into
/// multiple walks of at most this width.
const MAX_WIDTH: usize = 16;

/// Evaluate one op vector once per ≤[`MAX_WIDTH`]-direction chunk and
/// return the primal report (bit-identical to [`analyze_ops`]) plus
/// one exact [`Gradient`] per direction.
#[allow(clippy::too_many_arguments)] // mirrors analyze_ops plus the directions
pub(crate) fn analyze_ops_duals(
    ops: &[Op],
    entry: u32,
    len: u32,
    names: &[String],
    line_name: &str,
    nre: Money,
    volume: u64,
    directions: &FoldedDirections,
) -> Result<DualReport, FlowError> {
    if directions.len() == 0 {
        let report = analyze_ops(ops, entry, len, names, line_name, nre, volume)?;
        return Ok(DualReport {
            report,
            gradients: Vec::new(),
        });
    }
    let mut report = None;
    let mut gradients = Vec::with_capacity(directions.len());
    for start in (0..directions.len()).step_by(MAX_WIDTH) {
        let count = MAX_WIDTH.min(directions.len() - start);
        // Monomorphized widths: the headline K=12 tornado gets its own
        // instantiation; in-between counts round up (unused lanes stay
        // zero-seeded and cost a few wasted multiplies, not a pass).
        let chunk = (directions, start, count);
        let (chunk_report, chunk_gradients) = match count {
            1 => duals_chunk::<1>(ops, entry, len, names, line_name, nre, volume, chunk),
            2 => duals_chunk::<2>(ops, entry, len, names, line_name, nre, volume, chunk),
            3..=4 => duals_chunk::<4>(ops, entry, len, names, line_name, nre, volume, chunk),
            5..=8 => duals_chunk::<8>(ops, entry, len, names, line_name, nre, volume, chunk),
            9..=12 => duals_chunk::<12>(ops, entry, len, names, line_name, nre, volume, chunk),
            _ => duals_chunk::<MAX_WIDTH>(ops, entry, len, names, line_name, nre, volume, chunk),
        }?;
        report.get_or_insert(chunk_report);
        gradients.extend(chunk_gradients);
    }
    Ok(DualReport {
        report: report.expect("at least one chunk ran"),
        gradients,
    })
}

/// One K-wide dual walk: seed the chunk's directions, evaluate, strip
/// the primal into the shared [`report_from`] assembly and read each
/// report-level derivative off the tangent lanes.
#[allow(clippy::too_many_arguments)] // mirrors analyze_ops plus the directions
fn duals_chunk<const K: usize>(
    ops: &[Op],
    entry: u32,
    len: u32,
    names: &[String],
    line_name: &str,
    nre: Money,
    volume: u64,
    (directions, start, count): (&FoldedDirections, usize, usize),
) -> Result<(crate::report::CostReport, Vec<Gradient>), FlowError> {
    debug_assert!(count <= K);
    let mut seeds = SeedTable::<K>::new(ops.len());
    for lane in 0..count {
        for part in directions.direction(start + lane) {
            seeds.seed(part.op as usize, part.kind, lane, part.weight);
        }
    }
    let (outcome, acc) = eval_region::<Dual<K>>(ops, entry, len, names.len(), &seeds);

    // Primal: the value components, assembled through the exact same
    // report_from the f64 walk uses — bit-identical by construction.
    let primal_outcome = LineOutcome {
        shipped: outcome.shipped.val,
        good: outcome.good.val,
        embodied: outcome.embodied.val,
        by_cat: outcome.by_cat.map(|c| c.val),
    };
    let primal_acc = Acc {
        scrap_mass: acc.scrap_mass.val,
        scrap_spend: acc.scrap_spend.val,
        scrap_by_cat: acc.scrap_by_cat.map(|c| c.val),
        defects: acc.defects,
    };
    let report = report_from(line_name, names, &primal_outcome, &primal_acc, nre, volume)?;

    // Tangents: differentiate the report formulas in dual arithmetic
    // (started = 1, so shipped *is* the shipped fraction).
    let shipped = outcome.shipped;
    let total_spend = outcome.embodied + acc.scrap_spend;
    let direct = outcome.embodied / shipped;
    let yield_loss = (total_spend - outcome.embodied) / shipped;
    let nre_per = Dual::<K>::from_f64(nre.units() / volume as f64) / shipped;
    let final_cost = direct + yield_loss + nre_per;
    let escape_rate = (shipped - outcome.good) / shipped;
    let mut by_category = [Dual::<K>::ZERO; NCAT];
    for (g, (o, s)) in by_category
        .iter_mut()
        .zip(outcome.by_cat.iter().zip(acc.scrap_by_cat.iter()))
    {
        *g = (*o + *s) / shipped;
    }
    let gradients = (0..count)
        .map(|k| Gradient {
            final_cost_per_shipped: final_cost.eps[k],
            direct_cost_per_shipped: direct.eps[k],
            yield_loss_per_shipped: yield_loss.eps[k],
            total_spend: total_spend.eps[k],
            shipped_fraction: shipped.eps[k],
            escape_rate: escape_rate.eps[k],
            by_category: by_category.map(|c| c.eps[k]),
        })
        .collect();
    Ok((report, gradients))
}

// ---------------------------------------------------------------------
// The object-graph oracle: the original (pre-IR) analytic engine, kept
// verbatim so property tests can pin the IR walker's results against
// it.
// ---------------------------------------------------------------------

/// Reference implementation: evaluate `line` analytically by walking
/// the nested object graph (the pre-compilation engine).
///
/// Kept as the oracle for [`analyze_program`]; see
/// `crates/moe/tests/analytic_ir.rs`. Production callers go through
/// [`Flow::analyze`](crate::Flow::analyze), which evaluates the cached
/// compiled program instead.
///
/// # Errors
///
/// Same contract as [`Flow::analyze`](crate::Flow::analyze).
#[doc(hidden)]
pub fn analyze_line_reference(
    line: &Line,
    nre: Money,
    volume: u64,
) -> Result<crate::report::CostReport, FlowError> {
    line.validate()?;
    let mut names = Vec::new();
    let line_labels = labels::index_line(line, "", &mut names);
    let (outcome, acc) = eval_line(line, &line_labels, names.len());
    report_from(line.name(), &names, &outcome, &acc, nre, volume)
}

fn eval_line(line: &Line, line_labels: &LineLabels, n_labels: usize) -> (LineOutcome, Acc) {
    let mut acc = Acc::new(n_labels);

    // Carrier enters the line.
    let carrier = line.carrier();
    let y0 = carrier.incoming_yield().value().value();
    let c0 = carrier.cost().total().units();
    let mut by_cat = [0.0; NCAT];
    by_cat[carrier.category().index()] = c0;
    acc.defects[line_labels.carrier] += 1.0 - y0;
    let mut cohorts = vec![Cohort {
        good: y0,
        def: 1.0 - y0,
        cost: c0,
        by_cat,
    }];

    for (stage, stage_labels) in line.stages().iter().zip(line_labels.stages.iter()) {
        match (stage, stage_labels) {
            (Stage::Process(p), StageLabels::Process(label)) => {
                let y = p.process_yield().value().value();
                let cost = p.cost().total().units();
                for cohort in cohorts.iter_mut() {
                    cohort.add_cost(cost, p.category());
                    let newly = cohort.good * (1.0 - y);
                    cohort.good -= newly;
                    cohort.def += newly;
                    acc.defects[*label] += newly;
                }
            }
            (Stage::Attach(a), StageLabels::Attach { op, inputs }) => {
                // Assembly operation: cost and yield of the joining itself.
                let y_op = a.attach_yield().value().value();
                let op_cost = a.cost().total().units();
                for cohort in cohorts.iter_mut() {
                    cohort.add_cost(op_cost, a.category());
                    let newly = cohort.good * (1.0 - y_op);
                    cohort.good -= newly;
                    cohort.def += newly;
                    acc.defects[*op] += newly;
                }
                // Consumed inputs, applied sequentially for a well-defined
                // defect attribution.
                for ((input, qty), input_labels) in a.inputs().iter().zip(inputs.iter()) {
                    let q = *qty as f64;
                    match (input, input_labels) {
                        (AttachInput::Part(part), InputLabels::Part(label)) => {
                            let p_good = part.incoming_yield().value().value().powf(q);
                            let unit_cost = part.cost().total().units();
                            let cat = part.category();
                            for cohort in cohorts.iter_mut() {
                                cohort.add_cost(q * unit_cost, cat);
                                let newly = cohort.good * (1.0 - p_good);
                                cohort.good -= newly;
                                cohort.def += newly;
                                acc.defects[*label] += newly;
                            }
                        }
                        (AttachInput::Line(sub), InputLabels::Line(sub_labels)) => {
                            let (sub_out, sub_acc) = eval_line(sub, sub_labels, n_labels);
                            if sub_out.shipped <= 1e-12 {
                                // The subassembly ships nothing: every
                                // consumer is starved. Model as all-defective
                                // free input; the flow-level NothingShipped
                                // check reports the problem if it matters.
                                for cohort in cohorts.iter_mut() {
                                    cohort.def += cohort.good;
                                    cohort.good = 0.0;
                                }
                                continue;
                            }
                            let unit_cost = sub_out.embodied / sub_out.shipped;
                            let mut unit_cats = [0.0; NCAT];
                            for (u, s) in unit_cats.iter_mut().zip(sub_out.by_cat.iter()) {
                                *u = s / sub_out.shipped;
                            }
                            for u in unit_cats.iter_mut() {
                                *u *= q;
                            }
                            let p_good = (sub_out.good / sub_out.shipped).powf(q);
                            let alive: f64 = cohorts.iter().map(Cohort::mass).sum();
                            // Sub-units consumed per started outer unit, and
                            // sub-starts needed to produce them.
                            let consumed = alive * q;
                            let sub_starts = consumed / sub_out.shipped;
                            acc.merge_scaled(&sub_acc, sub_starts);
                            for cohort in cohorts.iter_mut() {
                                cohort.add_costs(q * unit_cost, &unit_cats);
                                let newly = cohort.good * (1.0 - p_good);
                                cohort.good -= newly;
                                cohort.def += newly;
                                // Escapes of the sub-line are already counted
                                // in its own defect labels (scaled above), so
                                // no extra label here.
                            }
                        }
                        _ => unreachable!("label map mismatch"),
                    }
                }
            }
            (Stage::Test(t), StageLabels::Test) => {
                let cov = t.coverage().value();
                let t_cost = t.cost().total().units();
                let mut next = Vec::with_capacity(cohorts.len() + 2);
                for mut cohort in cohorts.drain(..) {
                    cohort.add_cost(t_cost, CostCategory::Test);
                    let caught = cohort.def * cov;
                    let escape = cohort.def - caught;
                    let pass = Cohort {
                        good: cohort.good,
                        def: escape,
                        cost: cohort.cost,
                        by_cat: cohort.by_cat,
                    };
                    if pass.mass() > 0.0 {
                        next.push(pass);
                    }
                    if caught <= 0.0 {
                        continue;
                    }
                    match t.fail_action() {
                        FailAction::Scrap => {
                            let scrapped = Cohort {
                                good: 0.0,
                                def: caught,
                                cost: cohort.cost,
                                by_cat: cohort.by_cat,
                            };
                            acc.scrap(caught, &scrapped);
                        }
                        FailAction::Rework(rework) => {
                            let r_cost = rework.cost.total().units();
                            let rho = rework.success.value();
                            let mut current = caught;
                            let mut unit = Cohort {
                                good: 0.0,
                                def: current,
                                cost: cohort.cost,
                                by_cat: cohort.by_cat,
                            };
                            for _ in 0..rework.max_attempts {
                                if current <= 0.0 {
                                    break;
                                }
                                unit.add_cost(r_cost, CostCategory::Other);
                                unit.add_cost(t_cost, CostCategory::Test);
                                let fixed = current * rho;
                                let unfixed = current - fixed;
                                let escaped = unfixed * (1.0 - cov);
                                let recaught = unfixed - escaped;
                                if fixed + escaped > 0.0 {
                                    next.push(Cohort {
                                        good: fixed,
                                        def: escaped,
                                        cost: unit.cost,
                                        by_cat: unit.by_cat,
                                    });
                                }
                                current = recaught;
                            }
                            if current > 0.0 {
                                let scrapped = Cohort {
                                    good: 0.0,
                                    def: current,
                                    cost: unit.cost,
                                    by_cat: unit.by_cat,
                                };
                                acc.scrap(current, &scrapped);
                            }
                        }
                    }
                }
                cohorts = next;
            }
            _ => unreachable!("label map mismatch"),
        }
    }

    let mut outcome = LineOutcome {
        shipped: 0.0,
        good: 0.0,
        embodied: 0.0,
        by_cat: [0.0; NCAT],
    };
    for cohort in &cohorts {
        outcome.shipped += cohort.mass();
        outcome.good += cohort.good;
        outcome.embodied += cohort.mass() * cohort.cost;
        for (o, c) in outcome.by_cat.iter_mut().zip(cohort.by_cat.iter()) {
            *o += cohort.mass() * c;
        }
    }
    (outcome, acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StepCost;
    use crate::part::Part;
    use crate::stage::{Attach, Process, Rework, Test};
    use crate::yield_model::YieldModel;
    use ipass_units::Probability;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn money(v: f64) -> Money {
        Money::new(v)
    }

    /// Evaluate through the production IR path *and* the object-graph
    /// oracle, assert they agree to 1e-12, and return the IR report —
    /// every unit test below therefore exercises both engines.
    fn analyze_line(
        line: &Line,
        nre: Money,
        volume: u64,
    ) -> Result<crate::report::CostReport, FlowError> {
        let oracle = analyze_line_reference(line, nre, volume);
        let ir = line
            .validate()
            .and_then(|()| analyze_program(&RoutingProgram::compile(line), nre, volume));
        match (&oracle, &ir) {
            (Ok(a), Ok(b)) => {
                let close = |x: f64, y: f64, what: &str| {
                    assert!(
                        (x - y).abs() <= 1e-12 * x.abs().max(y.abs()).max(1.0),
                        "{what}: oracle {x} vs IR {y}"
                    );
                };
                close(a.shipped_fraction(), b.shipped_fraction(), "shipped");
                close(a.good_shipped(), b.good_shipped(), "good");
                close(a.total_spend().units(), b.total_spend().units(), "spend");
                close(
                    a.shipped_embodied().units(),
                    b.shipped_embodied().units(),
                    "embodied",
                );
                for cat in CostCategory::ALL {
                    close(
                        a.by_category()[cat].units(),
                        b.by_category()[cat].units(),
                        cat.label(),
                    );
                }
                assert_eq!(a.defect_pareto().len(), b.defect_pareto().len());
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("engines disagree on failure: oracle {a:?} vs IR {b:?}"),
        }
        ir
    }

    #[test]
    fn single_process_no_test_ships_everything() {
        let line = Line::builder(
            "l",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(money(2.0))),
        )
        .process(
            Process::new("p")
                .with_cost(StepCost::fixed(money(3.0)))
                .with_yield(YieldModel::flat(p(0.9))),
        )
        .build()
        .unwrap();
        let r = analyze_line(&line, Money::ZERO, 1).unwrap();
        assert!((r.shipped_fraction() - 1.0).abs() < 1e-12);
        // 10 % of shipped units are defective escapes (no test).
        assert!((r.escape_rate() - 0.1).abs() < 1e-12);
        assert!((r.final_cost_per_shipped().units() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_test_scraps_all_defectives() {
        let line = Line::builder(
            "l",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(money(10.0))),
        )
        .process(Process::new("p").with_yield(YieldModel::flat(p(0.8))))
        .test(Test::new("t").with_cost(StepCost::fixed(money(1.0))))
        .build()
        .unwrap();
        let r = analyze_line(&line, Money::ZERO, 1).unwrap();
        assert!((r.shipped_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(r.escape_rate(), 0.0);
        // Each shipped unit costs 11; scrap = 0.2 × 11 spread over 0.8.
        assert!((r.direct_cost_per_shipped().units() - 11.0).abs() < 1e-12);
        assert!((r.yield_loss_per_shipped().units() - 0.2 * 11.0 / 0.8).abs() < 1e-12);
    }

    #[test]
    fn imperfect_coverage_lets_escapes_through() {
        let line = Line::builder("l", Part::new("c", CostCategory::Substrate))
            .process(Process::new("p").with_yield(YieldModel::flat(p(0.9))))
            .test(Test::new("t").with_coverage(p(0.99)))
            .build()
            .unwrap();
        let r = analyze_line(&line, Money::ZERO, 1).unwrap();
        let expected_shipped = 0.9 + 0.1 * 0.01;
        assert!((r.shipped_fraction() - expected_shipped).abs() < 1e-12);
        assert!((r.escapes() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn attach_brings_part_cost_and_defects() {
        let line = Line::builder("l", Part::new("c", CostCategory::Substrate))
            .attach(
                Attach::new("a")
                    .input(
                        Part::new("die", CostCategory::Chip)
                            .with_cost(StepCost::fixed(money(5.0)))
                            .with_incoming_yield(YieldModel::flat(p(0.95))),
                        2,
                    )
                    .with_cost(StepCost::per_item(money(0.1), 2))
                    .with_yield(YieldModel::flat(p(0.99))),
            )
            .build()
            .unwrap();
        let r = analyze_line(&line, Money::ZERO, 1).unwrap();
        // Cost: 2 dies × 5 + op 0.2.
        assert!((r.direct_cost_per_shipped().units() - 10.2).abs() < 1e-12);
        // Good fraction: 0.99 (op) × 0.95².
        let expected_good = 0.99 * 0.95f64.powi(2);
        assert!((1.0 - r.escape_rate() - expected_good).abs() < 1e-12);
        assert!((r.category_cost_per_shipped(CostCategory::Chip).units() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rework_recovers_units() {
        // All units defective after the process; rework always succeeds.
        let line = Line::builder(
            "l",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(money(1.0))),
        )
        .process(Process::new("break").with_yield(YieldModel::flat(p(0.0))))
        .test(
            Test::new("t")
                .with_cost(StepCost::fixed(money(1.0)))
                .on_fail(FailAction::Rework(Rework::new(
                    StepCost::fixed(money(0.5)),
                    p(1.0),
                    3,
                ))),
        )
        .build()
        .unwrap();
        let r = analyze_line(&line, Money::ZERO, 1).unwrap();
        assert!((r.shipped_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(r.escape_rate(), 0.0);
        // Cost: carrier 1 + test 1 + rework 0.5 + retest 1 = 3.5.
        assert!((r.final_cost_per_shipped().units() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn rework_exhausts_attempts_and_scraps() {
        // Rework never succeeds, coverage perfect: after 2 attempts scrap.
        let line = Line::builder(
            "l",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(money(1.0))),
        )
        .process(Process::new("break").with_yield(YieldModel::flat(p(0.5))))
        .test(Test::new("t").on_fail(FailAction::Rework(Rework::new(StepCost::ZERO, p(0.0), 2))))
        .build()
        .unwrap();
        let r = analyze_line(&line, Money::ZERO, 1).unwrap();
        assert!((r.shipped_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(r.escape_rate(), 0.0);
    }

    #[test]
    fn nested_line_scrap_is_booked_globally() {
        // Sub-line: 50 % yield with perfect test → every consumed good
        // unit costs 2 sub-starts; sub scrap appears as yield loss.
        let sub = Line::builder(
            "sub",
            Part::new("blank", CostCategory::Substrate).with_cost(StepCost::fixed(money(4.0))),
        )
        .process(Process::new("fab").with_yield(YieldModel::flat(p(0.5))))
        .test(Test::new("probe"))
        .build()
        .unwrap();
        let line = Line::builder("main", Part::new("pcb", CostCategory::Substrate))
            .attach(Attach::new("join").input(sub, 1))
            .build()
            .unwrap();
        let r = analyze_line(&line, Money::ZERO, 1).unwrap();
        // Direct: one good sub-unit embodies 4.0.
        assert!((r.direct_cost_per_shipped().units() - 4.0).abs() < 1e-12);
        // Scrap: one extra sub-start of 4.0 sunk per shipped unit.
        assert!((r.yield_loss_per_shipped().units() - 4.0).abs() < 1e-12);
        assert!((r.final_cost_per_shipped().units() - 8.0).abs() < 1e-12);
        // Sub-line consumed good units only → no escapes.
        assert_eq!(r.escape_rate(), 0.0);
    }

    #[test]
    fn pareto_identifies_dominant_defect_source() {
        let line = Line::builder("l", Part::new("c", CostCategory::Substrate))
            .process(Process::new("small").with_yield(YieldModel::flat(p(0.99))))
            .process(Process::new("big").with_yield(YieldModel::flat(p(0.8))))
            .build()
            .unwrap();
        let r = analyze_line(&line, Money::ZERO, 1).unwrap();
        let pareto = r.defect_pareto();
        assert_eq!(pareto[0].0, "big");
        assert!((pareto[0].1 - 0.99 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn nothing_shipped_is_an_error() {
        let line = Line::builder("l", Part::new("c", CostCategory::Substrate))
            .process(Process::new("kill").with_yield(YieldModel::flat(p(0.0))))
            .test(Test::new("t"))
            .build()
            .unwrap();
        let err = analyze_line(&line, Money::ZERO, 1).unwrap_err();
        assert!(matches!(err, FlowError::NothingShipped { .. }));
    }
}
