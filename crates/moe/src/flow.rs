//! The top-level production flow: a line plus run-level economics.

use crate::analytic;
use crate::compile::RoutingProgram;
use crate::error::FlowError;
use crate::line::Line;
use crate::mc::{self, SimOptions, SimSummary};
use crate::report::CostReport;
use ipass_units::Money;
use std::sync::{Arc, OnceLock};

/// A production flow ready for evaluation: the [`Line`] plus NRE and the
/// production volume over which NRE is amortized.
///
/// # Examples
///
/// ```
/// use ipass_moe::{CostCategory, Flow, Line, Part, Process, StepCost, YieldModel};
/// use ipass_units::Money;
///
/// let line = Line::builder("demo", Part::new("pcb", CostCategory::Substrate)
///         .with_cost(StepCost::fixed(Money::new(2.0))))
///     .process(Process::new("assemble").with_cost(StepCost::fixed(Money::new(1.0))))
///     .build()?;
/// let flow = Flow::new(line)
///     .with_nre(Money::new(50_000.0))
///     .with_volume(100_000);
/// let report = flow.analyze()?;
/// // 3.0 direct + 0.5 NRE share:
/// assert!((report.final_cost_per_shipped().units() - 3.5).abs() < 1e-9);
/// # Ok::<(), ipass_moe::FlowError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Flow {
    line: Line,
    nre: Money,
    volume: u64,
    /// The line compiled into a flat routing program, built lazily on
    /// the first simulation and reused by every later `simulate*` call
    /// (clones share the compiled program through the `Arc`). Purely
    /// derived state: never part of equality.
    compiled: OnceLock<Arc<RoutingProgram>>,
}

impl PartialEq for Flow {
    fn eq(&self, other: &Flow) -> bool {
        self.line == other.line && self.nre == other.nre && self.volume == other.volume
    }
}

impl Flow {
    /// Wrap a line with default economics (no NRE, volume 1).
    pub fn new(line: Line) -> Flow {
        Flow {
            line,
            nre: Money::ZERO,
            volume: 1,
            compiled: OnceLock::new(),
        }
    }

    /// The line compiled into its routing program, validating and
    /// compiling on first use.
    fn program(&self) -> Result<&Arc<RoutingProgram>, FlowError> {
        if let Some(program) = self.compiled.get() {
            return Ok(program);
        }
        self.line.validate()?;
        Ok(self
            .compiled
            .get_or_init(|| Arc::new(RoutingProgram::compile(&self.line))))
    }

    /// Set the non-recurring engineering cost for the production run
    /// (masks, tooling, design).
    pub fn with_nre(mut self, nre: Money) -> Flow {
        self.nre = nre;
        self
    }

    /// Set the production volume over which NRE is amortized.
    pub fn with_volume(mut self, volume: u64) -> Flow {
        self.volume = volume.max(1);
        self
    }

    /// The flow's name (the top line's name).
    pub fn name(&self) -> &str {
        self.line.name()
    }

    /// The underlying production line.
    pub fn line(&self) -> &Line {
        &self.line
    }

    /// Configured NRE.
    pub fn nre(&self) -> Money {
        self.nre
    }

    /// Configured amortization volume.
    pub fn volume(&self) -> u64 {
        self.volume
    }

    /// Evaluate the flow with the closed-form expected-value engine.
    ///
    /// Runs on the same compiled routing program as the Monte Carlo
    /// kernel (cached on the flow), so repeated analytic evaluations
    /// pay compilation once.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] if the line is structurally invalid or ships
    /// nothing.
    pub fn analyze(&self) -> Result<CostReport, FlowError> {
        analytic::analyze_program(self.program()?, self.nre, self.volume)
    }

    /// The flow's cached compiled program as a [`CompiledFlow`] handle —
    /// the entry point for patched scenario sweeps (see
    /// [`CompiledFlow::patch`]).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] if the line is structurally invalid.
    ///
    /// [`CompiledFlow`]: crate::CompiledFlow
    /// [`CompiledFlow::patch`]: crate::CompiledFlow::patch
    pub fn compiled(&self) -> Result<crate::patch::CompiledFlow, FlowError> {
        let compiled =
            crate::patch::CompiledFlow::new(self.program()?.clone(), self.nre, self.volume);
        // Debug builds statically verify every freshly compiled program:
        // a compiler bug that corrupts an invariant the engines trust
        // fails loudly here instead of skewing numbers downstream.
        #[cfg(debug_assertions)]
        {
            let diags = compiled.verify();
            debug_assert!(
                !diags.has_errors(),
                "compiled program for flow {:?} failed static verification:\n{diags}",
                self.name(),
            );
        }
        Ok(compiled)
    }

    /// Evaluate the flow by seeded Monte Carlo simulation.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] if the line is structurally invalid, no units
    /// are requested, nothing ships, or a nested line starves its
    /// consumer.
    pub fn simulate(&self, options: &SimOptions) -> Result<CostReport, FlowError> {
        self.simulate_summary(options).map(|s| s.report)
    }

    /// Like [`Flow::simulate`] but returns extra Monte Carlo statistics.
    ///
    /// # Errors
    ///
    /// See [`Flow::simulate`].
    pub fn simulate_summary(&self, options: &SimOptions) -> Result<SimSummary, FlowError> {
        mc::simulate_program(self.program()?, self.nre, self.volume, options, None)
    }

    /// Like [`Flow::simulate_summary`], but stop as soon as the
    /// shipped-fraction confidence interval satisfies `stop` (treating
    /// `options.units` as the budget). The stopping point is evaluated
    /// at deterministic chunk boundaries, so results are bit-identical
    /// for any thread count.
    ///
    /// # Errors
    ///
    /// See [`Flow::simulate`].
    pub fn simulate_adaptive(
        &self,
        options: &SimOptions,
        stop: ipass_sim::StopRule,
    ) -> Result<SimSummary, FlowError> {
        mc::simulate_program(self.program()?, self.nre, self.volume, options, Some(stop))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostCategory, StepCost};
    use crate::part::Part;
    use crate::stage::{Process, Test};
    use crate::yield_model::YieldModel;
    use ipass_units::Probability;

    fn flow() -> Flow {
        let line = Line::builder(
            "f",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(1.0))),
        )
        .process(
            Process::new("p")
                .with_cost(StepCost::fixed(Money::new(2.0)))
                .with_yield(YieldModel::percent(95.0)),
        )
        .test(
            Test::new("t")
                .with_cost(StepCost::fixed(Money::new(0.5)))
                .with_coverage(Probability::new(0.99).unwrap()),
        )
        .build()
        .unwrap();
        Flow::new(line)
    }

    #[test]
    fn accessors() {
        let f = flow().with_nre(Money::new(10.0)).with_volume(100);
        assert_eq!(f.name(), "f");
        assert_eq!(f.nre(), Money::new(10.0));
        assert_eq!(f.volume(), 100);
        assert_eq!(f.line().stages().len(), 2);
    }

    #[test]
    fn volume_is_at_least_one() {
        assert_eq!(flow().with_volume(0).volume(), 1);
    }

    #[test]
    fn engines_agree() {
        let f = flow();
        let a = f.analyze().unwrap();
        let m = f.simulate(&SimOptions::new(200_000).with_seed(11)).unwrap();
        assert!((a.shipped_fraction() - m.shipped_fraction()).abs() < 0.005);
        let rel = m.final_cost_per_shipped() / a.final_cost_per_shipped();
        assert!((rel - 1.0).abs() < 0.01);
    }

    #[test]
    fn threads_partition_all_units() {
        let f = flow();
        let s = f
            .simulate_summary(&SimOptions::new(10_001).with_seed(1).with_threads(4))
            .unwrap();
        let report = &s.report;
        assert_eq!(report.started(), 10_001.0);
        assert!((report.shipped() + s.scrapped - 10_001.0).abs() < 1e-9);
    }

    #[test]
    fn nre_amortization_shrinks_with_volume() {
        let small = flow().with_nre(Money::new(1000.0)).with_volume(100);
        let large = flow().with_nre(Money::new(1000.0)).with_volume(100_000);
        let c_small = small.analyze().unwrap().final_cost_per_shipped();
        let c_large = large.analyze().unwrap().final_cost_per_shipped();
        assert!(c_small > c_large);
    }
}
