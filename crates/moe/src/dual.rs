//! Forward-mode dual numbers over the analytic cohort walk.
//!
//! The analytic engine is a straight-line walk over precomputed ops
//! (see [`crate::compile`]); genericizing that walk over a scalar type
//! makes it an automatic-differentiation substrate for free. This
//! module provides the two scalars:
//!
//! * `f64` — the production path, bit-identical to the pre-generic
//!   engine (the seed lookup compiles away entirely), and
//! * [`Dual<K>`] — a value plus a K-wide tangent vector. Every
//!   arithmetic op computes its value component with the *identical*
//!   `f64` operation the plain walk performs and carries the K
//!   directional derivatives alongside, so one dual walk returns the
//!   exact primal result **and** exact ∂output/∂direction for K
//!   tangent directions at once.
//!
//! Tangent directions are seeded through the compiled patch-slot table:
//! a [`DualDirection`] is a weighted combination of slot parameters
//! (the same `(name, kind)` vocabulary [`FlowPatch`] setters use, with
//! the same per-input-unit semantics), and
//! [`CompiledFlow::analyze_duals`] turns each one into per-op tangent
//! seeds on the folded parameters. Branch decisions inside the walk
//! compare only the primal component, so the dual walk's control flow —
//! and therefore its primal arithmetic sequence — matches the plain
//! `f64` walk exactly.
//!
//! [`FlowPatch`]: crate::FlowPatch
//! [`CompiledFlow::analyze_duals`]: crate::CompiledFlow::analyze_duals

use crate::compile::SlotKind;
use crate::cost::CostCategory;
use crate::report::CostReport;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// The scalar the cohort walk is generic over: `f64` for plain
/// evaluation, [`Dual<K>`] for forward-mode differentiation.
///
/// Implementations must compute the primal component of every
/// operation with the exact `f64` instruction sequence a plain `f64`
/// evaluation would use — the dual walk's value output is required to
/// be bit-identical to the plain walk's.
pub(crate) trait Scalar:
    Copy
    + core::fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + AddAssign
    + SubAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Lift a constant: value `v`, zero tangent.
    fn from_f64(v: f64) -> Self;
    /// The primal (value) component — all branch guards compare this.
    fn val(self) -> f64;
    /// Multiply by a constant (`k` carries no tangent).
    fn scale(self, k: f64) -> Self;
    /// Raise to a constant power (`q` carries no tangent).
    fn powf(self, q: f64) -> Self;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> f64 {
        v
    }

    #[inline(always)]
    fn val(self) -> f64 {
        self
    }

    #[inline(always)]
    fn scale(self, k: f64) -> f64 {
        self * k
    }

    #[inline(always)]
    fn powf(self, q: f64) -> f64 {
        f64::powf(self, q)
    }
}

/// A forward-mode dual number: a value plus a K-wide tangent vector.
///
/// `eps[k]` is the derivative of `val` with respect to tangent
/// direction `k`. The value component of every operation is computed
/// with the identical `f64` expression the plain walk uses (`a.val ⊕
/// b.val`), never an algebraically-rearranged form, so primal outputs
/// stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Dual<const K: usize> {
    pub(crate) val: f64,
    pub(crate) eps: [f64; K],
}

impl<const K: usize> Add for Dual<K> {
    type Output = Dual<K>;

    #[inline]
    fn add(self, rhs: Dual<K>) -> Dual<K> {
        let mut eps = self.eps;
        for (e, r) in eps.iter_mut().zip(rhs.eps.iter()) {
            *e += *r;
        }
        Dual {
            val: self.val + rhs.val,
            eps,
        }
    }
}

impl<const K: usize> Sub for Dual<K> {
    type Output = Dual<K>;

    #[inline]
    fn sub(self, rhs: Dual<K>) -> Dual<K> {
        let mut eps = self.eps;
        for (e, r) in eps.iter_mut().zip(rhs.eps.iter()) {
            *e -= *r;
        }
        Dual {
            val: self.val - rhs.val,
            eps,
        }
    }
}

impl<const K: usize> Mul for Dual<K> {
    type Output = Dual<K>;

    #[inline]
    fn mul(self, rhs: Dual<K>) -> Dual<K> {
        // Product rule, fused: the tangent lanes carry no bit-identity
        // contract (only `val` does), so let the FMA units have them.
        let mut eps = [0.0; K];
        for ((e, a), b) in eps.iter_mut().zip(self.eps.iter()).zip(rhs.eps.iter()) {
            *e = a.mul_add(rhs.val, self.val * b);
        }
        Dual {
            val: self.val * rhs.val,
            eps,
        }
    }
}

impl<const K: usize> Div for Dual<K> {
    type Output = Dual<K>;

    #[inline]
    fn div(self, rhs: Dual<K>) -> Dual<K> {
        // Quotient rule; the value stays a plain division (not a
        // reciprocal-multiply) for bit-identity with the f64 walk. The
        // tangent lanes carry no such contract, so they share one
        // reciprocal instead of paying K hardware divisions.
        let inv = 1.0 / (rhs.val * rhs.val);
        let mut eps = [0.0; K];
        for ((e, a), b) in eps.iter_mut().zip(self.eps.iter()).zip(rhs.eps.iter()) {
            *e = a.mul_add(rhs.val, -(self.val * b)) * inv;
        }
        Dual {
            val: self.val / rhs.val,
            eps,
        }
    }
}

impl<const K: usize> AddAssign for Dual<K> {
    #[inline]
    fn add_assign(&mut self, rhs: Dual<K>) {
        *self = *self + rhs;
    }
}

impl<const K: usize> SubAssign for Dual<K> {
    #[inline]
    fn sub_assign(&mut self, rhs: Dual<K>) {
        *self = *self - rhs;
    }
}

impl<const K: usize> Scalar for Dual<K> {
    const ZERO: Dual<K> = Dual {
        val: 0.0,
        eps: [0.0; K],
    };
    const ONE: Dual<K> = Dual {
        val: 1.0,
        eps: [0.0; K],
    };

    #[inline]
    fn from_f64(v: f64) -> Dual<K> {
        Dual {
            val: v,
            eps: [0.0; K],
        }
    }

    #[inline]
    fn val(self) -> f64 {
        self.val
    }

    #[inline]
    fn scale(self, k: f64) -> Dual<K> {
        let mut eps = self.eps;
        for e in eps.iter_mut() {
            *e *= k;
        }
        Dual {
            val: self.val * k,
            eps,
        }
    }

    #[inline]
    fn powf(self, q: f64) -> Dual<K> {
        // d(x^q)/dx = q·x^(q−1); the value is the identical powf call
        // the plain walk makes.
        let d = q * self.val.powf(q - 1.0);
        let mut eps = self.eps;
        for e in eps.iter_mut() {
            *e *= d;
        }
        Dual {
            val: self.val.powf(q),
            eps,
        }
    }
}

/// How the generic walk lifts each op parameter into the scalar:
/// either as a constant (`f64` path) or as a seeded dual carrying that
/// parameter's tangent weights.
pub(crate) trait TangentSeeds<S: Scalar> {
    /// Lift op `op`'s cost parameter.
    fn cost(&self, op: usize, value: f64) -> S;
    /// Lift op `op`'s folded success probability.
    fn p_good(&self, op: usize, value: f64) -> S;
    /// Lift op `op`'s fault coverage.
    fn coverage(&self, op: usize, value: f64) -> S;
}

/// The production `f64` path: every parameter is a constant and the op
/// index is unused, so the lookup compiles away entirely.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NoSeeds;

impl TangentSeeds<f64> for NoSeeds {
    #[inline(always)]
    fn cost(&self, _op: usize, value: f64) -> f64 {
        value
    }

    #[inline(always)]
    fn p_good(&self, _op: usize, value: f64) -> f64 {
        value
    }

    #[inline(always)]
    fn coverage(&self, _op: usize, value: f64) -> f64 {
        value
    }
}

/// Per-op tangent weights for a K-direction dual pass, indexed by
/// absolute op position — compilation's patch-slot table doubling as
/// the seeding map.
///
/// Sparse by row: a K=12 tornado seeds a dozen of the program's ops,
/// and a dense `n_ops × K` triple of planes costs more to zero per
/// evaluation than the seeding it carries. Unseeded ops hit the
/// `u32::MAX` sentinel and lift with all-zero tangents.
#[derive(Debug, Clone)]
pub(crate) struct SeedTable<const K: usize> {
    /// Row index per op; `u32::MAX` means no parameter of that op is
    /// seeded.
    index: Vec<u32>,
    /// `[cost, p_good, coverage]` lane triples for the seeded ops.
    rows: Vec<[[f64; K]; 3]>,
}

impl<const K: usize> SeedTable<K> {
    pub(crate) fn new(n_ops: usize) -> SeedTable<K> {
        SeedTable {
            index: vec![u32::MAX; n_ops],
            rows: Vec::new(),
        }
    }

    /// Accumulate `weight` into lane `lane` of op `op`'s `kind`
    /// parameter (directions may touch the same slot more than once).
    pub(crate) fn seed(&mut self, op: usize, kind: SlotKind, lane: usize, weight: f64) {
        let row = match self.index[op] {
            u32::MAX => {
                self.index[op] = self.rows.len() as u32;
                self.rows.push([[0.0; K]; 3]);
                self.rows.last_mut().expect("row just pushed")
            }
            i => &mut self.rows[i as usize],
        };
        let plane = match kind {
            SlotKind::Cost => 0,
            SlotKind::Yield => 1,
            SlotKind::Coverage => 2,
        };
        row[plane][lane] += weight;
    }

    #[inline]
    fn lift(&self, op: usize, plane: usize, value: f64) -> Dual<K> {
        let eps = match self.index[op] {
            u32::MAX => [0.0; K],
            i => self.rows[i as usize][plane],
        };
        Dual { val: value, eps }
    }
}

impl<const K: usize> TangentSeeds<Dual<K>> for SeedTable<K> {
    #[inline]
    fn cost(&self, op: usize, value: f64) -> Dual<K> {
        self.lift(op, 0, value)
    }

    #[inline]
    fn p_good(&self, op: usize, value: f64) -> Dual<K> {
        self.lift(op, 1, value)
    }

    #[inline]
    fn coverage(&self, op: usize, value: f64) -> Dual<K> {
        self.lift(op, 2, value)
    }
}

/// One tangent direction for [`CompiledFlow::analyze_duals`]: a
/// weighted combination of patch-slot parameters.
///
/// Weights use the *per-input-unit* semantics of the [`FlowPatch`]
/// setters: a weight `w` on a [`SlotKind::Cost`] slot means the unit
/// cost moves at rate `w` along the direction (the folded op cost moves
/// at `w·quantity`), a weight on a [`SlotKind::Yield`] slot moves the
/// per-unit success probability (the folded `p^q` moves by the chain
/// rule), and a [`SlotKind::Coverage`] weight moves the test coverage
/// directly. The returned [`Gradient`] is therefore directly comparable
/// to a finite difference of `set_cost`/`set_yield`/`set_coverage`
/// patches.
///
/// [`CompiledFlow::analyze_duals`]: crate::CompiledFlow::analyze_duals
/// [`FlowPatch`]: crate::FlowPatch
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DualDirection {
    pub(crate) parts: Vec<(String, SlotKind, f64)>,
}

impl DualDirection {
    /// An empty direction (gradient zero until parts are added).
    pub fn new() -> DualDirection {
        DualDirection::default()
    }

    /// Add a component: slot `slot` of kind `kind` moving at `weight`
    /// per unit of the direction parameter.
    #[must_use]
    pub fn with(mut self, slot: impl Into<String>, kind: SlotKind, weight: f64) -> DualDirection {
        self.parts.push((slot.into(), kind, weight));
        self
    }

    /// The unit direction along one cost slot (∂/∂ unit cost).
    pub fn cost(slot: impl Into<String>) -> DualDirection {
        DualDirection::new().with(slot, SlotKind::Cost, 1.0)
    }

    /// The unit direction along one yield slot (∂/∂ per-unit yield).
    pub fn step_yield(slot: impl Into<String>) -> DualDirection {
        DualDirection::new().with(slot, SlotKind::Yield, 1.0)
    }

    /// The unit direction along one coverage slot (∂/∂ coverage).
    pub fn coverage(slot: impl Into<String>) -> DualDirection {
        DualDirection::new().with(slot, SlotKind::Coverage, 1.0)
    }

    /// The direction's components, `(slot, kind, weight)` in insertion
    /// order — what [`CompiledFlow::lint_directions`] resolves.
    ///
    /// [`CompiledFlow::lint_directions`]: crate::CompiledFlow::lint_directions
    pub fn components(&self) -> impl Iterator<Item = (&str, SlotKind, f64)> + '_ {
        self.parts.iter().map(|(s, k, w)| (s.as_str(), *k, *w))
    }
}

/// Exact directional derivatives of one evaluated flow along one
/// [`DualDirection`] — every scalar the report exposes, differentiated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gradient {
    /// ∂(final cost per shipped unit)/∂direction (Eq. 1, NRE included).
    pub final_cost_per_shipped: f64,
    /// ∂(direct cost per shipped unit)/∂direction.
    pub direct_cost_per_shipped: f64,
    /// ∂(yield loss per shipped unit)/∂direction.
    pub yield_loss_per_shipped: f64,
    /// ∂(total production spend)/∂direction.
    pub total_spend: f64,
    /// ∂(shipped fraction)/∂direction.
    pub shipped_fraction: f64,
    /// ∂(escape rate)/∂direction.
    pub escape_rate: f64,
    /// ∂(per-category cost per shipped unit)/∂direction, indexed by
    /// [`CostCategory::index`].
    pub by_category: [f64; CostCategory::COUNT],
}

impl Gradient {
    /// The per-category derivative for `category`.
    pub fn category(&self, category: CostCategory) -> f64 {
        self.by_category[category.index()]
    }
}

/// The result of a dual pass: the primal report (bit-identical to
/// [`CompiledFlow::analyze`]) plus one [`Gradient`] per requested
/// direction.
///
/// [`CompiledFlow::analyze`]: crate::CompiledFlow::analyze
#[derive(Debug, Clone, PartialEq)]
pub struct DualReport {
    /// The primal cost report.
    pub report: CostReport,
    /// Per-direction gradients, aligned with the request order.
    pub gradients: Vec<Gradient>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d2(val: f64, e0: f64, e1: f64) -> Dual<2> {
        Dual { val, eps: [e0, e1] }
    }

    #[test]
    fn arithmetic_matches_calculus() {
        let x = d2(3.0, 1.0, 0.0);
        let y = d2(2.0, 0.0, 1.0);
        let s = x + y;
        assert_eq!((s.val, s.eps), (5.0, [1.0, 1.0]));
        let p = x * y;
        assert_eq!((p.val, p.eps), (6.0, [2.0, 3.0]));
        let q = x / y;
        assert_eq!(q.val, 1.5);
        assert!((q.eps[0] - 0.5).abs() < 1e-15); // 1/y
        assert!((q.eps[1] + 0.75).abs() < 1e-15); // −x/y²
        let w = x.powf(2.0);
        assert_eq!(w.val, 9.0);
        assert!((w.eps[0] - 6.0).abs() < 1e-15); // 2x
    }

    #[test]
    fn primal_component_is_the_plain_f64_operation() {
        // Values that expose any algebraic rearrangement of the primal.
        let a = d2(0.1, 1.0, 0.0);
        let b = d2(0.3, 0.0, 1.0);
        assert_eq!((a + b).val, 0.1 + 0.3);
        assert_eq!((a * b).val, 0.1 * 0.3);
        assert_eq!((a / b).val, 0.1 / 0.3);
        assert_eq!(a.powf(2.5).val, 0.1f64.powf(2.5));
        assert_eq!(a.scale(0.7).val, 0.1 * 0.7);
    }

    #[test]
    fn seed_table_accumulates_repeated_slots() {
        let mut t = SeedTable::<2>::new(3);
        t.seed(1, SlotKind::Cost, 0, 2.0);
        t.seed(1, SlotKind::Cost, 0, 3.0);
        t.seed(1, SlotKind::Yield, 1, 4.0);
        let c: Dual<2> = t.cost(1, 7.0);
        assert_eq!((c.val, c.eps), (7.0, [5.0, 0.0]));
        let y: Dual<2> = t.p_good(1, 0.9);
        assert_eq!((y.val, y.eps), (0.9, [0.0, 4.0]));
        let untouched: Dual<2> = t.coverage(2, 0.5);
        assert_eq!(untouched.eps, [0.0, 0.0]);
    }

    #[test]
    fn direction_builders_compose() {
        let d = DualDirection::cost("a").with("b", SlotKind::Yield, -0.5);
        assert_eq!(
            d.parts,
            vec![
                ("a".to_owned(), SlotKind::Cost, 1.0),
                ("b".to_owned(), SlotKind::Yield, -0.5)
            ]
        );
    }
}
