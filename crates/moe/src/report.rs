//! Cost reports: the paper's Eq. 1 accounting plus breakdowns.

use crate::cost::{CostCategory, CostVector};
use ipass_units::Money;
use std::fmt;

/// One row of a rendered cost breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdownRow {
    /// Row label.
    pub label: String,
    /// Amount per shipped unit.
    pub per_shipped: Money,
    /// Share of the final cost (0–1).
    pub share: f64,
}

/// The result of evaluating a [`Flow`](crate::Flow), from either engine.
///
/// All absolute figures refer to `started` carrier units (the analytic
/// engine normalizes `started = 1`); the `*_per_shipped` accessors
/// implement the paper's Eq. 1:
///
/// ```text
/// final cost = (Σ direct cost + Σ scrap cost + Σ NRE) / #shipped
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    name: String,
    started: f64,
    shipped: f64,
    good_shipped: f64,
    total_spend: Money,
    shipped_embodied: Money,
    by_category: CostVector,
    nre: Money,
    volume: u64,
    defect_pareto: Vec<(String, f64)>,
}

#[allow(clippy::too_many_arguments)]
impl CostReport {
    pub(crate) fn from_parts(
        name: String,
        started: f64,
        shipped: f64,
        good_shipped: f64,
        total_spend: Money,
        shipped_embodied: Money,
        by_category: CostVector,
        nre: Money,
        volume: u64,
        defect_pareto: Vec<(String, f64)>,
    ) -> CostReport {
        debug_assert!(shipped <= started + 1e-9);
        debug_assert!(good_shipped <= shipped + 1e-9);
        CostReport {
            name,
            started,
            shipped,
            good_shipped,
            total_spend,
            shipped_embodied,
            by_category,
            nre,
            volume,
            defect_pareto,
        }
    }

    /// Name of the evaluated flow.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Units started (1.0 for the analytic engine).
    pub fn started(&self) -> f64 {
        self.started
    }

    /// Units shipped (includes escapes).
    pub fn shipped(&self) -> f64 {
        self.shipped
    }

    /// Fraction of started units that ship.
    pub fn shipped_fraction(&self) -> f64 {
        if self.started == 0.0 {
            0.0
        } else {
            self.shipped / self.started
        }
    }

    /// Shipped units that are actually good.
    pub fn good_shipped(&self) -> f64 {
        self.good_shipped
    }

    /// Shipped-but-defective units ("test escapes").
    pub fn escapes(&self) -> f64 {
        (self.shipped - self.good_shipped).max(0.0)
    }

    /// Fraction of shipped units that are defective.
    pub fn escape_rate(&self) -> f64 {
        if self.shipped == 0.0 {
            0.0
        } else {
            self.escapes() / self.shipped
        }
    }

    /// Total production spend for the started units, excluding NRE.
    pub fn total_spend(&self) -> Money {
        self.total_spend
    }

    /// Money embodied in the shipped units themselves.
    pub fn shipped_embodied(&self) -> Money {
        self.shipped_embodied
    }

    /// Money sunk into scrapped units (yield loss).
    pub fn scrap_spend(&self) -> Money {
        self.total_spend - self.shipped_embodied
    }

    /// Total spend by accounting category (shipped + scrapped).
    pub fn by_category(&self) -> &CostVector {
        &self.by_category
    }

    /// NRE configured for the production run.
    pub fn nre(&self) -> Money {
        self.nre
    }

    /// Production volume over which NRE is amortized.
    pub fn volume(&self) -> u64 {
        self.volume
    }

    /// Average cost accumulated by one *shipped* unit (the "direct cost"
    /// bar of Fig. 5).
    pub fn direct_cost_per_shipped(&self) -> Money {
        if self.shipped == 0.0 {
            Money::ZERO
        } else {
            self.shipped_embodied / self.shipped
        }
    }

    /// Scrap cost allocated to each shipped unit (the "yield loss" bar of
    /// Fig. 5).
    pub fn yield_loss_per_shipped(&self) -> Money {
        if self.shipped == 0.0 {
            Money::ZERO
        } else {
            self.scrap_spend() / self.shipped
        }
    }

    /// NRE allocated to each shipped unit of the production volume.
    pub fn nre_per_shipped(&self) -> Money {
        let shipped_of_volume = self.volume as f64 * self.shipped_fraction();
        if shipped_of_volume == 0.0 {
            Money::ZERO
        } else {
            self.nre / shipped_of_volume
        }
    }

    /// Eq. 1: final cost per shipped unit.
    pub fn final_cost_per_shipped(&self) -> Money {
        self.direct_cost_per_shipped() + self.yield_loss_per_shipped() + self.nre_per_shipped()
    }

    /// Per-shipped cost booked under `category` (includes the category's
    /// share of scrapped units).
    pub fn category_cost_per_shipped(&self, category: CostCategory) -> Money {
        if self.shipped == 0.0 {
            Money::ZERO
        } else {
            self.by_category[category] / self.shipped
        }
    }

    /// Fraction of started units that received their first defect at each
    /// stage/part, sorted descending ("yield pareto").
    pub fn defect_pareto(&self) -> &[(String, f64)] {
        &self.defect_pareto
    }

    /// Final cost relative to a reference report (1.0 = same cost).
    pub fn relative_cost(&self, reference: &CostReport) -> f64 {
        self.final_cost_per_shipped() / reference.final_cost_per_shipped()
    }

    /// Rows for a stacked Fig. 5-style breakdown: direct cost (with the
    /// chip share called out), yield loss and NRE.
    pub fn breakdown(&self) -> Vec<CostBreakdownRow> {
        let final_cost = self.final_cost_per_shipped().units();
        let share = |m: Money| {
            if final_cost == 0.0 {
                0.0
            } else {
                m.units() / final_cost
            }
        };
        let mut rows = vec![
            CostBreakdownRow {
                label: "direct cost".into(),
                per_shipped: self.direct_cost_per_shipped(),
                share: share(self.direct_cost_per_shipped()),
            },
            CostBreakdownRow {
                label: "thereof: chip cost".into(),
                per_shipped: self.category_cost_per_shipped(CostCategory::Chip),
                share: share(self.category_cost_per_shipped(CostCategory::Chip)),
            },
            CostBreakdownRow {
                label: "yield loss".into(),
                per_shipped: self.yield_loss_per_shipped(),
                share: share(self.yield_loss_per_shipped()),
            },
        ];
        if self.nre.units() > 0.0 {
            rows.push(CostBreakdownRow {
                label: "NRE".into(),
                per_shipped: self.nre_per_shipped(),
                share: share(self.nre_per_shipped()),
            });
        }
        rows
    }

    /// The report as a typed artifact table (summary quantities, spend
    /// by category, the defect pareto) — the canonical machine-facing
    /// form; [`CostReport::render`] stays as the compact human layout.
    pub fn artifact_table(&self) -> ipass_report::Table {
        use ipass_report::Cell;
        let mut rows: Vec<(String, f64)> = vec![
            ("units started".into(), self.started),
            ("units shipped".into(), self.shipped),
            ("shipped fraction".into(), self.shipped_fraction()),
            ("escape rate".into(), self.escape_rate()),
            (
                "final cost per shipped".into(),
                self.final_cost_per_shipped().units(),
            ),
            (
                "direct cost per shipped".into(),
                self.direct_cost_per_shipped().units(),
            ),
            (
                "yield loss per shipped".into(),
                self.yield_loss_per_shipped().units(),
            ),
            ("NRE per shipped".into(), self.nre_per_shipped().units()),
        ];
        for (cat, amount) in self.by_category.iter() {
            if amount.units() != 0.0 {
                rows.push((format!("spend: {}", cat.label()), amount.units()));
            }
        }
        for (label, frac) in &self.defect_pareto {
            rows.push((format!("first defect at {label}"), *frac));
        }
        rows.into_iter().fold(
            ipass_report::Table::new(format!("cost report — {}", self.name))
                .text_column("quantity")
                .numeric_column("value", 4),
            |t, (label, v)| t.row(vec![Cell::text(label), Cell::num(v)]),
        )
    }

    /// The report as a Fig. 5-style stacked [`Breakdown`] bar: direct
    /// cost, yield loss and (when configured) NRE per shipped unit,
    /// with the chip spend as a non-additive callout.
    ///
    /// [`Breakdown`]: ipass_report::Breakdown
    pub fn artifact_breakdown(&self) -> ipass_report::Breakdown {
        use ipass_report::Segment;
        let mut segments = vec![
            Segment::new("direct cost", self.direct_cost_per_shipped().units()),
            Segment::new("yield loss", self.yield_loss_per_shipped().units()),
        ];
        if self.nre.units() > 0.0 {
            segments.push(Segment::new("NRE", self.nre_per_shipped().units()));
        }
        let callouts = vec![Segment::new(
            "chip cost",
            self.category_cost_per_shipped(CostCategory::Chip).units(),
        )];
        ipass_report::Breakdown::new(format!("cost breakdown — {}", self.name), "cost units")
            .group_with_callouts(self.name.clone(), segments, callouts)
    }

    /// Render a human-readable report table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("flow: {}\n", self.name));
        out.push_str(&format!(
            "  started {:>12.1}   shipped {:>12.1} ({:.2}%)   escapes {:.4}%\n",
            self.started,
            self.shipped,
            self.shipped_fraction() * 100.0,
            self.escape_rate() * 100.0
        ));
        out.push_str(&format!(
            "  final cost/shipped: {}\n",
            self.final_cost_per_shipped()
        ));
        for row in self.breakdown() {
            out.push_str(&format!(
                "    {:<22} {:>10}  ({:>5.1}%)\n",
                row.label,
                row.per_shipped.to_string(),
                row.share * 100.0
            ));
        }
        out.push_str("  spend by category (incl. scrap):\n");
        for (cat, amount) in self.by_category.iter() {
            if amount.units() != 0.0 {
                out.push_str(&format!(
                    "    {:<22} {:>10}\n",
                    cat.label(),
                    amount.to_string()
                ));
            }
        }
        if !self.defect_pareto.is_empty() {
            out.push_str("  defect pareto (fraction of started units):\n");
            for (label, frac) in &self.defect_pareto {
                out.push_str(&format!("    {:<34} {:>7.3}%\n", label, frac * 100.0));
            }
        }
        out
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CostReport {
        let mut cats = CostVector::new();
        cats.book(CostCategory::Chip, Money::new(70.0));
        cats.book(CostCategory::Test, Money::new(30.0));
        CostReport::from_parts(
            "t".into(),
            1.0,
            0.8,
            0.79,
            Money::new(100.0),
            Money::new(84.0),
            cats,
            Money::new(1000.0),
            10_000,
            vec![("solder".into(), 0.15)],
        )
    }

    #[test]
    fn eq1_accounting() {
        let r = report();
        assert!((r.shipped_fraction() - 0.8).abs() < 1e-12);
        assert!((r.direct_cost_per_shipped().units() - 105.0).abs() < 1e-9);
        assert!((r.scrap_spend().units() - 16.0).abs() < 1e-9);
        assert!((r.yield_loss_per_shipped().units() - 20.0).abs() < 1e-9);
        // NRE: 1000 over 10000×0.8 shipped units = 0.125.
        assert!((r.nre_per_shipped().units() - 0.125).abs() < 1e-12);
        assert!((r.final_cost_per_shipped().units() - 125.125).abs() < 1e-9);
    }

    #[test]
    fn escapes_and_rates() {
        let r = report();
        assert!((r.escapes() - 0.01).abs() < 1e-12);
        assert!((r.escape_rate() - 0.0125).abs() < 1e-12);
    }

    #[test]
    fn relative_cost_is_unity_against_self() {
        let r = report();
        assert!((r.relative_cost(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_contains_chip_callout() {
        let r = report();
        let rows = r.breakdown();
        assert!(rows.iter().any(|row| row.label.contains("chip")));
        assert!(rows.iter().any(|row| row.label == "NRE"));
        // Direct + yield loss + NRE shares sum to 1 (chip row is a callout
        // inside direct, not additive).
        let sum: f64 = rows
            .iter()
            .filter(|row| !row.label.contains("chip"))
            .map(|row| row.share)
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_shipped_is_safe() {
        let r = CostReport::from_parts(
            "dead".into(),
            1.0,
            0.0,
            0.0,
            Money::new(10.0),
            Money::ZERO,
            CostVector::new(),
            Money::ZERO,
            1,
            vec![],
        );
        assert_eq!(r.direct_cost_per_shipped(), Money::ZERO);
        assert_eq!(r.final_cost_per_shipped(), Money::ZERO);
        assert_eq!(r.escape_rate(), 0.0);
        assert_eq!(r.shipped_fraction(), 0.0);
    }

    #[test]
    fn render_mentions_everything() {
        let text = report().render();
        assert!(text.contains("final cost/shipped"));
        assert!(text.contains("chips"));
        assert!(text.contains("solder"));
        assert!(text.contains("yield loss"));
    }
}
