//! Errors reported when building or evaluating a production flow.

use std::error::Error;
use std::fmt;

/// Error building or evaluating a production flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// The line has no stages besides the carrier start.
    EmptyLine {
        /// Name of the offending line.
        line: String,
    },
    /// An attach stage lists no inputs.
    AttachWithoutInputs {
        /// Name of the offending stage.
        stage: String,
    },
    /// An attach stage lists an input with quantity zero.
    ZeroQuantityInput {
        /// Name of the offending stage.
        stage: String,
        /// Name of the offending input.
        input: String,
    },
    /// Nested lines exceed the supported depth (guards against cycles
    /// introduced by programmatic construction).
    TooDeeplyNested {
        /// The depth limit that was exceeded.
        limit: usize,
    },
    /// The flow ships (essentially) nothing, so cost per shipped unit is
    /// undefined.
    NothingShipped {
        /// Name of the flow.
        flow: String,
    },
    /// A Monte Carlo run was requested with zero units.
    NoUnits,
    /// A Monte Carlo run was configured with a zero subassembly retry
    /// budget — every nested-line consumption would starve immediately,
    /// so the configuration is rejected up front instead of silently
    /// bumped.
    ZeroRetryBudget,
    /// A patch named a slot the compiled program does not expose (no
    /// such stage/part, or the parameter was compiled away — e.g. the
    /// yield of a step that was certain at compile time).
    UnknownPatchSlot {
        /// The requested `name (kind)` pair.
        slot: String,
    },
    /// A patch named a slot that matches more than one op (duplicate
    /// stage/part names are legal in a line); patching the first match
    /// silently would diverge from rebuilding the line, so the
    /// ambiguity is an error.
    AmbiguousPatchSlot {
        /// The requested `name (kind)` pair.
        slot: String,
    },
    /// A nested line never produced a passing unit within the retry
    /// budget of the Monte Carlo engine.
    SubassemblyStarved {
        /// Name of the starving nested line.
        line: String,
        /// Retry budget that was exhausted.
        attempts: u32,
    },
    /// A strict ([`FlowPatch::deny_warnings`]) patch wrote the same slot
    /// twice — the second write silently discards the first, which in a
    /// scenario definition almost always means two directives disagree
    /// about the same parameter.
    ///
    /// [`FlowPatch::deny_warnings`]: crate::FlowPatch::deny_warnings
    DuplicatePatchSlot {
        /// The twice-written `name (kind)` pair.
        slot: String,
    },
    /// Static verification ([`CompiledFlow::verify`]) found
    /// error-severity diagnostics, so the requested operation refused to
    /// trust the program.
    ///
    /// [`CompiledFlow::verify`]: crate::CompiledFlow::verify
    VerificationFailed {
        /// Name of the flow.
        flow: String,
        /// Number of error-severity diagnostics.
        errors: usize,
        /// The first error diagnostic, rendered.
        first: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::EmptyLine { line } => {
                write!(f, "production line {line:?} has no stages")
            }
            FlowError::AttachWithoutInputs { stage } => {
                write!(f, "attach stage {stage:?} has no inputs")
            }
            FlowError::ZeroQuantityInput { stage, input } => {
                write!(
                    f,
                    "attach stage {stage:?} lists input {input:?} with quantity zero"
                )
            }
            FlowError::TooDeeplyNested { limit } => {
                write!(f, "nested subassembly lines exceed depth limit {limit}")
            }
            FlowError::NothingShipped { flow } => {
                write!(f, "flow {flow:?} ships no units; cost per unit undefined")
            }
            FlowError::NoUnits => write!(f, "monte carlo run requested with zero units"),
            FlowError::ZeroRetryBudget => write!(
                f,
                "subassembly retry budget is zero; every nested line would starve"
            ),
            FlowError::UnknownPatchSlot { slot } => {
                write!(f, "compiled program has no patchable slot {slot:?}")
            }
            FlowError::AmbiguousPatchSlot { slot } => {
                write!(
                    f,
                    "patch slot {slot:?} matches more than one stage/part; \
                     rename the duplicates to patch them"
                )
            }
            FlowError::SubassemblyStarved { line, attempts } => {
                write!(
                    f,
                    "nested line {line:?} produced no passing unit in {attempts} attempts"
                )
            }
            FlowError::DuplicatePatchSlot { slot } => {
                write!(
                    f,
                    "patch slot {slot:?} written twice; the second write would \
                     silently discard the first"
                )
            }
            FlowError::VerificationFailed {
                flow,
                errors,
                first,
            } => {
                write!(
                    f,
                    "flow {flow:?} failed static verification with {errors} error(s); \
                     first: {first}"
                )
            }
        }
    }
}

impl Error for FlowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = FlowError::EmptyLine {
            line: "sol2".into(),
        };
        assert!(e.to_string().contains("sol2"));
        let e = FlowError::ZeroQuantityInput {
            stage: "smd".into(),
            input: "kit".into(),
        };
        assert!(e.to_string().contains("smd") && e.to_string().contains("kit"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowError>();
    }
}
