//! Static verification of compiled routing programs.
//!
//! Every engine in the crate — the scalar kernel, the batched lane
//! kernel, the analytic cohort walk, the forward-mode duals — trusts
//! the same invariants of the compiled [`RoutingProgram`] and nothing
//! used to check them except runtime agreement tests. This module is
//! the static checker: it proves (or refutes) the invariant catalog
//! without routing a single unit, in three layers.
//!
//! **Structural verification** re-derives every redundant encoding and
//! demands bit-agreement: draw thresholds must equal
//! [`SimRng::threshold`]`(p_good)` exactly, sub-line regions must be
//! in-bounds, non-overlapping, backward-referenced and partition the op
//! vector, the `flat` flag must match the op set, every slot-table
//! entry must point at an op of its [`SlotKind`], costs must be finite
//! and non-negative, probabilities in range. Violations are
//! [`Severity::Error`]s: an engine fed such a program can silently
//! produce wrong numbers.
//!
//! **Abstract interpretation** over an interval domain walks each
//! region once with a two-bit defect abstraction (`may be clean` ×
//! `may be defective`) and computes [`StaticBounds`]: for *any*
//! sequence of draw outcomes, how many RNG draws a unit can consume
//! (`[min, max]` — the budget the lane kernel's run-batching relies
//! on), how much cost it can book, whether it can ship/scrap, how many
//! rework attempts and sub-unit builds it can trigger against the
//! `subassembly_retry_budget`. Property tests pin every analytic and
//! Monte Carlo report inside these intervals.
//!
//! **Lints** flag models that are structurally sound but almost
//! certainly wrong: tests that can detect nothing, regions no unit can
//! reach, sub-lines that can never ship, cost categories the flow
//! never books (an observation, not a failure).
//!
//! The cost upper bound treats every sub-line consumption as paying the
//! full retry budget; the analytic engine instead models the
//! *untruncated* retry geometric, so its expectation is inside the
//! bound whenever each sub-line's expected attempt count stays within
//! the budget (guaranteed for any remotely production-worthy yield).

use crate::compile::{Op, PatchSlot, RoutingProgram, SlotKind, NCAT, TEST_CAT};
use crate::diagnostics::{Diagnostic, Diagnostics, Severity};
use crate::CostCategory;
use ipass_sim::SimRng;
use std::collections::HashMap;

/// A closed interval of `f64` values (`lo ≤ hi`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// A closed interval of counts (`lo ≤ hi`), saturating at `u64::MAX`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountInterval {
    /// Lower bound.
    pub lo: u64,
    /// Upper bound.
    pub hi: u64,
}

impl CountInterval {
    const ZERO: CountInterval = CountInterval { lo: 0, hi: 0 };

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// Statically verified per-started-unit bounds of a compiled program,
/// valid for **every** draw outcome — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticBounds {
    /// RNG draws one unit can consume end to end (including all
    /// sub-line attempts). The lane kernel's per-unit draw budget.
    pub draws_per_unit: CountInterval,
    /// Total cost one started unit can book across all channels
    /// (embodied on ship, sunk on scrap, failed sub-line attempts),
    /// excluding NRE. Outward-widened by a relative 1e-9 so expected
    /// values computed in a different summation order stay inside.
    pub cost_per_unit: Interval,
    /// The shipped fraction's support bounds: `lo = 1` when no unit can
    /// scrap, `hi = 0` when no unit can ship.
    pub shipped_fraction: Interval,
    /// Rework-loop attempts one unit can trigger.
    pub rework_per_unit: CountInterval,
    /// Sub-line build attempts one unit can trigger (each consumption
    /// retries up to the `subassembly_retry_budget`).
    pub sub_builds_per_unit: CountInterval,
}

impl StaticBounds {
    /// Check a probed run's measured counters against these static
    /// intervals — the dynamic-vs-static cross-check behind
    /// `ipass stats` and the CI smoke gate.
    ///
    /// `stats` is the run's deterministic snapshot
    /// ([`SimSummary::stats`]); `cost_per_started` and
    /// `shipped_fraction` come off its report (total spend excluding
    /// NRE divided by started units, and shipped over started). Returns
    /// one human-readable message per violated bound — empty means every
    /// measured counter landed inside the proven intervals.
    ///
    /// [`SimSummary::stats`]: crate::SimSummary
    pub fn violations(
        &self,
        stats: &ipass_obs::RunStats,
        cost_per_started: f64,
        shipped_fraction: f64,
    ) -> Vec<String> {
        let mut out = Vec::new();
        if stats.units == 0 {
            out.push("no units recorded in the run snapshot".to_owned());
            return out;
        }
        if !self.draws_per_unit.contains(stats.draws_min) {
            out.push(format!(
                "min draws per unit {} outside [{}, {}]",
                stats.draws_min, self.draws_per_unit.lo, self.draws_per_unit.hi
            ));
        }
        if !self.draws_per_unit.contains(stats.draws_max) {
            out.push(format!(
                "max draws per unit {} outside [{}, {}]",
                stats.draws_max, self.draws_per_unit.lo, self.draws_per_unit.hi
            ));
        }
        if !self.cost_per_unit.contains(cost_per_started) {
            out.push(format!(
                "cost per started unit {cost_per_started} outside [{}, {}]",
                self.cost_per_unit.lo, self.cost_per_unit.hi
            ));
        }
        if !self.shipped_fraction.contains(shipped_fraction) {
            out.push(format!(
                "shipped fraction {shipped_fraction} outside [{}, {}]",
                self.shipped_fraction.lo, self.shipped_fraction.hi
            ));
        }
        if stats.rework_attempts > self.rework_per_unit.hi.saturating_mul(stats.units) {
            out.push(format!(
                "{} rework attempts exceed {} per unit × {} units",
                stats.rework_attempts, self.rework_per_unit.hi, stats.units
            ));
        }
        if stats.sub_units_built < self.sub_builds_per_unit.lo.saturating_mul(stats.units)
            || stats.sub_units_built > self.sub_builds_per_unit.hi.saturating_mul(stats.units)
        {
            out.push(format!(
                "{} sub-units built outside [{}, {}] per unit × {} units",
                stats.sub_units_built,
                self.sub_builds_per_unit.lo,
                self.sub_builds_per_unit.hi,
                stats.units
            ));
        }
        out
    }
}

/// What kind of program `verify_program` is looking at: a compiled
/// program bound by the Monte Carlo draw contract, or a patched op
/// vector (analytic-only, where degenerate step probabilities are legal
/// as long as they keep the `set_yield` threshold convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VerifyMode {
    Compiled,
    Patched,
}

/// Relative tolerance for the `p^q` round-trip check of a multi-part
/// yield slot: recompute `p_unit = p_good^(1/q)` and demand
/// `p_unit^q` lands back on `p_good` within `8·(q+1)` ULP — a bound
/// that holds for any faithfully-rounded `powf` (each call adds ≤ 2 ULP
/// relative error, amplified by at most `q` through the exponent).
fn pq_tolerance(q: f64) -> f64 {
    8.0 * (q + 1.0) * f64::EPSILON
}

/// Run the full pass — structural verification, interval-based lints,
/// op lints — over `ops` (the program's own vector, or a patched copy).
pub(crate) fn verify_program(
    program: &RoutingProgram,
    ops: &[Op],
    mode: VerifyMode,
    retry_budget: u32,
) -> Diagnostics {
    let mut diags = Diagnostics::new(program.line_name());
    check_ops(program, ops, mode, &mut diags);
    let regions_ok = check_regions(program, ops, &mut diags);
    check_flat_flag(program, ops, &mut diags);
    check_slots(program, ops, &mut diags);
    if regions_ok {
        lint_reachability(program, ops, retry_budget, &mut diags);
    }
    lint_categories(ops, &mut diags);
    diags
}

/// The number of structural errors only (the gate for
/// [`crate::CompiledFlow::static_bounds`], which needs sound regions
/// before the interval walk may recurse).
pub(crate) fn structural_errors(
    program: &RoutingProgram,
    ops: &[Op],
    mode: VerifyMode,
) -> Diagnostics {
    let mut diags = Diagnostics::new(program.line_name());
    check_ops(program, ops, mode, &mut diags);
    check_regions(program, ops, &mut diags);
    check_flat_flag(program, ops, &mut diags);
    check_slots(program, ops, &mut diags);
    diags
}

/// The display path for op `i`: its first registered slot name, the
/// sub-line name for consume ops, or the bare op position.
fn op_path(program: &RoutingProgram, ops: &[Op], i: usize) -> String {
    if let Some(slot) = program.slots.iter().find(|s| s.op as usize == i) {
        return slot.name.clone();
    }
    if let Some(Op::SubLine { name, .. }) = ops.get(i) {
        if let Some(line) = program.line_names().get(*name as usize) {
            return line.clone();
        }
    }
    format!("op {i}")
}

fn error(diags: &mut Diagnostics, code: &'static str, path: String, message: String) {
    diags.push(Diagnostic::new(Severity::Error, code, path, message));
}

fn warning(diags: &mut Diagnostics, code: &'static str, path: String, message: String) {
    diags.push(Diagnostic::new(Severity::Warning, code, path, message));
}

fn info(diags: &mut Diagnostics, code: &'static str, path: String, message: String) {
    diags.push(Diagnostic::new(Severity::Info, code, path, message));
}

/// Per-op field checks: finite non-negative costs, in-range
/// probabilities, bit-recomputable thresholds, in-bounds label and
/// line-name indices, non-zero consume quantities.
fn check_ops(program: &RoutingProgram, ops: &[Op], mode: VerifyMode, diags: &mut Diagnostics) {
    let n_labels = program.names().len();
    let n_lines = program.line_names().len();
    let check_cost = |diags: &mut Diagnostics, i: usize, what: &str, value: f64| {
        if !value.is_finite() {
            error(
                diags,
                "nonfinite-cost",
                op_path(program, ops, i),
                format!("{what} is {value}; every booked amount must be finite"),
            );
        } else if value < 0.0 {
            error(
                diags,
                "negative-cost",
                op_path(program, ops, i),
                format!("{what} is {value}; costs must be non-negative"),
            );
        }
    };
    let check_prob = |diags: &mut Diagnostics, i: usize, what: &str, value: f64| {
        if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
            error(
                diags,
                if what == "success" {
                    "success-out-of-range"
                } else {
                    "coverage-out-of-range"
                },
                op_path(program, ops, i),
                format!("{what} is {value}, outside [0, 1]"),
            );
        }
    };
    let check_label = |diags: &mut Diagnostics, i: usize, label: u32| {
        if label as usize >= n_labels {
            error(
                diags,
                "label-out-of-bounds",
                op_path(program, ops, i),
                format!("defect label {label} out of bounds (the program has {n_labels} labels)"),
            );
        }
    };
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Cost { cost, .. } => check_cost(diags, i, "cost", cost),
            Op::Condemn { cost, label, .. } => {
                check_cost(diags, i, "cost", cost);
                check_label(diags, i, label);
            }
            Op::Step {
                cost,
                threshold,
                p_good,
                label,
                ..
            } => {
                check_cost(diags, i, "cost", cost);
                check_label(diags, i, label);
                check_step_probability(program, ops, i, threshold, p_good, mode, diags);
            }
            Op::SubLine { qty, .. } => {
                if qty == 0 {
                    error(
                        diags,
                        "zero-quantity-subline",
                        op_path(program, ops, i),
                        "sub-line consumed with quantity zero".to_owned(),
                    );
                }
                if let Op::SubLine { name, .. } = *op {
                    if name as usize >= n_lines {
                        error(
                            diags,
                            "line-name-out-of-bounds",
                            format!("op {i}"),
                            format!(
                                "sub-line name index {name} out of bounds \
                                 (the program has {n_lines} nested lines)"
                            ),
                        );
                    }
                }
            }
            Op::TestScrap { cost, coverage } => {
                check_cost(diags, i, "cost", cost);
                check_prob(diags, i, "coverage", coverage);
                if coverage <= 0.0 {
                    warning(
                        diags,
                        "zero-coverage-test",
                        op_path(program, ops, i),
                        "test has zero fault coverage: it books cost but can detect nothing"
                            .to_owned(),
                    );
                }
            }
            Op::TestRework {
                cost,
                coverage,
                rework_cost,
                success,
                max_attempts,
            } => {
                check_cost(diags, i, "cost", cost);
                check_cost(diags, i, "rework cost", rework_cost);
                check_prob(diags, i, "coverage", coverage);
                check_prob(diags, i, "success", success);
                if coverage <= 0.0 {
                    warning(
                        diags,
                        "zero-coverage-test",
                        op_path(program, ops, i),
                        "test has zero fault coverage: it books cost but can detect nothing"
                            .to_owned(),
                    );
                }
                if max_attempts == 0 {
                    warning(
                        diags,
                        "zero-attempt-rework",
                        op_path(program, ops, i),
                        "rework loop allows zero attempts: caught units scrap immediately"
                            .to_owned(),
                    );
                }
            }
        }
    }
}

/// A [`Op::Step`]'s probability/threshold pair. Compiled programs carry
/// `p_good` strictly inside `(0, 1)` (degenerate yields specialize into
/// draw-free ops) with the threshold bit-recomputable; patched op
/// vectors may carry degenerate probabilities under the `set_yield`
/// convention (`u64::MAX` / `0`), which the analytic walker handles and
/// the Monte Carlo kernel never sees.
fn check_step_probability(
    program: &RoutingProgram,
    ops: &[Op],
    i: usize,
    threshold: u64,
    p_good: f64,
    mode: VerifyMode,
    diags: &mut Diagnostics,
) {
    if !p_good.is_finite() {
        error(
            diags,
            "degenerate-step",
            op_path(program, ops, i),
            format!("step probability is {p_good}"),
        );
        return;
    }
    if p_good > 0.0 && p_good < 1.0 {
        let expect = SimRng::threshold(p_good);
        if threshold != expect {
            error(
                diags,
                "threshold-mismatch",
                op_path(program, ops, i),
                format!(
                    "stored draw threshold {threshold} but ⌈p·2⁵³⌉ = {expect} \
                     for p = {p_good}; the kernel would draw against the wrong bound"
                ),
            );
        }
        return;
    }
    match mode {
        VerifyMode::Compiled => error(
            diags,
            "degenerate-step",
            op_path(program, ops, i),
            format!(
                "step probability {p_good} survived to Op::Step; compilation must \
                 specialize degenerate yields into draw-free ops"
            ),
        ),
        VerifyMode::Patched => {
            let expect = if p_good >= 1.0 { u64::MAX } else { 0 };
            if threshold != expect {
                error(
                    diags,
                    "threshold-mismatch",
                    op_path(program, ops, i),
                    format!(
                        "patched degenerate probability {p_good} must carry \
                         threshold {expect}, found {threshold}"
                    ),
                );
            }
            info(
                diags,
                "degenerate-patched-step",
                op_path(program, ops, i),
                format!(
                    "step patched to degenerate probability {p_good}; \
                     valid analytically, never hand this to the Monte Carlo kernel"
                ),
            );
        }
    }
}

/// Region layout: every region in bounds, the top region last, sub-line
/// regions strictly before the op that consumes them (which also rules
/// out recursion), all regions pairwise disjoint, and together
/// partitioning the op vector (gaps are unreachable ops).
///
/// Returns whether the layout is sound enough for the interval walk to
/// recurse through.
fn check_regions(program: &RoutingProgram, ops: &[Op], diags: &mut Diagnostics) -> bool {
    let n = ops.len() as u64;
    let mut sound = true;
    let (top_entry, top_len) = program.top_region();
    let mut regions: Vec<(u64, u64, String)> = Vec::new();
    if top_entry as u64 + top_len as u64 > n {
        error(
            diags,
            "region-out-of-bounds",
            "program".to_owned(),
            format!("top region {top_entry}+{top_len} exceeds the op vector ({n} ops)"),
        );
        sound = false;
    } else {
        if top_entry as u64 + top_len as u64 != n {
            error(
                diags,
                "top-region-not-last",
                "program".to_owned(),
                format!(
                    "top region {top_entry}+{top_len} must end the op vector ({n} ops); \
                     post-order compilation places every sub region first"
                ),
            );
            sound = false;
        }
        regions.push((top_entry as u64, top_len as u64, "top line".to_owned()));
    }
    for (i, op) in ops.iter().enumerate() {
        let Op::SubLine { entry, len, .. } = *op else {
            continue;
        };
        let path = op_path(program, ops, i);
        if entry as u64 + len as u64 > n {
            error(
                diags,
                "region-out-of-bounds",
                path,
                format!("sub region {entry}+{len} exceeds the op vector ({n} ops)"),
            );
            sound = false;
            continue;
        }
        if entry as u64 + len as u64 > i as u64 {
            error(
                diags,
                "region-forward-reference",
                path.clone(),
                format!(
                    "sub region {entry}+{len} does not strictly precede the op \
                     consuming it (op {i}); forward references allow recursion"
                ),
            );
            sound = false;
            continue;
        }
        regions.push((entry as u64, len as u64, path));
    }
    // Pairwise disjoint + partition: sort non-empty regions by entry,
    // then demand they tile [0, n) exactly.
    let mut occupied: Vec<&(u64, u64, String)> = regions.iter().filter(|r| r.1 > 0).collect();
    occupied.sort_by_key(|r| r.0);
    let mut cursor = 0u64;
    for (entry, len, path) in occupied {
        if *entry < cursor {
            error(
                diags,
                "region-overlap",
                path.clone(),
                format!(
                    "region {entry}+{len} overlaps the previous region ending at {cursor}; \
                     regions must be disjoint"
                ),
            );
            sound = false;
            break;
        }
        if *entry > cursor {
            warning(
                diags,
                "unreachable-ops",
                "program".to_owned(),
                format!("ops {cursor}..{entry} belong to no region; no unit can execute them"),
            );
        }
        cursor = entry + len;
    }
    if sound && cursor < n {
        warning(
            diags,
            "unreachable-ops",
            "program".to_owned(),
            format!("ops {cursor}..{n} belong to no region; no unit can execute them"),
        );
    }
    sound
}

/// `flat` must equal "no [`Op::SubLine`] anywhere" — the lane kernel
/// and the recursion-free scalar fast path dispatch on it.
fn check_flat_flag(program: &RoutingProgram, ops: &[Op], diags: &mut Diagnostics) {
    let actually_flat = !ops.iter().any(|op| matches!(op, Op::SubLine { .. }));
    if program.flat != actually_flat {
        error(
            diags,
            "flat-flag-mismatch",
            "program".to_owned(),
            format!(
                "flat flag is {} but the op vector {} sub-line ops; \
                 the kernel would dispatch to the wrong instantiation",
                program.flat,
                if actually_flat {
                    "contains no"
                } else {
                    "contains"
                },
            ),
        );
    }
}

/// Slot table: every entry in bounds, pointing at an op that actually
/// carries a parameter of the slot's kind, with a non-zero folded
/// quantity; multi-part yield slots must carry a `p_good` that is a
/// plausible `p_unit^q` (normal, and round-trippable through the q-th
/// root within the stated ULP bound).
fn check_slots(program: &RoutingProgram, ops: &[Op], diags: &mut Diagnostics) {
    for slot in &program.slots {
        let PatchSlot {
            name,
            kind,
            op,
            qty,
        } = slot;
        let label = format!("{name} ({kind})");
        let Some(target) = ops.get(*op as usize) else {
            error(
                diags,
                "slot-op-out-of-bounds",
                label,
                format!(
                    "slot points at op {op} but the program has {} ops",
                    ops.len()
                ),
            );
            continue;
        };
        if *qty == 0 {
            error(
                diags,
                "zero-quantity-slot",
                label.clone(),
                "slot carries folded quantity zero".to_owned(),
            );
        }
        let matches_kind = match kind {
            SlotKind::Cost => !matches!(target, Op::SubLine { .. }),
            SlotKind::Yield => matches!(target, Op::Step { .. }),
            SlotKind::Coverage => {
                matches!(target, Op::TestScrap { .. } | Op::TestRework { .. })
            }
        };
        if !matches_kind {
            error(
                diags,
                "slot-kind-mismatch",
                label,
                format!("{kind} slot points at an op with no such parameter: {target:?}"),
            );
            continue;
        }
        if *kind == SlotKind::Yield && *qty > 1 {
            let Op::Step { p_good, .. } = *target else {
                unreachable!("kind agreement checked above");
            };
            if !(p_good > 0.0 && p_good < 1.0) {
                continue; // reported by the step checks
            }
            let q = *qty as f64;
            if p_good < f64::MIN_POSITIVE {
                warning(
                    diags,
                    "probability-underflow",
                    format!("{name} ({kind})"),
                    format!(
                        "folded p^q = {p_good} is subnormal; the per-unit probability \
                         is no longer recoverable at full precision"
                    ),
                );
            } else {
                let root = p_good.powf(1.0 / q);
                let round_trip = root.powf(q);
                if (round_trip - p_good).abs() > pq_tolerance(q) * p_good {
                    error(
                        diags,
                        "stale-pq",
                        format!("{name} ({kind})"),
                        format!(
                            "folded p^q = {p_good} is not the q-th power of any per-unit \
                             probability within {} ULP (q = {qty}); the fold is stale",
                            8 * (qty + 1),
                        ),
                    );
                }
            }
        }
    }
}

/// Interval-walk-based lints: a flow or sub-line that can never ship.
fn lint_reachability(
    program: &RoutingProgram,
    ops: &[Op],
    retry_budget: u32,
    diags: &mut Diagnostics,
) {
    let mut memo = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        let Op::SubLine { entry, len, .. } = *op else {
            continue;
        };
        let sub = region_bounds(ops, entry, len, retry_budget.max(1), &mut memo);
        if !sub.any_ship {
            warning(
                diags,
                "subline-never-ships",
                op_path(program, ops, i),
                "no draw outcome ships a unit of this sub-line; every consumption \
                 starves its retry budget"
                    .to_owned(),
            );
        }
    }
    let (entry, len) = program.top_region();
    let top = region_bounds(ops, entry, len, retry_budget.max(1), &mut memo);
    if !top.any_ship {
        warning(
            diags,
            "flow-never-ships",
            "program".to_owned(),
            "no draw outcome ships a unit; cost per shipped unit is undefined".to_owned(),
        );
    }
}

/// Cost categories no op can ever book — an observation that often
/// reflects a missing modeling dimension, never a failure.
fn lint_categories(ops: &[Op], diags: &mut Diagnostics) {
    let mut booked = [false; NCAT];
    for op in ops {
        match *op {
            Op::Cost { cat, .. } | Op::Condemn { cat, .. } | Op::Step { cat, .. } => {
                booked[cat.index()] = true;
            }
            Op::SubLine { .. } => {}
            Op::TestScrap { .. } => booked[TEST_CAT] = true,
            Op::TestRework { .. } => {
                booked[TEST_CAT] = true;
                booked[CostCategory::Other.index()] = true;
            }
        }
    }
    for cat in CostCategory::ALL {
        if !booked[cat.index()] {
            info(
                diags,
                "cost-category-never-booked",
                "program".to_owned(),
                format!("no op books the {cat} category; its breakdown share is structurally zero"),
            );
        }
    }
}

/// The statically verified bounds of the top region (see
/// [`StaticBounds`]); call only after structural verification passed —
/// the recursive walk trusts region soundness.
pub(crate) fn static_bounds(ops: &[Op], entry: u32, len: u32, retry_budget: u32) -> StaticBounds {
    let mut memo = HashMap::new();
    let top = region_bounds(ops, entry, len, retry_budget, &mut memo);
    let widen = |v: f64, up: bool| {
        let slack = v.abs() * 1e-9 + 1e-9;
        if up {
            v + slack
        } else {
            v - slack
        }
    };
    // Support bounds, outward-widened by 1e-9 (clamped to [0, 1]) —
    // the analytic engine reaches "ships everything" through a chain of
    // mass multiplications that may drift a few ULP below exactly 1.
    let shipped_fraction = if !top.any_ship && !top.any_scrap {
        Interval::ZERO
    } else {
        Interval {
            lo: if top.any_scrap { 0.0 } else { 1.0 - 1e-9 },
            hi: if top.any_ship { 1.0 } else { 1e-9 },
        }
    };
    StaticBounds {
        draws_per_unit: top.draws,
        cost_per_unit: Interval {
            lo: widen(top.cost.lo, false).max(0.0_f64.min(top.cost.lo)),
            hi: widen(top.cost.hi, true),
        },
        shipped_fraction,
        rework_per_unit: top.rework,
        sub_builds_per_unit: top.subs,
    }
}

/// Per-region bounds over every draw outcome that *finishes* the region
/// (ships out of it or scraps inside it).
#[derive(Debug, Clone, Copy)]
struct RegionBounds {
    draws: CountInterval,
    cost: Interval,
    rework: CountInterval,
    subs: CountInterval,
    any_ship: bool,
    any_scrap: bool,
    /// A shipped unit may be non-defective.
    ship_clean: bool,
    /// A shipped unit may be defective (a test escape).
    ship_def: bool,
}

/// Running accumulators of the abstract walk: interval state for units
/// still executing, plus the two-bit defect abstraction.
#[derive(Debug, Clone, Copy)]
struct Walk {
    draws: CountInterval,
    cost: Interval,
    rework: CountInterval,
    subs: CountInterval,
    /// Some outcome reaching this point is non-defective.
    may_clean: bool,
    /// Some outcome reaching this point is defective.
    may_def: bool,
}

/// Merged bounds over finished outcomes (scrap exits + the end of the
/// region).
#[derive(Debug, Clone, Copy, Default)]
struct Outcomes {
    any: bool,
    draws: CountInterval,
    cost: Interval,
    rework: CountInterval,
    subs: CountInterval,
    any_ship: bool,
    any_scrap: bool,
    ship_clean: bool,
    ship_def: bool,
}

impl Outcomes {
    fn merge(
        &mut self,
        draws: CountInterval,
        cost: Interval,
        rework: CountInterval,
        subs: CountInterval,
    ) {
        if !self.any {
            self.any = true;
            self.draws = draws;
            self.cost = cost;
            self.rework = rework;
            self.subs = subs;
        } else {
            self.draws.lo = self.draws.lo.min(draws.lo);
            self.draws.hi = self.draws.hi.max(draws.hi);
            self.cost.lo = self.cost.lo.min(cost.lo);
            self.cost.hi = self.cost.hi.max(cost.hi);
            self.rework.lo = self.rework.lo.min(rework.lo);
            self.rework.hi = self.rework.hi.max(rework.hi);
            self.subs.lo = self.subs.lo.min(subs.lo);
            self.subs.hi = self.subs.hi.max(subs.hi);
        }
    }

    fn scrap(&mut self, w: &Walk, draws: CountInterval, cost: Interval, rework: CountInterval) {
        self.any_scrap = true;
        self.merge(draws, cost, rework, w.subs);
    }

    fn ship(&mut self, w: &Walk) {
        self.any_ship = true;
        self.ship_clean |= w.may_clean;
        self.ship_def |= w.may_def;
        self.merge(w.draws, w.cost, w.rework, w.subs);
    }
}

/// One abstract pass over `ops[entry..entry+len]`, memoized per region
/// (nested consumptions of the same sub-line share the analysis).
fn region_bounds(
    ops: &[Op],
    entry: u32,
    len: u32,
    budget: u32,
    memo: &mut HashMap<(u32, u32), RegionBounds>,
) -> RegionBounds {
    if let Some(cached) = memo.get(&(entry, len)) {
        return *cached;
    }
    let mut w = Walk {
        draws: CountInterval::ZERO,
        cost: Interval::ZERO,
        rework: CountInterval::ZERO,
        subs: CountInterval::ZERO,
        may_clean: true,
        may_def: false,
    };
    let mut out = Outcomes::default();
    let mut reachable = true;
    for op in &ops[entry as usize..(entry + len) as usize] {
        match *op {
            Op::Cost { cost, .. } => {
                w.cost.lo += cost;
                w.cost.hi += cost;
            }
            Op::Condemn { cost, .. } => {
                w.cost.lo += cost;
                w.cost.hi += cost;
                w.may_def = true;
                w.may_clean = false;
            }
            Op::Step { cost, .. } => {
                w.cost.lo += cost;
                w.cost.hi += cost;
                // Only a still-clean unit draws; after the op the unit
                // may be defective either way.
                if w.may_clean {
                    w.draws.hi = w.draws.hi.saturating_add(1);
                    if !w.may_def {
                        w.draws.lo = w.draws.lo.saturating_add(1);
                    }
                    w.may_def = true;
                }
            }
            Op::SubLine {
                qty,
                entry: se,
                len: sl,
                ..
            } => {
                let sub = region_bounds(ops, se, sl, budget, memo);
                if !sub.any_ship {
                    // No attempt can ever pass: the Monte Carlo run
                    // starves (an error, not an outcome) and the
                    // analytic mass never continues. Nothing to bound
                    // past this op.
                    reachable = false;
                    break;
                }
                let q = qty as u64;
                // Each of the q consumed units takes 1..=budget
                // attempts (1 when the sub-line cannot scrap at all).
                let attempts_hi = if sub.any_scrap { budget as u64 } else { 1 };
                let per_hi = |x: u64| q.saturating_mul(attempts_hi).saturating_mul(x);
                w.draws.lo = w.draws.lo.saturating_add(q.saturating_mul(sub.draws.lo));
                w.draws.hi = w.draws.hi.saturating_add(per_hi(sub.draws.hi));
                w.rework.lo = w.rework.lo.saturating_add(q.saturating_mul(sub.rework.lo));
                w.rework.hi = w.rework.hi.saturating_add(per_hi(sub.rework.hi));
                // Every attempt is one sub-unit build, plus whatever
                // the sub-line builds internally.
                w.subs.lo = w
                    .subs
                    .lo
                    .saturating_add(q.saturating_mul(sub.subs.lo.saturating_add(1)));
                w.subs.hi = w
                    .subs
                    .hi
                    .saturating_add(per_hi(sub.subs.hi.saturating_add(1)));
                // Failing attempts book to scrap, the passing one into
                // this unit — both count toward the started unit.
                w.cost.lo += q as f64 * sub.cost.lo;
                w.cost.hi += q as f64 * attempts_hi as f64 * sub.cost.hi;
                if sub.ship_def {
                    w.may_def = true;
                }
                if !sub.ship_clean {
                    w.may_clean = false;
                }
            }
            Op::TestScrap { cost, coverage } => {
                w.cost.lo += cost;
                w.cost.hi += cost;
                if w.may_def && coverage > 0.0 {
                    let d = (coverage < 1.0) as u64;
                    // Caught-and-scrapped exit: the coverage draw (if
                    // probabilistic) was consumed on this path.
                    out.scrap(
                        &w,
                        CountInterval {
                            lo: w.draws.lo + d,
                            hi: w.draws.hi.saturating_add(d),
                        },
                        w.cost,
                        w.rework,
                    );
                    if d == 1 {
                        w.draws.hi = w.draws.hi.saturating_add(1);
                        if !w.may_clean {
                            // Every continuing unit is a defective
                            // escape: the draw was forced.
                            w.draws.lo = w.draws.lo.saturating_add(1);
                        }
                    }
                    if coverage >= 1.0 {
                        if !w.may_clean {
                            // Perfect coverage, surely defective:
                            // nothing continues.
                            reachable = false;
                            break;
                        }
                        w.may_def = false;
                    }
                }
            }
            Op::TestRework {
                cost,
                coverage,
                rework_cost,
                success,
                max_attempts,
            } => {
                w.cost.lo += cost;
                w.cost.hi += cost;
                if w.may_def && coverage > 0.0 {
                    let ma = max_attempts as u64;
                    let cov_draw = (coverage < 1.0) as u64;
                    let s_draw = (success > 0.0 && success < 1.0) as u64;
                    // The scrap path fails recovery and is re-caught on
                    // all `ma` attempts — its draw/cost/attempt counts
                    // are forced exactly.
                    if ma == 0 || success < 1.0 {
                        let extra = cov_draw + ma.saturating_mul(s_draw + cov_draw);
                        let loop_cost = ma as f64 * (rework_cost + cost);
                        out.scrap(
                            &w,
                            CountInterval {
                                lo: w.draws.lo.saturating_add(extra),
                                hi: w.draws.hi.saturating_add(extra),
                            },
                            Interval {
                                lo: w.cost.lo + loop_cost,
                                hi: w.cost.hi + loop_cost,
                            },
                            CountInterval {
                                lo: w.rework.lo.saturating_add(ma),
                                hi: w.rework.hi.saturating_add(ma),
                            },
                        );
                    }
                    // Continuing defective: escaped at entry or on a
                    // re-test (both need imperfect coverage).
                    // Continuing clean: was clean, or recovered.
                    let continue_def = coverage < 1.0;
                    let continue_clean = w.may_clean || (ma >= 1 && success > 0.0);
                    if !continue_def && !continue_clean {
                        reachable = false;
                        break;
                    }
                    w.draws.hi = w
                        .draws
                        .hi
                        .saturating_add(cov_draw + ma.saturating_mul(s_draw + cov_draw));
                    if !w.may_clean {
                        // Surely defective: the entry coverage draw is
                        // forced when probabilistic; under perfect
                        // coverage the first attempt's success draw is.
                        w.draws.lo =
                            w.draws
                                .lo
                                .saturating_add(if cov_draw == 1 { 1 } else { s_draw });
                    }
                    w.cost.hi += ma as f64 * (rework_cost + cost);
                    w.rework.hi = w.rework.hi.saturating_add(ma);
                    if !w.may_clean && coverage >= 1.0 && ma >= 1 {
                        // Forced caught: every continuing outcome paid
                        // at least one rework attempt.
                        w.cost.lo += rework_cost + cost;
                        w.rework.lo = w.rework.lo.saturating_add(1);
                    }
                    w.may_def = continue_def;
                    w.may_clean = continue_clean;
                }
            }
        }
    }
    if reachable {
        out.ship(&w);
    }
    let bounds = if out.any {
        RegionBounds {
            draws: out.draws,
            cost: out.cost,
            rework: out.rework,
            subs: out.subs,
            any_ship: out.any_ship,
            any_scrap: out.any_scrap,
            ship_clean: out.ship_clean,
            ship_def: out.ship_def,
        }
    } else {
        RegionBounds {
            draws: CountInterval::ZERO,
            cost: Interval::ZERO,
            rework: CountInterval::ZERO,
            subs: CountInterval::ZERO,
            any_ship: false,
            any_scrap: false,
            ship_clean: false,
            ship_def: false,
        }
    };
    memo.insert((entry, len), bounds);
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StepCost;
    use crate::line::Line;
    use crate::part::Part;
    use crate::stage::{Attach, FailAction, Process, Rework, Test};
    use crate::yield_model::YieldModel;
    use crate::Flow;
    use ipass_units::{Money, Probability};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// A nested reference line exercising every op kind: carrier,
    /// process, multi-part attach, rework test, sub-line consumption,
    /// final scrap test.
    fn reference_flow() -> Flow {
        let sub = Line::builder(
            "sub",
            Part::new("blank", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(1.0))),
        )
        .process(
            Process::new("fab")
                .with_cost(StepCost::fixed(Money::new(2.0)))
                .with_yield(YieldModel::flat(p(0.7))),
        )
        .test(
            Test::new("probe")
                .with_cost(StepCost::fixed(Money::new(0.5)))
                .with_coverage(p(0.9)),
        )
        .build()
        .unwrap();
        let line = Line::builder(
            "ref",
            Part::new("pcb", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(3.0))),
        )
        .process(
            Process::new("print")
                .with_cost(StepCost::fixed(Money::new(1.0)))
                .with_yield(YieldModel::flat(p(0.95))),
        )
        .attach(
            Attach::new("place")
                .with_cost(StepCost::fixed(Money::new(0.2)))
                .with_yield(YieldModel::flat(p(0.98)))
                .input(
                    Part::new("die", CostCategory::Chip)
                        .with_cost(StepCost::fixed(Money::new(4.0)))
                        .with_incoming_yield(YieldModel::flat(p(0.9))),
                    3,
                )
                .input(sub, 2),
        )
        .test(
            Test::new("ict")
                .with_cost(StepCost::fixed(Money::new(0.3)))
                .with_coverage(p(0.8))
                .on_fail(FailAction::Rework(Rework::new(
                    StepCost::fixed(Money::new(0.6)),
                    p(0.5),
                    2,
                ))),
        )
        .test(
            Test::new("ft")
                .with_cost(StepCost::fixed(Money::new(0.4)))
                .with_coverage(p(0.99)),
        )
        .build()
        .unwrap();
        Flow::new(line)
            .with_nre(Money::new(100.0))
            .with_volume(1_000)
    }

    fn reference_program() -> RoutingProgram {
        let flow = reference_flow();
        flow.compiled().unwrap().program().clone()
    }

    fn verify(program: &RoutingProgram) -> Diagnostics {
        verify_program(
            program,
            &program.ops,
            VerifyMode::Compiled,
            crate::DEFAULT_SUBASSEMBLY_RETRY_BUDGET,
        )
    }

    #[test]
    fn reference_program_verifies_clean() {
        let diags = verify(&reference_program());
        assert_eq!(
            diags.deny_warnings_failures(),
            0,
            "unexpected findings:\n{diags}"
        );
        // Only never-booked-category infos remain.
        assert!(diags.iter().all(|d| d.code == "cost-category-never-booked"));
    }

    /// Pick a deterministic target among `candidates` for corruption
    /// class `class` — seeded, so the corpus is reproducible but not
    /// hand-aimed at one op.
    fn pick(class: u64, candidates: &[usize]) -> usize {
        assert!(!candidates.is_empty(), "class {class} found no target op");
        let mut rng = SimRng::stream(0xC0FF_EE00, class);
        candidates[(rng.next_u64() % candidates.len() as u64) as usize]
    }

    fn ops_matching(program: &RoutingProgram, pred: impl Fn(&Op) -> bool) -> Vec<usize> {
        program
            .ops
            .iter()
            .enumerate()
            .filter(|(_, op)| pred(op))
            .map(|(i, _)| i)
            .collect()
    }

    /// The seeded mutation corpus: each class corrupts one invariant
    /// and names the diagnostic code that must reject it.
    fn corrupt(class: u64, program: &mut RoutingProgram) -> &'static str {
        let steps = ops_matching(program, |op| matches!(op, Op::Step { .. }));
        let tests = ops_matching(program, |op| {
            matches!(op, Op::TestScrap { .. } | Op::TestRework { .. })
        });
        let sublines = ops_matching(program, |op| matches!(op, Op::SubLine { .. }));
        match class {
            // 1. Flipped draw threshold: off by one bit.
            0 => {
                let i = pick(class, &steps);
                let Op::Step { threshold, .. } = &mut program.ops[i] else {
                    unreachable!()
                };
                *threshold ^= 1;
                "threshold-mismatch"
            }
            // 2. Stale p^q: a subnormal folded probability whose
            // threshold still recomputes bit-equal (⌈p·2⁵³⌉ = 1).
            1 => {
                let multi: Vec<usize> = program
                    .slots
                    .iter()
                    .filter(|s| s.kind == SlotKind::Yield && s.qty > 1)
                    .map(|s| s.op as usize)
                    .collect();
                let i = pick(class, &multi);
                let Op::Step {
                    p_good, threshold, ..
                } = &mut program.ops[i]
                else {
                    unreachable!()
                };
                *p_good = 1e-320;
                *threshold = SimRng::threshold(1e-320);
                "probability-underflow"
            }
            // 3. Degenerate probability surviving to Op::Step.
            2 => {
                let i = pick(class, &steps);
                let Op::Step {
                    p_good, threshold, ..
                } = &mut program.ops[i]
                else {
                    unreachable!()
                };
                *p_good = 1.0;
                *threshold = u64::MAX;
                "degenerate-step"
            }
            // 4. Negative cost.
            3 => {
                let i = pick(class, &steps);
                let Op::Step { cost, .. } = &mut program.ops[i] else {
                    unreachable!()
                };
                *cost = -1.0;
                "negative-cost"
            }
            // 5. Non-finite cost.
            4 => {
                let i = pick(class, &tests);
                match &mut program.ops[i] {
                    Op::TestScrap { cost, .. } | Op::TestRework { cost, .. } => {
                        *cost = f64::NAN;
                    }
                    _ => unreachable!(),
                }
                "nonfinite-cost"
            }
            // 6. Sub region running past the op vector.
            5 => {
                let i = pick(class, &sublines);
                let Op::SubLine { len, .. } = &mut program.ops[i] else {
                    unreachable!()
                };
                *len += 1_000;
                "region-out-of-bounds"
            }
            // 7. Sub region overlapping the top region.
            6 => {
                let i = pick(class, &sublines);
                let top_entry = program.entry;
                let Op::SubLine { entry, len, .. } = &mut program.ops[i] else {
                    unreachable!()
                };
                *len = top_entry - *entry + 1;
                "region-overlap"
            }
            // 8. Sub region referencing forward (recursion hazard).
            7 => {
                let i = pick(class, &sublines);
                let n = program.ops.len() as u32;
                let Op::SubLine { entry, len, .. } = &mut program.ops[i] else {
                    unreachable!()
                };
                *entry = i as u32;
                *len = n - i as u32;
                "region-forward-reference"
            }
            // 9. Corrupted flat flag.
            8 => {
                program.flat = !program.flat;
                "flat-flag-mismatch"
            }
            // 10. Slot pointing past the op vector.
            9 => {
                let s = pick(class, &(0..program.slots.len()).collect::<Vec<_>>());
                program.slots[s].op = program.ops.len() as u32 + 7;
                "slot-op-out-of-bounds"
            }
            // 11. Mis-kinded slot: a yield slot re-aimed at a test op.
            10 => {
                let i = pick(class, &tests);
                let s = program
                    .slots
                    .iter()
                    .position(|s| s.kind == SlotKind::Yield)
                    .unwrap();
                program.slots[s].op = i as u32;
                "slot-kind-mismatch"
            }
            // 12. Coverage outside [0, 1].
            11 => {
                let i = pick(class, &tests);
                match &mut program.ops[i] {
                    Op::TestScrap { coverage, .. } | Op::TestRework { coverage, .. } => {
                        *coverage = 1.5;
                    }
                    _ => unreachable!(),
                }
                "coverage-out-of-range"
            }
            // 13. Rework success probability outside [0, 1].
            12 => {
                let rework = ops_matching(program, |op| matches!(op, Op::TestRework { .. }));
                let i = pick(class, &rework);
                let Op::TestRework { success, .. } = &mut program.ops[i] else {
                    unreachable!()
                };
                *success = -0.5;
                "success-out-of-range"
            }
            // 14. Zero-quantity sub-line consumption.
            13 => {
                let i = pick(class, &sublines);
                let Op::SubLine { qty, .. } = &mut program.ops[i] else {
                    unreachable!()
                };
                *qty = 0;
                "zero-quantity-subline"
            }
            // 15. Defect label out of bounds.
            14 => {
                let i = pick(class, &steps);
                let n = program.names().len() as u32;
                let Op::Step { label, .. } = &mut program.ops[i] else {
                    unreachable!()
                };
                *label = n + 3;
                "label-out-of-bounds"
            }
            // 16. Sub-line name index out of bounds.
            15 => {
                let i = pick(class, &sublines);
                let n = program.line_names().len() as u32;
                let Op::SubLine { name, .. } = &mut program.ops[i] else {
                    unreachable!()
                };
                *name = n + 1;
                "line-name-out-of-bounds"
            }
            _ => unreachable!("unknown corruption class {class}"),
        }
    }

    const CORPUS_CLASSES: u64 = 16;

    #[test]
    fn mutation_corpus_is_rejected_class_by_class() {
        for class in 0..CORPUS_CLASSES {
            let mut program = reference_program();
            let expected = corrupt(class, &mut program);
            let diags = verify(&program);
            assert!(
                diags.deny_warnings_failures() > 0,
                "class {class} ({expected}) was not rejected"
            );
            assert!(
                diags.iter().any(|d| d.code == expected),
                "class {class} expected code {expected}, got:\n{diags}"
            );
        }
    }

    #[test]
    fn corpus_has_at_least_twelve_distinct_classes() {
        let mut codes = Vec::new();
        for class in 0..CORPUS_CLASSES {
            let mut program = reference_program();
            codes.push(corrupt(class, &mut program));
        }
        codes.sort_unstable();
        codes.dedup();
        assert!(codes.len() >= 12, "only {} distinct codes", codes.len());
    }

    #[test]
    fn zero_coverage_and_zero_attempt_rework_lint_as_warnings() {
        let line = Line::builder(
            "w",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(1.0))),
        )
        .process(Process::new("p").with_yield(YieldModel::flat(p(0.9))))
        .test(
            Test::new("blind")
                .with_cost(StepCost::fixed(Money::new(0.1)))
                .with_coverage(Probability::clamped(0.0)),
        )
        .test(
            Test::new("futile")
                .with_coverage(p(0.5))
                .on_fail(FailAction::Rework(Rework::new(
                    StepCost::fixed(Money::new(0.2)),
                    p(0.5),
                    0,
                ))),
        )
        .build()
        .unwrap();
        let diags = Flow::new(line).compiled().unwrap().verify();
        assert!(!diags.has_errors(), "{diags}");
        assert!(diags.iter().any(|d| d.code == "zero-coverage-test"));
        assert!(diags.iter().any(|d| d.code == "zero-attempt-rework"));
    }

    #[test]
    fn never_shipping_flow_lints() {
        // A condemned carrier and a perfect scrap test: nothing ships.
        let line = Line::builder(
            "doomed",
            Part::new("c", CostCategory::Substrate)
                .with_incoming_yield(YieldModel::flat(Probability::clamped(0.0))),
        )
        .test(Test::new("perfect").with_coverage(Probability::clamped(1.0)))
        .build()
        .unwrap();
        let diags = Flow::new(line).compiled().unwrap().verify();
        assert!(
            diags.iter().any(|d| d.code == "flow-never-ships"),
            "{diags}"
        );
    }

    #[test]
    fn bounds_of_a_draw_free_line_are_exact() {
        // Certain yields everywhere: no draws, fixed cost, ships always.
        let line = Line::builder(
            "fixed",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(2.0))),
        )
        .process(Process::new("p").with_cost(StepCost::fixed(Money::new(3.0))))
        .build()
        .unwrap();
        let bounds = Flow::new(line)
            .compiled()
            .unwrap()
            .static_bounds(crate::DEFAULT_SUBASSEMBLY_RETRY_BUDGET)
            .unwrap();
        assert_eq!(bounds.draws_per_unit, CountInterval { lo: 0, hi: 0 });
        assert!(bounds.shipped_fraction.contains(1.0));
        assert!(bounds.shipped_fraction.lo > 0.999);
        assert!(bounds.cost_per_unit.contains(5.0));
        assert!(bounds.cost_per_unit.lo > 4.9 && bounds.cost_per_unit.hi < 5.1);
        assert_eq!(bounds.rework_per_unit.hi, 0);
        assert_eq!(bounds.sub_builds_per_unit.hi, 0);
    }

    #[test]
    fn reference_bounds_contain_both_engines() {
        let flow = reference_flow();
        let compiled = flow.compiled().unwrap();
        let bounds = compiled
            .static_bounds(crate::DEFAULT_SUBASSEMBLY_RETRY_BUDGET)
            .unwrap();
        let analytic = compiled.analyze().unwrap();
        assert!(bounds
            .cost_per_unit
            .contains(analytic.total_spend().units() / analytic.started()));
        assert!(bounds
            .shipped_fraction
            .contains(analytic.shipped_fraction()));
        let units = 4_000u64;
        let summary = compiled
            .simulate_summary(
                &crate::SimOptions::new(units)
                    .with_seed(7)
                    .with_probe(ipass_obs::Probe::ON),
            )
            .unwrap();
        let mc = &summary.report;
        assert!(bounds
            .cost_per_unit
            .contains(mc.total_spend().units() / mc.started()));
        assert!(bounds.shipped_fraction.contains(mc.shipped_fraction()));
        assert!(summary.rework_attempts <= bounds.rework_per_unit.hi.saturating_mul(units));
        assert!(summary.sub_units_built >= bounds.sub_builds_per_unit.lo * units);
        assert!(summary.sub_units_built <= bounds.sub_builds_per_unit.hi.saturating_mul(units));
        // The probed snapshot's exact per-unit draw range must land
        // inside the proven interval — for every unit, via min/max.
        let stats = summary.stats.expect("probed run carries stats");
        assert_eq!(stats.units, units);
        assert!(
            bounds.draws_per_unit.contains(stats.draws_min)
                && bounds.draws_per_unit.contains(stats.draws_max),
            "draw range [{}, {}] escapes bounds {:?}",
            stats.draws_min,
            stats.draws_max,
            bounds.draws_per_unit
        );
        // And the one-call form agrees.
        let spend = mc.total_spend().units() / mc.started();
        assert_eq!(
            bounds.violations(&stats, spend, mc.shipped_fraction()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn static_bounds_rejects_corrupted_programs() {
        let flow = reference_flow();
        let compiled = flow.compiled().unwrap();
        let mut program = compiled.program().clone();
        corrupt(0, &mut program);
        let diags = structural_errors(&program, &program.ops, VerifyMode::Compiled);
        assert!(diags.has_errors());
    }
}
