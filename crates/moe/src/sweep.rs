//! Parameter sweeps and crossover search over flow families.
//!
//! Two evaluation strategies are provided:
//!
//! * [`sweep`] rebuilds the [`Flow`](crate::Flow) per point — fully
//!   general (any structural change per point), but every point pays
//!   line construction, validation and compilation.
//! * [`sweep_patched`] compiles the flow **once** and overwrites named
//!   parameter slots per point (see [`crate::patch`]) — the fast path
//!   for the common numeric sweeps (a cost, a yield, a coverage), and
//!   the `sweep_analytic` benchmark's reason to exist.

use crate::error::FlowError;
use crate::flow::Flow;
use crate::patch::FlowPatch;
use crate::report::CostReport;
use ipass_sim::Executor;
use std::fmt;

/// One point of a parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value.
    pub x: f64,
    /// The analytic cost report at this value.
    pub report: CostReport,
}

impl SweepPoint {
    /// Convenience accessor: final cost per shipped unit at this point.
    pub fn final_cost(&self) -> f64 {
        self.report.final_cost_per_shipped().units()
    }
}

/// A sweep as a typed [`Series`] artifact: the swept parameter on x,
/// final cost per shipped unit and shipped fraction as lines.
///
/// [`Series`]: ipass_report::Series
pub fn sweep_series(
    title: impl Into<String>,
    x_name: impl Into<String>,
    points: &[SweepPoint],
) -> ipass_report::Series {
    ipass_report::Series::new(
        title,
        x_name,
        ipass_report::SeriesX::Values(points.iter().map(|p| p.x).collect()),
    )
    .with_precision(4)
    .line(
        "final cost per shipped",
        points.iter().map(SweepPoint::final_cost).collect(),
    )
    .line(
        "shipped fraction",
        points.iter().map(|p| p.report.shipped_fraction()).collect(),
    )
}

/// Evaluate a family of flows over parameter values `xs` with the
/// analytic engine.
///
/// The builder receives each `x` and returns the flow to evaluate —
/// typically a production model whose component count, area or yield
/// depends on `x` (e.g. the "more than 10 resistors" rule-of-thumb sweep).
///
/// # Errors
///
/// Fails on the first flow that is invalid or ships nothing.
///
/// # Examples
///
/// ```
/// use ipass_moe::{sweep, CostCategory, Flow, Line, Part, Process, StepCost, YieldModel};
/// use ipass_units::Money;
///
/// let points = sweep([1.0, 2.0, 4.0], |x| {
///     let line = Line::builder("family", Part::new("c", CostCategory::Substrate)
///             .with_cost(StepCost::fixed(Money::new(x))))
///         .process(Process::new("p"))
///         .build()?;
///     Ok(Flow::new(line))
/// })?;
/// assert_eq!(points.len(), 3);
/// assert!(points[2].final_cost() > points[0].final_cost());
/// # Ok::<(), ipass_moe::FlowError>(())
/// ```
pub fn sweep<I, F>(xs: I, build: F) -> Result<Vec<SweepPoint>, FlowError>
where
    I: IntoIterator<Item = f64>,
    F: Fn(f64) -> Result<Flow, FlowError> + Sync,
{
    sweep_with(&Executor::available(), xs, build)
}

/// [`sweep`] on an explicit executor. Points are evaluated in parallel;
/// the result (including which error is reported) is identical to the
/// serial evaluation.
///
/// # Errors
///
/// Fails on the first flow (in `xs` order) that is invalid or ships
/// nothing.
pub fn sweep_with<I, F>(executor: &Executor, xs: I, build: F) -> Result<Vec<SweepPoint>, FlowError>
where
    I: IntoIterator<Item = f64>,
    F: Fn(f64) -> Result<Flow, FlowError> + Sync,
{
    let xs: Vec<f64> = xs.into_iter().collect();
    executor.try_map(&xs, |_, &x| {
        let flow = build(x)?;
        let report = flow.analyze()?;
        Ok(SweepPoint { x, report })
    })
}

/// Evaluate a parameter sweep by patching `flow`'s cached compiled
/// program per point instead of rebuilding a flow per point.
///
/// The patcher receives each `x` and a fresh [`FlowPatch`] of the
/// compiled base program; apply the point's parameter values
/// ([`FlowPatch::set_cost`], [`FlowPatch::set_yield`], …) and the point
/// is evaluated analytically.
///
/// # Errors
///
/// Fails on the first point (in `xs` order) whose patch names an
/// unknown slot or whose patched flow ships nothing, and up front when
/// the flow itself is invalid.
///
/// # Examples
///
/// ```
/// use ipass_moe::{sweep_patched, CostCategory, Flow, Line, Part, Process, StepCost};
/// use ipass_units::Money;
///
/// let line = Line::builder("family", Part::new("c", CostCategory::Substrate)
///         .with_cost(StepCost::fixed(Money::new(1.0))))
///     .process(Process::new("p"))
///     .build()?;
/// let flow = Flow::new(line);
/// let points = sweep_patched(&flow, [1.0, 2.0, 4.0], |x, patch| {
///     patch.set_cost("c", Money::new(x))?;
///     Ok(())
/// })?;
/// assert_eq!(points.len(), 3);
/// assert!(points[2].final_cost() > points[0].final_cost());
/// # Ok::<(), ipass_moe::FlowError>(())
/// ```
pub fn sweep_patched<I, F>(flow: &Flow, xs: I, patch: F) -> Result<Vec<SweepPoint>, FlowError>
where
    I: IntoIterator<Item = f64>,
    F: Fn(f64, &mut FlowPatch) -> Result<(), FlowError> + Sync,
{
    sweep_patched_with(&Executor::available(), flow, xs, patch)
}

/// [`sweep_patched`] on an explicit executor. Points are evaluated in
/// parallel (each point patches its own copy of the op vector); the
/// result, including which error is reported, is identical to the
/// serial evaluation.
///
/// # Errors
///
/// See [`sweep_patched`].
pub fn sweep_patched_with<I, F>(
    executor: &Executor,
    flow: &Flow,
    xs: I,
    patch: F,
) -> Result<Vec<SweepPoint>, FlowError>
where
    I: IntoIterator<Item = f64>,
    F: Fn(f64, &mut FlowPatch) -> Result<(), FlowError> + Sync,
{
    let compiled = flow.compiled()?;
    let xs: Vec<f64> = xs.into_iter().collect();
    let reports = crate::patch::analyze_patched_batch(executor, &xs, |_, &x| {
        let mut point = compiled.patch();
        patch(x, &mut point)?;
        Ok(std::borrow::Cow::Owned(point))
    })?;
    Ok(xs
        .into_iter()
        .zip(reports)
        .map(|(x, report)| SweepPoint { x, report })
        .collect())
}

/// A cost-curve pair [`find_crossover`] cannot compare.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CrossoverError {
    /// A sample's `x` is NaN — the grid has no defined order, so any
    /// answer (including "no crossover") would be fabricated.
    NanX {
        /// Which series holds the sample (`"a"` or `"b"`).
        series: &'static str,
        /// Index of the offending sample.
        index: usize,
    },
    /// A sample's `y` is NaN — every sign test involving it is silently
    /// false, which would turn a data error into "no crossover".
    NanY {
        /// Which series holds the sample (`"a"` or `"b"`).
        series: &'static str,
        /// Index of the offending sample.
        index: usize,
    },
}

impl fmt::Display for CrossoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossoverError::NanX { series, index } => {
                write!(f, "series {series} has a NaN x value at index {index}")
            }
            CrossoverError::NanY { series, index } => {
                write!(f, "series {series} has a NaN y value at index {index}")
            }
        }
    }
}

impl std::error::Error for CrossoverError {}

/// Find where two cost curves cross, by linear interpolation between
/// sample points.
///
/// Both series must be sampled on the same ascending `x` grid.
///
/// The contract, pinned by the unit tests:
///
/// * Scanning runs in sample order, so with an ascending grid the
///   **first** crossing (the one at the lowest `x`) is returned; later
///   crossings of a wiggly difference curve are not reported. (The
///   grids are not re-sorted: on an unsorted grid "first" means first
///   in sample order.)
/// * A grid point where the curves touch exactly (`a == b`) is itself
///   the crossing — its `x` is returned un-interpolated, including at
///   the final sample.
/// * Fewer than two samples, series of different lengths, or grids
///   whose `x` values disagree (beyond 1e-9) return `Ok(None)`: there
///   is no comparable pair of curves to cross.
/// * NaN `x` or `y` values are a [`CrossoverError`], not a silent
///   `None` — NaN comparisons are always false, which would otherwise
///   disguise corrupt data as "one curve dominates everywhere".
///
/// # Errors
///
/// Returns [`CrossoverError`] when either series contains a NaN
/// coordinate.
///
/// # Examples
///
/// ```
/// use ipass_moe::find_crossover;
///
/// // a: flat 10; b: 4 + 2x — b overtakes a at x = 3.
/// let a: Vec<(f64, f64)> = (0..=5).map(|i| (i as f64, 10.0)).collect();
/// let b: Vec<(f64, f64)> = (0..=5).map(|i| (i as f64, 4.0 + 2.0 * i as f64)).collect();
/// let x = find_crossover(&a, &b)?.unwrap();
/// assert!((x - 3.0).abs() < 1e-9);
/// # Ok::<(), ipass_moe::CrossoverError>(())
/// ```
pub fn find_crossover(a: &[(f64, f64)], b: &[(f64, f64)]) -> Result<Option<f64>, CrossoverError> {
    for (series, samples) in [("a", a), ("b", b)] {
        for (index, &(x, y)) in samples.iter().enumerate() {
            if x.is_nan() {
                return Err(CrossoverError::NanX { series, index });
            }
            if y.is_nan() {
                return Err(CrossoverError::NanY { series, index });
            }
        }
    }
    if a.len() != b.len() || a.len() < 2 {
        return Ok(None);
    }
    if a.iter()
        .zip(b)
        .any(|(&(xa, _), &(xb, _))| (xa - xb).abs() > 1e-9)
    {
        return Ok(None);
    }
    let d = |i: usize| a[i].1 - b[i].1;
    for i in 0..a.len() - 1 {
        let (x0, x1) = (a[i].0, a[i + 1].0);
        let (d0, d1) = (d(i), d(i + 1));
        if d0 == 0.0 {
            return Ok(Some(x0));
        }
        if d0 * d1 < 0.0 {
            // Linear interpolation to the root of d(x).
            return Ok(Some(x0 + (x1 - x0) * d0 / (d0 - d1)));
        }
    }
    if d(a.len() - 1) == 0.0 {
        return Ok(Some(a[a.len() - 1].0));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostCategory, StepCost};
    use crate::line::Line;
    use crate::part::Part;
    use crate::stage::Process;
    use ipass_units::Money;

    fn linear_flow(cost: f64) -> Result<Flow, FlowError> {
        let line = Line::builder(
            "family",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(cost))),
        )
        .process(Process::new("p"))
        .build()?;
        Ok(Flow::new(line))
    }

    #[test]
    fn sweep_produces_monotone_costs() {
        let points = sweep((0..5).map(|i| i as f64), linear_flow).unwrap();
        assert_eq!(points.len(), 5);
        for w in points.windows(2) {
            assert!(w[1].final_cost() >= w[0].final_cost());
        }
    }

    #[test]
    fn patched_sweep_matches_rebuild_sweep() {
        // The fast path and the rebuild path are the same curve. The
        // base point must carry a non-zero cost: a free, certain
        // carrier would compile away and leave nothing to patch.
        let base = linear_flow(1.0).unwrap();
        let xs: Vec<f64> = (1..9).map(|i| i as f64).collect();
        let rebuilt = sweep(xs.clone(), linear_flow).unwrap();
        let patched = sweep_patched(&base, xs, |x, patch| {
            patch.set_cost("c", Money::new(x))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(rebuilt.len(), patched.len());
        for (a, b) in rebuilt.iter().zip(patched.iter()) {
            assert_eq!(a.x, b.x);
            assert_eq!(a.final_cost(), b.final_cost());
        }
    }

    #[test]
    fn patched_sweep_propagates_slot_errors() {
        let base = linear_flow(1.0).unwrap();
        let err = sweep_patched(&base, [1.0], |x, patch| {
            patch.set_cost("ghost", Money::new(x))?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, FlowError::UnknownPatchSlot { .. }));
    }

    #[test]
    fn sweep_propagates_errors() {
        let err = sweep([1.0], |_| {
            Line::builder("bad", Part::new("c", CostCategory::Substrate))
                .build()
                .map(Flow::new)
        })
        .unwrap_err();
        assert!(matches!(err, FlowError::EmptyLine { .. }));
    }

    #[test]
    fn crossover_exact_grid_point() {
        let a = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let b = [(0.0, 7.0), (1.0, 5.0), (2.0, 3.0)];
        // d = a−b: 0 at x=1 reached from d0=−2 ... first window has d0=-2,d1=0:
        // no sign change strictly; second window d0=0 → returns 1.0.
        assert_eq!(find_crossover(&a, &b), Ok(Some(1.0)));
    }

    #[test]
    fn crossover_touch_at_final_sample_counts() {
        let a = [(0.0, 5.0), (1.0, 4.0), (2.0, 3.0)];
        let b = [(0.0, 7.0), (1.0, 5.0), (2.0, 3.0)];
        assert_eq!(find_crossover(&a, &b), Ok(Some(2.0)));
    }

    #[test]
    fn crossover_none_when_dominated() {
        let a = [(0.0, 1.0), (1.0, 1.0)];
        let b = [(0.0, 2.0), (1.0, 3.0)];
        assert_eq!(find_crossover(&a, &b), Ok(None));
    }

    #[test]
    fn crossover_rejects_mismatched_grids() {
        let a = [(0.0, 1.0), (1.0, 1.0)];
        let b = [(0.0, 2.0), (1.5, 0.0)];
        assert_eq!(find_crossover(&a, &b), Ok(None));
        // Degenerate series: a single shared point, or nothing at all,
        // cannot bracket a crossing.
        assert_eq!(find_crossover(&a[..1], &b[..1]), Ok(None));
        assert_eq!(find_crossover(&a[..0], &b[..0]), Ok(None));
        // Different lengths disagree as grids even when one is a prefix.
        assert_eq!(find_crossover(&a, &b[..1]), Ok(None));
    }

    #[test]
    fn crossover_interpolates() {
        let a = [(0.0, 0.0), (10.0, 10.0)];
        let b = [(0.0, 5.0), (10.0, 5.0)];
        let x = find_crossover(&a, &b).unwrap().unwrap();
        assert!((x - 5.0).abs() < 1e-9);
    }

    #[test]
    fn crossover_returns_the_first_of_multiple_crossings() {
        // d = a−b changes sign at x = 1.5 and again at x = 3.5; the
        // first (lowest-x) crossing wins.
        let a = [(0.0, 0.0), (1.0, 0.0), (2.0, 2.0), (3.0, 2.0), (4.0, 0.0)];
        let b = [(0.0, 1.0), (1.0, 1.0), (2.0, 1.0), (3.0, 1.0), (4.0, 1.0)];
        let x = find_crossover(&a, &b).unwrap().unwrap();
        assert!((x - 1.5).abs() < 1e-9);
    }

    #[test]
    fn crossover_on_unsorted_grids_scans_in_sample_order() {
        // The grids are taken as given, not re-sorted: "first crossing"
        // means first in sample order, here the 5→3 vs 4→4 window.
        let a = [(2.0, 5.0), (0.0, 3.0), (1.0, 9.0)];
        let b = [(2.0, 4.0), (0.0, 4.0), (1.0, 4.0)];
        let x = find_crossover(&a, &b).unwrap().unwrap();
        assert!((x - 1.0).abs() < 1e-9, "x = {x}");
    }

    #[test]
    fn crossover_rejects_nan_coordinates_with_typed_errors() {
        let clean = [(0.0, 1.0), (1.0, 2.0)];
        let nan_x = [(0.0, 1.0), (f64::NAN, 2.0)];
        let nan_y = [(0.0, f64::NAN), (1.0, 2.0)];
        assert_eq!(
            find_crossover(&nan_x, &clean),
            Err(CrossoverError::NanX {
                series: "a",
                index: 1
            })
        );
        assert_eq!(
            find_crossover(&clean, &nan_y),
            Err(CrossoverError::NanY {
                series: "b",
                index: 0
            })
        );
        let message = find_crossover(&nan_x, &clean).unwrap_err().to_string();
        assert!(message.contains("NaN x") && message.contains("index 1"));
    }
}
