//! Parameter sweeps and crossover search over flow families.
//!
//! Two evaluation strategies are provided:
//!
//! * [`sweep`] rebuilds the [`Flow`](crate::Flow) per point — fully
//!   general (any structural change per point), but every point pays
//!   line construction, validation and compilation.
//! * [`sweep_patched`] compiles the flow **once** and overwrites named
//!   parameter slots per point (see [`crate::patch`]) — the fast path
//!   for the common numeric sweeps (a cost, a yield, a coverage), and
//!   the `sweep_analytic` benchmark's reason to exist.

use crate::error::FlowError;
use crate::flow::Flow;
use crate::patch::FlowPatch;
use crate::report::CostReport;
use ipass_sim::Executor;

/// One point of a parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value.
    pub x: f64,
    /// The analytic cost report at this value.
    pub report: CostReport,
}

impl SweepPoint {
    /// Convenience accessor: final cost per shipped unit at this point.
    pub fn final_cost(&self) -> f64 {
        self.report.final_cost_per_shipped().units()
    }
}

/// Evaluate a family of flows over parameter values `xs` with the
/// analytic engine.
///
/// The builder receives each `x` and returns the flow to evaluate —
/// typically a production model whose component count, area or yield
/// depends on `x` (e.g. the "more than 10 resistors" rule-of-thumb sweep).
///
/// # Errors
///
/// Fails on the first flow that is invalid or ships nothing.
///
/// # Examples
///
/// ```
/// use ipass_moe::{sweep, CostCategory, Flow, Line, Part, Process, StepCost, YieldModel};
/// use ipass_units::Money;
///
/// let points = sweep([1.0, 2.0, 4.0], |x| {
///     let line = Line::builder("family", Part::new("c", CostCategory::Substrate)
///             .with_cost(StepCost::fixed(Money::new(x))))
///         .process(Process::new("p"))
///         .build()?;
///     Ok(Flow::new(line))
/// })?;
/// assert_eq!(points.len(), 3);
/// assert!(points[2].final_cost() > points[0].final_cost());
/// # Ok::<(), ipass_moe::FlowError>(())
/// ```
pub fn sweep<I, F>(xs: I, build: F) -> Result<Vec<SweepPoint>, FlowError>
where
    I: IntoIterator<Item = f64>,
    F: Fn(f64) -> Result<Flow, FlowError> + Sync,
{
    sweep_with(&Executor::available(), xs, build)
}

/// [`sweep`] on an explicit executor. Points are evaluated in parallel;
/// the result (including which error is reported) is identical to the
/// serial evaluation.
///
/// # Errors
///
/// Fails on the first flow (in `xs` order) that is invalid or ships
/// nothing.
pub fn sweep_with<I, F>(executor: &Executor, xs: I, build: F) -> Result<Vec<SweepPoint>, FlowError>
where
    I: IntoIterator<Item = f64>,
    F: Fn(f64) -> Result<Flow, FlowError> + Sync,
{
    let xs: Vec<f64> = xs.into_iter().collect();
    executor.try_map(&xs, |_, &x| {
        let flow = build(x)?;
        let report = flow.analyze()?;
        Ok(SweepPoint { x, report })
    })
}

/// Evaluate a parameter sweep by patching `flow`'s cached compiled
/// program per point instead of rebuilding a flow per point.
///
/// The patcher receives each `x` and a fresh [`FlowPatch`] of the
/// compiled base program; apply the point's parameter values
/// ([`FlowPatch::set_cost`], [`FlowPatch::set_yield`], …) and the point
/// is evaluated analytically.
///
/// # Errors
///
/// Fails on the first point (in `xs` order) whose patch names an
/// unknown slot or whose patched flow ships nothing, and up front when
/// the flow itself is invalid.
///
/// # Examples
///
/// ```
/// use ipass_moe::{sweep_patched, CostCategory, Flow, Line, Part, Process, StepCost};
/// use ipass_units::Money;
///
/// let line = Line::builder("family", Part::new("c", CostCategory::Substrate)
///         .with_cost(StepCost::fixed(Money::new(1.0))))
///     .process(Process::new("p"))
///     .build()?;
/// let flow = Flow::new(line);
/// let points = sweep_patched(&flow, [1.0, 2.0, 4.0], |x, patch| {
///     patch.set_cost("c", Money::new(x))?;
///     Ok(())
/// })?;
/// assert_eq!(points.len(), 3);
/// assert!(points[2].final_cost() > points[0].final_cost());
/// # Ok::<(), ipass_moe::FlowError>(())
/// ```
pub fn sweep_patched<I, F>(flow: &Flow, xs: I, patch: F) -> Result<Vec<SweepPoint>, FlowError>
where
    I: IntoIterator<Item = f64>,
    F: Fn(f64, &mut FlowPatch) -> Result<(), FlowError> + Sync,
{
    sweep_patched_with(&Executor::available(), flow, xs, patch)
}

/// [`sweep_patched`] on an explicit executor. Points are evaluated in
/// parallel (each point patches its own copy of the op vector); the
/// result, including which error is reported, is identical to the
/// serial evaluation.
///
/// # Errors
///
/// See [`sweep_patched`].
pub fn sweep_patched_with<I, F>(
    executor: &Executor,
    flow: &Flow,
    xs: I,
    patch: F,
) -> Result<Vec<SweepPoint>, FlowError>
where
    I: IntoIterator<Item = f64>,
    F: Fn(f64, &mut FlowPatch) -> Result<(), FlowError> + Sync,
{
    let compiled = flow.compiled()?;
    let xs: Vec<f64> = xs.into_iter().collect();
    executor.try_map(&xs, |_, &x| {
        let mut point = compiled.patch();
        patch(x, &mut point)?;
        let report = point.analyze()?;
        Ok(SweepPoint { x, report })
    })
}

/// Find where two cost curves cross, by linear interpolation between
/// sample points.
///
/// Both series must be sampled on the same ascending `x` grid. Returns
/// the interpolated `x` of the first sign change of `a − b`, or `None`
/// when one curve dominates everywhere (or the grids disagree).
///
/// # Examples
///
/// ```
/// use ipass_moe::find_crossover;
///
/// // a: flat 10; b: 4 + 2x — b overtakes a at x = 3.
/// let a: Vec<(f64, f64)> = (0..=5).map(|i| (i as f64, 10.0)).collect();
/// let b: Vec<(f64, f64)> = (0..=5).map(|i| (i as f64, 4.0 + 2.0 * i as f64)).collect();
/// let x = find_crossover(&a, &b).unwrap();
/// assert!((x - 3.0).abs() < 1e-9);
/// ```
pub fn find_crossover(a: &[(f64, f64)], b: &[(f64, f64)]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let diff: Vec<(f64, f64)> = a
        .iter()
        .zip(b.iter())
        .map(|(&(xa, ya), &(xb, yb))| {
            if (xa - xb).abs() > 1e-9 {
                (f64::NAN, f64::NAN)
            } else {
                (xa, ya - yb)
            }
        })
        .collect();
    if diff.iter().any(|(x, _)| x.is_nan()) {
        return None;
    }
    for w in diff.windows(2) {
        let (x0, d0) = w[0];
        let (x1, d1) = w[1];
        if d0 == 0.0 {
            return Some(x0);
        }
        if d0 * d1 < 0.0 {
            // Linear interpolation to the root of d(x).
            return Some(x0 + (x1 - x0) * d0 / (d0 - d1));
        }
        if d1 == 0.0 && w == diff.windows(2).last().unwrap() {
            return Some(x1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostCategory, StepCost};
    use crate::line::Line;
    use crate::part::Part;
    use crate::stage::Process;
    use ipass_units::Money;

    fn linear_flow(cost: f64) -> Result<Flow, FlowError> {
        let line = Line::builder(
            "family",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(cost))),
        )
        .process(Process::new("p"))
        .build()?;
        Ok(Flow::new(line))
    }

    #[test]
    fn sweep_produces_monotone_costs() {
        let points = sweep((0..5).map(|i| i as f64), linear_flow).unwrap();
        assert_eq!(points.len(), 5);
        for w in points.windows(2) {
            assert!(w[1].final_cost() >= w[0].final_cost());
        }
    }

    #[test]
    fn patched_sweep_matches_rebuild_sweep() {
        // The fast path and the rebuild path are the same curve. The
        // base point must carry a non-zero cost: a free, certain
        // carrier would compile away and leave nothing to patch.
        let base = linear_flow(1.0).unwrap();
        let xs: Vec<f64> = (1..9).map(|i| i as f64).collect();
        let rebuilt = sweep(xs.clone(), linear_flow).unwrap();
        let patched = sweep_patched(&base, xs, |x, patch| {
            patch.set_cost("c", Money::new(x))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(rebuilt.len(), patched.len());
        for (a, b) in rebuilt.iter().zip(patched.iter()) {
            assert_eq!(a.x, b.x);
            assert_eq!(a.final_cost(), b.final_cost());
        }
    }

    #[test]
    fn patched_sweep_propagates_slot_errors() {
        let base = linear_flow(1.0).unwrap();
        let err = sweep_patched(&base, [1.0], |x, patch| {
            patch.set_cost("ghost", Money::new(x))?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, FlowError::UnknownPatchSlot { .. }));
    }

    #[test]
    fn sweep_propagates_errors() {
        let err = sweep([1.0], |_| {
            Line::builder("bad", Part::new("c", CostCategory::Substrate))
                .build()
                .map(Flow::new)
        })
        .unwrap_err();
        assert!(matches!(err, FlowError::EmptyLine { .. }));
    }

    #[test]
    fn crossover_exact_grid_point() {
        let a = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let b = [(0.0, 7.0), (1.0, 5.0), (2.0, 3.0)];
        // d = a−b: 0 at x=1 reached from d0=−2 ... first window has d0=-2,d1=0:
        // no sign change strictly; second window d0=0 → returns 1.0.
        assert_eq!(find_crossover(&a, &b), Some(1.0));
    }

    #[test]
    fn crossover_none_when_dominated() {
        let a = [(0.0, 1.0), (1.0, 1.0)];
        let b = [(0.0, 2.0), (1.0, 3.0)];
        assert_eq!(find_crossover(&a, &b), None);
    }

    #[test]
    fn crossover_rejects_mismatched_grids() {
        let a = [(0.0, 1.0), (1.0, 1.0)];
        let b = [(0.0, 2.0), (1.5, 0.0)];
        assert_eq!(find_crossover(&a, &b), None);
        assert_eq!(find_crossover(&a[..1], &b[..1]), None);
    }

    #[test]
    fn crossover_interpolates() {
        let a = [(0.0, 0.0), (10.0, 10.0)];
        let b = [(0.0, 5.0), (10.0, 5.0)];
        let x = find_crossover(&a, &b).unwrap();
        assert!((x - 5.0).abs() < 1e-9);
    }
}
