//! Internal label map: assigns stable indices to every defect source in a
//! (possibly nested) line so both engines report the same pareto.

use crate::line::Line;
use crate::part::AttachInput;
use crate::stage::Stage;

#[derive(Debug)]
pub(crate) struct LineLabels {
    /// Label for defects the carrier brings in.
    pub carrier: usize,
    /// Per-stage labels, aligned with `Line::stages`.
    pub stages: Vec<StageLabels>,
}

#[derive(Debug)]
pub(crate) enum StageLabels {
    Process(usize),
    Attach { op: usize, inputs: Vec<InputLabels> },
    Test,
}

#[derive(Debug)]
pub(crate) enum InputLabels {
    Part(usize),
    Line(Box<LineLabels>),
}

/// Walk `line` and register a label for every defect source.
pub(crate) fn index_line(line: &Line, prefix: &str, names: &mut Vec<String>) -> LineLabels {
    let carrier = push(
        names,
        format!("{prefix}{} (incoming)", line.carrier().name()),
    );
    let mut stages = Vec::with_capacity(line.stages().len());
    for stage in line.stages() {
        stages.push(match stage {
            Stage::Process(p) => StageLabels::Process(push(names, format!("{prefix}{}", p.name()))),
            Stage::Attach(a) => {
                let op = push(names, format!("{prefix}{}", a.name()));
                let mut inputs = Vec::with_capacity(a.inputs().len());
                for (input, _) in a.inputs() {
                    inputs.push(match input {
                        AttachInput::Part(p) => InputLabels::Part(push(
                            names,
                            format!("{prefix}{}/{} (incoming)", a.name(), p.name()),
                        )),
                        AttachInput::Line(sub) => {
                            let sub_prefix = format!("{prefix}{}/", sub.name());
                            InputLabels::Line(Box::new(index_line(sub, &sub_prefix, names)))
                        }
                    });
                }
                StageLabels::Attach { op, inputs }
            }
            Stage::Test(_) => StageLabels::Test,
        });
    }
    LineLabels { carrier, stages }
}

fn push(names: &mut Vec<String>, name: String) -> usize {
    names.push(name);
    names.len() - 1
}

/// Turn raw defect counts into a sorted pareto, dropping zero entries and
/// normalizing by `started`.
pub(crate) fn pareto(names: &[String], defects: &[f64], started: f64) -> Vec<(String, f64)> {
    let mut rows: Vec<(String, f64)> = names
        .iter()
        .zip(defects.iter())
        .filter(|(_, &d)| d > 0.0)
        .map(|(n, &d)| (n.clone(), if started > 0.0 { d / started } else { 0.0 }))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostCategory;
    use crate::part::Part;
    use crate::stage::{Attach, Process, Test};

    #[test]
    fn labels_cover_nested_structure() {
        let sub = Line::builder("sub", Part::new("blank", CostCategory::Substrate))
            .process(Process::new("etch"))
            .build()
            .unwrap();
        let line = Line::builder("main", Part::new("pcb", CostCategory::Substrate))
            .attach(
                Attach::new("join")
                    .input(Part::new("die", CostCategory::Chip), 2)
                    .input(sub, 1),
            )
            .test(Test::new("ft"))
            .build()
            .unwrap();
        let mut names = Vec::new();
        let labels = index_line(&line, "", &mut names);
        assert_eq!(names[labels.carrier], "pcb (incoming)");
        assert!(names.iter().any(|n| n == "join"));
        assert!(names.iter().any(|n| n == "join/die (incoming)"));
        assert!(names.iter().any(|n| n == "sub/etch"));
        assert!(names.iter().any(|n| n == "sub/blank (incoming)"));
        assert_eq!(labels.stages.len(), 2);
    }

    #[test]
    fn pareto_sorts_and_normalizes() {
        let names = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let defects = vec![1.0, 4.0, 0.0];
        let rows = pareto(&names, &defects, 10.0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "b");
        assert!((rows[0].1 - 0.4).abs() < 1e-12);
        assert!((rows[1].1 - 0.1).abs() < 1e-12);
    }
}
