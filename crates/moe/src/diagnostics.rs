//! Typed diagnostics for the static verifier and lint pass.
//!
//! The `verify` module checks a compiled routing program against the
//! invariant catalog every engine trusts (see `DESIGN.md`); each
//! violation or smell becomes one [`Diagnostic`] — a severity, a stable
//! machine-readable code, the stage/part path it anchors to, and a
//! human explanation — collected into a [`Diagnostics`] report.
//!
//! Severities follow compiler convention:
//!
//! * [`Severity::Error`] — the program violates an invariant an engine
//!   relies on; evaluating it can produce silently wrong numbers.
//!   `ipass lint` always fails on errors.
//! * [`Severity::Warning`] — the model is structurally sound but almost
//!   certainly not what was meant (a test that can detect nothing, ops
//!   no unit can reach). `ipass lint --deny-warnings` fails on these.
//! * [`Severity::Info`] — an observation (a cost category the flow
//!   never books); never a failure.
//!
//! The report renders through the `ipass-report` sinks via
//! [`Diagnostics::artifact`], which is how `ipass lint` and the docs
//! book surface it.

use std::fmt;

/// How bad one [`Diagnostic`] is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// An observation; never a lint failure.
    Info,
    /// Structurally sound but almost certainly a modeling mistake;
    /// fails under `--deny-warnings`.
    Warning,
    /// An engine invariant is violated; always a lint failure.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the verifier or lint pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable machine-readable code in kebab case, e.g.
    /// `"threshold-mismatch"`.
    pub code: &'static str,
    /// Where it anchors: a stage/part path in the defect-label
    /// convention (`"chip assembly/RF chip"`), an `"op N"` position for
    /// ops without a named slot, or `"program"` for whole-program
    /// findings.
    pub path: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build one diagnostic.
    pub fn new(
        severity: Severity,
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity,
            code,
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.path, self.message
        )
    }
}

/// The verifier's report for one flow: every [`Diagnostic`] in
/// deterministic emission order (structural checks first, then lints,
/// each in op order).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostics {
    flow: String,
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty report for the named flow.
    pub fn new(flow: impl Into<String>) -> Diagnostics {
        Diagnostics {
            flow: flow.into(),
            items: Vec::new(),
        }
    }

    /// The flow the report describes.
    pub fn flow(&self) -> &str {
        &self.flow
    }

    /// Append one diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.items.push(diagnostic);
    }

    /// The diagnostics, in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.items.iter()
    }

    /// Number of diagnostics (all severities).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == severity).count()
    }

    /// Whether any [`Severity::Error`] diagnostic is present — the
    /// always-fail condition.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of diagnostics that fail a `--deny-warnings` gate
    /// (warnings + errors; infos never fail).
    pub fn deny_warnings_failures(&self) -> usize {
        self.count(Severity::Warning) + self.count(Severity::Error)
    }

    /// The renderable [`Findings`](ipass_report::Findings) form for the
    /// `ipass-report` sinks.
    pub fn artifact(&self) -> ipass_report::Findings {
        let mut findings = ipass_report::Findings::new(format!("lint — {}", self.flow));
        for d in &self.items {
            findings.push(d.severity.to_string(), d.code, &d.path, &d.message);
        }
        findings.note(format!(
            "{} error(s), {} warning(s), {} info(s); \
             `ipass lint --deny-warnings` fails on warnings and errors",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ))
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.items {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Diagnostics {
        let mut d = Diagnostics::new("demo");
        d.push(Diagnostic::new(
            Severity::Error,
            "threshold-mismatch",
            "p",
            "stored threshold disagrees",
        ));
        d.push(Diagnostic::new(
            Severity::Warning,
            "zero-coverage-test",
            "ft",
            "test detects nothing",
        ));
        d.push(Diagnostic::new(
            Severity::Info,
            "cost-category-never-booked",
            "program",
            "no op books Chip",
        ));
        d
    }

    #[test]
    fn severities_order_like_compilers() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn counts_and_gates() {
        let d = report();
        assert_eq!(d.len(), 3);
        assert_eq!(d.count(Severity::Warning), 1);
        assert!(d.has_errors());
        assert_eq!(d.deny_warnings_failures(), 2);
        assert!(!Diagnostics::new("x").has_errors());
    }

    #[test]
    fn display_is_one_line_per_diagnostic() {
        let text = report().to_string();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("error[threshold-mismatch] p: stored threshold disagrees"));
    }

    #[test]
    fn artifact_carries_every_item_and_the_counts_note() {
        let findings = report().artifact();
        assert_eq!(findings.len(), 3);
        assert_eq!(findings.title, "lint — demo");
        assert!(findings.notes[0].contains("1 error(s), 1 warning(s), 1 info(s)"));
    }
}
