//! Parameter patching on compiled routing programs.
//!
//! Scenario grids (sweeps, tornado charts, trade-study scenario
//! batches) evaluate the *same* production line hundreds of times with
//! a handful of numbers changed per point. Rebuilding the [`Line`]
//! object graph per point pays validation, label indexing and
//! compilation every time just to move one float. A compiled
//! [`RoutingProgram`] instead exposes a small set of *patch slots* —
//! step costs, yield probabilities, test coverages, each named by its
//! defect-label path — and a [`FlowPatch`] overwrites them directly in
//! a copy of the flat op vector: one `memcpy` plus a few field writes
//! per scenario point, then a cohort walk.
//!
//! Patched programs are evaluated **analytically only**. The Monte
//! Carlo kernel's draw-stream contract is defined by compiling a
//! [`Line`] (degenerate probabilities specialize into draw-free ops at
//! compile time); overwriting a probability after the fact could
//! change which ops *should* draw and silently break seeded
//! reproducibility. To Monte-Carlo a modified model, rebuild the line.
//!
//! # Examples
//!
//! ```
//! use ipass_moe::{CostCategory, Flow, Line, Part, Process, StepCost, YieldModel};
//! use ipass_units::{Money, Probability};
//!
//! let line = Line::builder("demo", Part::new("pcb", CostCategory::Substrate)
//!         .with_cost(StepCost::fixed(Money::new(2.0))))
//!     .process(Process::new("assemble")
//!         .with_cost(StepCost::fixed(Money::new(1.0)))
//!         .with_yield(YieldModel::percent(95.0)))
//!     .build()?;
//! let flow = Flow::new(line);
//! let compiled = flow.compiled()?;
//! let mut patch = compiled.patch();
//! patch.set_cost("pcb", Money::new(3.0))?;
//! patch.set_yield("assemble", Probability::new(0.90).unwrap())?;
//! let report = patch.analyze()?;
//! assert!(report.final_cost_per_shipped() > flow.analyze()?.final_cost_per_shipped());
//! # Ok::<(), ipass_moe::FlowError>(())
//! ```
//!
//! [`Line`]: crate::Line

use crate::analytic;
use crate::compile::{Op, RoutingProgram, SlotKind};
use crate::error::FlowError;
use crate::mc::{self, SimOptions, SimSummary};
use crate::report::CostReport;
use ipass_sim::{Executor, SimRng};
use ipass_units::{Money, Probability};
use std::borrow::Cow;
use std::sync::Arc;

/// The one patched-evaluation fan-out every scenario surface delegates
/// to — parameter sweeps ([`sweep_patched`](crate::sweep_patched)),
/// tornado charts
/// ([`Tornado::evaluate_patches`](crate::Tornado::evaluate_patches))
/// and the `ipass-explore` design-space explorer all used to carry
/// their own near-identical clone-patch-analyze loop; this is that loop,
/// once.
///
/// For every item, `patch_for` produces the [`FlowPatch`] to evaluate —
/// [`Cow::Owned`] when the point is patched on the fly (the sweep
/// shape), [`Cow::Borrowed`] when the patch was prebuilt (the tornado
/// shape) — and the batch is analyzed in parallel on `executor` with
/// results, and the choice of reported error, identical to a serial
/// evaluation.
///
/// # Errors
///
/// Fails on the first item (in batch order) whose patch cannot be built
/// or whose patched flow ships nothing.
pub fn analyze_patched_batch<'p, T, F>(
    executor: &Executor,
    items: &[T],
    patch_for: F,
) -> Result<Vec<CostReport>, FlowError>
where
    T: Sync,
    F: Fn(usize, &T) -> Result<Cow<'p, FlowPatch>, FlowError> + Sync,
{
    executor.try_map(items, |i, item| patch_for(i, item)?.analyze())
}

/// A [`Flow`](crate::Flow)'s compiled routing program plus its run
/// economics: the shareable, immutable base that [`FlowPatch`]es and
/// cached evaluations hang off. Obtained from
/// [`Flow::compiled`](crate::Flow::compiled); clones share the program.
#[derive(Debug, Clone)]
pub struct CompiledFlow {
    program: Arc<RoutingProgram>,
    nre: Money,
    volume: u64,
}

impl CompiledFlow {
    pub(crate) fn new(program: Arc<RoutingProgram>, nre: Money, volume: u64) -> CompiledFlow {
        CompiledFlow {
            program,
            nre,
            volume,
        }
    }

    /// The flow's name (the top line's name).
    pub fn name(&self) -> &str {
        self.program.line_name()
    }

    /// The patchable parameters: `(slot name, kind)` pairs, in program
    /// order. Slot names follow the defect-label path convention
    /// (`"wire bonding"`, `"chip assembly/RF chip"`,
    /// `"subassembly/fab"`).
    pub fn slots(&self) -> impl Iterator<Item = (&str, SlotKind)> + '_ {
        self.program
            .slots()
            .iter()
            .map(|s| (s.name.as_str(), s.kind))
    }

    /// Evaluate the unpatched program with the analytic engine
    /// (identical to [`Flow::analyze`](crate::Flow::analyze)).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NothingShipped`] when the flow ships
    /// nothing.
    pub fn analyze(&self) -> Result<CostReport, FlowError> {
        analytic::analyze_program(&self.program, self.nre, self.volume)
    }

    /// Evaluate the unpatched program by seeded Monte Carlo (identical
    /// to [`Flow::simulate`](crate::Flow::simulate)).
    ///
    /// # Errors
    ///
    /// See [`Flow::simulate`](crate::Flow::simulate).
    pub fn simulate(&self, options: &SimOptions) -> Result<CostReport, FlowError> {
        self.simulate_summary(options).map(|s| s.report)
    }

    /// Like [`CompiledFlow::simulate`] but returns the extra Monte
    /// Carlo statistics.
    ///
    /// # Errors
    ///
    /// See [`Flow::simulate`](crate::Flow::simulate).
    pub fn simulate_summary(&self, options: &SimOptions) -> Result<SimSummary, FlowError> {
        mc::simulate_program(&self.program, self.nre, self.volume, options, None)
    }

    /// Start a patch: a private copy of the op vector with every slot
    /// still at its compiled value. Creating one per scenario point is
    /// the intended pattern — it is a single `Vec` clone.
    pub fn patch(&self) -> FlowPatch {
        FlowPatch {
            program: Arc::clone(&self.program),
            ops: self.program.ops().to_vec(),
            nre: self.nre,
            volume: self.volume,
        }
    }
}

/// A declarative patch step — the serializable/comparable form of the
/// [`FlowPatch`] setters, so scenario definitions can carry patches as
/// plain data (and deduplicate equal ones).
#[derive(Debug, Clone, PartialEq)]
pub enum PatchDirective {
    /// Set a [`SlotKind::Cost`] slot to a per-input-unit cost.
    SetCost {
        /// Slot name.
        slot: String,
        /// New cost per input unit (the op books `quantity ×` this).
        unit_cost: Money,
    },
    /// Multiply a [`SlotKind::Cost`] slot's current cost by a factor.
    ScaleCost {
        /// Slot name.
        slot: String,
        /// Multiplier applied to the op's current cost.
        factor: f64,
    },
    /// Set a [`SlotKind::Yield`] slot to a per-input-unit probability.
    SetYield {
        /// Slot name.
        slot: String,
        /// New per-input-unit success probability (the op folds in
        /// `p^quantity`).
        p: Probability,
    },
    /// Set a [`SlotKind::Coverage`] slot (test fault coverage).
    SetCoverage {
        /// Slot name.
        slot: String,
        /// New fault coverage.
        p: Probability,
    },
}

/// A mutable copy of a compiled program's op vector with named
/// parameter slots overwritten — see the crate docs for the sweep
/// pattern and the analytic-only caveat.
#[derive(Debug, Clone)]
pub struct FlowPatch {
    /// The base program: slot table, label names, region layout.
    program: Arc<RoutingProgram>,
    /// The private op copy the setters write into.
    ops: Vec<Op>,
    nre: Money,
    volume: u64,
}

impl FlowPatch {
    /// The cost field of the op a [`SlotKind::Cost`] slot points at.
    fn cost_of(&mut self, op: u32) -> &mut f64 {
        match &mut self.ops[op as usize] {
            Op::Cost { cost, .. }
            | Op::Condemn { cost, .. }
            | Op::Step { cost, .. }
            | Op::TestScrap { cost, .. }
            | Op::TestRework { cost, .. } => cost,
            Op::SubLine { .. } => unreachable!("cost slot registered on a sub-line op"),
        }
    }

    /// Resolve `(name, kind)` to its unique op. Zero matches and
    /// multiple matches (duplicate stage/part names are legal in a
    /// line) are both errors — silently patching the first duplicate
    /// would diverge from rebuilding the line.
    fn resolve(&self, name: &str, kind: SlotKind) -> Result<(u32, u32), FlowError> {
        let mut matches = self
            .program
            .slots()
            .iter()
            .filter(|s| s.kind == kind && s.name == name);
        let first = matches.next().ok_or_else(|| FlowError::UnknownPatchSlot {
            slot: format!("{name} ({kind})"),
        })?;
        if matches.next().is_some() {
            return Err(FlowError::AmbiguousPatchSlot {
                slot: format!("{name} ({kind})"),
            });
        }
        Ok((first.op, first.qty))
    }

    /// Set a cost slot to `unit_cost` per input unit (the op books
    /// `quantity × unit_cost`; quantity is 1 for everything but
    /// multi-part attach inputs).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] when the program has no
    /// cost slot of that name (e.g. the step compiled away as a free,
    /// certain no-op).
    pub fn set_cost(&mut self, slot: &str, unit_cost: Money) -> Result<&mut FlowPatch, FlowError> {
        let (op, qty) = self.resolve(slot, SlotKind::Cost)?;
        let folded = qty as f64 * unit_cost.units();
        *self.cost_of(op) = folded;
        Ok(self)
    }

    /// Multiply a cost slot's current value by `factor`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] when the program has no
    /// cost slot of that name.
    pub fn scale_cost(&mut self, slot: &str, factor: f64) -> Result<&mut FlowPatch, FlowError> {
        let (op, _) = self.resolve(slot, SlotKind::Cost)?;
        *self.cost_of(op) *= factor;
        Ok(self)
    }

    /// Set a yield slot to `p` per input unit (the op folds in
    /// `p^quantity`).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] when the program has no
    /// yield slot of that name — in particular when the step's compiled
    /// yield was degenerate (certain or zero), which specialized the op
    /// into a draw-free form with no live probability to overwrite.
    pub fn set_yield(&mut self, slot: &str, p: Probability) -> Result<&mut FlowPatch, FlowError> {
        let (op, qty) = self.resolve(slot, SlotKind::Yield)?;
        let folded = if qty > 1 {
            p.value().powf(qty as f64)
        } else {
            p.value()
        };
        let Op::Step {
            p_good, threshold, ..
        } = &mut self.ops[op as usize]
        else {
            unreachable!("yield slot registered on a non-step op");
        };
        *p_good = folded;
        // Kept structurally valid for the analytic walker; patched
        // programs are never handed to the Monte Carlo kernel (see the
        // module docs), so a degenerate patched probability needs no
        // op-kind re-specialization.
        *threshold = if folded > 0.0 && folded < 1.0 {
            SimRng::threshold(folded)
        } else if folded >= 1.0 {
            u64::MAX
        } else {
            0
        };
        Ok(self)
    }

    /// Set a test stage's fault coverage.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] when the program has no
    /// test stage of that name.
    pub fn set_coverage(
        &mut self,
        slot: &str,
        p: Probability,
    ) -> Result<&mut FlowPatch, FlowError> {
        let (op, _) = self.resolve(slot, SlotKind::Coverage)?;
        match &mut self.ops[op as usize] {
            Op::TestScrap { coverage, .. } | Op::TestRework { coverage, .. } => {
                *coverage = p.value();
            }
            _ => unreachable!("coverage slot registered on a non-test op"),
        }
        Ok(self)
    }

    /// Apply one declarative [`PatchDirective`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] when the directive names
    /// a slot the program does not expose.
    pub fn apply(&mut self, directive: &PatchDirective) -> Result<&mut FlowPatch, FlowError> {
        match directive {
            PatchDirective::SetCost { slot, unit_cost } => self.set_cost(slot, *unit_cost),
            PatchDirective::ScaleCost { slot, factor } => self.scale_cost(slot, *factor),
            PatchDirective::SetYield { slot, p } => self.set_yield(slot, *p),
            PatchDirective::SetCoverage { slot, p } => self.set_coverage(slot, *p),
        }
    }

    /// Override the NRE charged to this evaluation.
    pub fn set_nre(&mut self, nre: Money) -> &mut FlowPatch {
        self.nre = nre;
        self
    }

    /// Override the amortization volume (minimum 1).
    pub fn set_volume(&mut self, volume: u64) -> &mut FlowPatch {
        self.volume = volume.max(1);
        self
    }

    /// Restore every slot to its compiled value (reuse one allocation
    /// across scenario points).
    pub fn reset(&mut self) -> &mut FlowPatch {
        self.ops.clear();
        self.ops.extend_from_slice(self.program.ops());
        self
    }

    /// Evaluate the patched program with the analytic cohort engine.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NothingShipped`] when the patched flow
    /// ships nothing.
    pub fn analyze(&self) -> Result<CostReport, FlowError> {
        let (entry, len) = self.program.top_region();
        analytic::analyze_ops(
            &self.ops,
            entry,
            len,
            self.program.names(),
            self.program.line_name(),
            self.nre,
            self.volume,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostCategory, StepCost};
    use crate::line::Line;
    use crate::part::Part;
    use crate::stage::{Attach, Process, Test};
    use crate::yield_model::YieldModel;
    use crate::Flow;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn flow(part_cost: f64, process_yield: f64) -> Flow {
        let line = Line::builder(
            "t",
            Part::new("c", CostCategory::Substrate)
                .with_cost(StepCost::fixed(Money::new(part_cost))),
        )
        .process(Process::new("p").with_yield(YieldModel::flat(p(process_yield))))
        .attach(
            Attach::new("a").input(
                Part::new("die", CostCategory::Chip)
                    .with_cost(StepCost::fixed(Money::new(5.0)))
                    .with_incoming_yield(YieldModel::flat(p(0.95))),
                2,
            ),
        )
        .test(Test::new("ft").with_coverage(p(0.99)))
        .build()
        .unwrap();
        Flow::new(line)
    }

    #[test]
    fn patched_program_matches_rebuilt_line() {
        // Patching (carrier cost, process yield, part cost, coverage)
        // must equal rebuilding the line with those values.
        let base = flow(10.0, 0.9).compiled().unwrap();
        let mut patch = base.patch();
        patch
            .set_cost("c", Money::new(12.0))
            .unwrap()
            .set_yield("p", p(0.8))
            .unwrap()
            .set_cost("a/die", Money::new(6.0))
            .unwrap()
            .set_yield("a/die", p(0.9))
            .unwrap()
            .set_coverage("ft", p(0.95))
            .unwrap();
        let patched = patch.analyze().unwrap();

        let rebuilt_line = Line::builder(
            "t",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(12.0))),
        )
        .process(Process::new("p").with_yield(YieldModel::flat(p(0.8))))
        .attach(
            Attach::new("a").input(
                Part::new("die", CostCategory::Chip)
                    .with_cost(StepCost::fixed(Money::new(6.0)))
                    .with_incoming_yield(YieldModel::flat(p(0.9))),
                2,
            ),
        )
        .test(Test::new("ft").with_coverage(p(0.95)))
        .build()
        .unwrap();
        let rebuilt = Flow::new(rebuilt_line).analyze().unwrap();
        assert_eq!(patched.shipped_fraction(), rebuilt.shipped_fraction());
        assert_eq!(patched.total_spend(), rebuilt.total_spend());
        assert_eq!(
            patched.final_cost_per_shipped(),
            rebuilt.final_cost_per_shipped()
        );
    }

    #[test]
    fn reset_restores_the_compiled_values() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let unpatched = base.analyze().unwrap();
        let mut patch = base.patch();
        patch.scale_cost("c", 3.0).unwrap();
        assert_ne!(
            patch.analyze().unwrap().total_spend(),
            unpatched.total_spend()
        );
        patch.reset();
        assert_eq!(patch.analyze().unwrap(), unpatched);
    }

    #[test]
    fn unknown_slot_is_reported() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let mut patch = base.patch();
        let err = patch.set_cost("ghost", Money::new(1.0)).unwrap_err();
        assert!(matches!(err, FlowError::UnknownPatchSlot { .. }));
        assert!(err.to_string().contains("ghost"));
        // The attach op is free and certain — compiled away, hence no
        // yield slot to patch.
        let err = patch.set_yield("a", p(0.5)).unwrap_err();
        assert!(matches!(err, FlowError::UnknownPatchSlot { .. }));
    }

    #[test]
    fn duplicate_stage_names_are_ambiguous_not_shadowed() {
        // Line validation allows two stages with the same name; a
        // patch naming them must error instead of silently updating
        // only the first.
        let line = Line::builder(
            "dup",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(1.0))),
        )
        .process(
            Process::new("anneal")
                .with_cost(StepCost::fixed(Money::new(2.0)))
                .with_yield(YieldModel::flat(p(0.9))),
        )
        .process(
            Process::new("anneal")
                .with_cost(StepCost::fixed(Money::new(3.0)))
                .with_yield(YieldModel::flat(p(0.95))),
        )
        .build()
        .unwrap();
        let base = Flow::new(line).compiled().unwrap();
        let mut patch = base.patch();
        let err = patch.set_cost("anneal", Money::new(9.0)).unwrap_err();
        assert!(matches!(err, FlowError::AmbiguousPatchSlot { .. }));
        assert!(err.to_string().contains("anneal"));
        // The unique carrier slot still resolves.
        assert!(patch.set_cost("c", Money::new(2.0)).is_ok());
    }

    #[test]
    fn directives_match_setters() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let mut by_setter = base.patch();
        by_setter.scale_cost("a/die", 1.5).unwrap();
        let mut by_directive = base.patch();
        by_directive
            .apply(&PatchDirective::ScaleCost {
                slot: "a/die".into(),
                factor: 1.5,
            })
            .unwrap();
        assert_eq!(
            by_setter.analyze().unwrap(),
            by_directive.analyze().unwrap()
        );
    }

    #[test]
    fn slots_enumerate_the_patchable_surface() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let slots: Vec<(String, SlotKind)> = base.slots().map(|(n, k)| (n.to_owned(), k)).collect();
        assert!(slots.contains(&("c".into(), SlotKind::Cost)));
        assert!(slots.contains(&("p".into(), SlotKind::Yield)));
        assert!(slots.contains(&("a/die".into(), SlotKind::Cost)));
        assert!(slots.contains(&("ft".into(), SlotKind::Coverage)));
    }

    #[test]
    fn degenerate_patched_yield_is_analytically_sound() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let mut patch = base.patch();
        patch.set_yield("p", Probability::ONE).unwrap();
        let certain = patch.analyze().unwrap();
        assert!(certain.shipped_fraction() > base.analyze().unwrap().shipped_fraction());
        patch.reset();
        patch.set_yield("p", Probability::ZERO).unwrap();
        // Everything defective and the test catches 99 %: almost
        // nothing ships, but the walker stays well-defined.
        let doomed = patch.analyze().unwrap();
        assert!(doomed.shipped_fraction() < 0.05);
    }

    #[test]
    fn compiled_flow_engines_match_flow_engines() {
        let f = flow(10.0, 0.9);
        let compiled = f.compiled().unwrap();
        assert_eq!(compiled.name(), "t");
        assert_eq!(compiled.analyze().unwrap(), f.analyze().unwrap());
        let opts = SimOptions::new(5_000).with_seed(11);
        assert_eq!(
            compiled.simulate(&opts).unwrap(),
            f.simulate(&opts).unwrap()
        );
    }
}
