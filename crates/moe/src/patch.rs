//! Parameter patching on compiled routing programs.
//!
//! Scenario grids (sweeps, tornado charts, trade-study scenario
//! batches) evaluate the *same* production line hundreds of times with
//! a handful of numbers changed per point. Rebuilding the [`Line`]
//! object graph per point pays validation, label indexing and
//! compilation every time just to move one float. A compiled
//! [`RoutingProgram`] instead exposes a small set of *patch slots* —
//! step costs, yield probabilities, test coverages, each named by its
//! defect-label path — and a [`FlowPatch`] overwrites them directly in
//! a copy of the flat op vector: one `memcpy` plus a few field writes
//! per scenario point, then a cohort walk.
//!
//! Patched programs are evaluated **analytically only**. The Monte
//! Carlo kernel's draw-stream contract is defined by compiling a
//! [`Line`] (degenerate probabilities specialize into draw-free ops at
//! compile time); overwriting a probability after the fact could
//! change which ops *should* draw and silently break seeded
//! reproducibility. To Monte-Carlo a modified model, rebuild the line.
//!
//! # Examples
//!
//! ```
//! use ipass_moe::{CostCategory, Flow, Line, Part, Process, StepCost, YieldModel};
//! use ipass_units::{Money, Probability};
//!
//! let line = Line::builder("demo", Part::new("pcb", CostCategory::Substrate)
//!         .with_cost(StepCost::fixed(Money::new(2.0))))
//!     .process(Process::new("assemble")
//!         .with_cost(StepCost::fixed(Money::new(1.0)))
//!         .with_yield(YieldModel::percent(95.0)))
//!     .build()?;
//! let flow = Flow::new(line);
//! let compiled = flow.compiled()?;
//! let mut patch = compiled.patch();
//! patch.set_cost("pcb", Money::new(3.0))?;
//! patch.set_yield("assemble", Probability::new(0.90).unwrap())?;
//! let report = patch.analyze()?;
//! assert!(report.final_cost_per_shipped() > flow.analyze()?.final_cost_per_shipped());
//! # Ok::<(), ipass_moe::FlowError>(())
//! ```
//!
//! [`Line`]: crate::Line

use crate::analytic::{self, FoldedDirections, FoldedSeed};
use crate::compile::{Op, RoutingProgram, SlotKind};
use crate::diagnostics::{Diagnostic, Diagnostics, Severity};
use crate::dual::{DualDirection, DualReport};
use crate::error::FlowError;
use crate::mc::{self, SimOptions, SimSummary};
use crate::report::CostReport;
use crate::verify::{self, StaticBounds, VerifyMode};
use ipass_sim::{Executor, SimRng};
use ipass_units::{Money, Probability};
use std::borrow::Cow;
use std::sync::Arc;

/// The one patched-evaluation fan-out every scenario surface delegates
/// to — parameter sweeps ([`sweep_patched`](crate::sweep_patched)),
/// tornado charts
/// ([`Tornado::evaluate_patches`](crate::Tornado::evaluate_patches))
/// and the `ipass-explore` design-space explorer all used to carry
/// their own near-identical clone-patch-analyze loop; this is that loop,
/// once.
///
/// For every item, `patch_for` produces the [`FlowPatch`] to evaluate —
/// [`Cow::Owned`] when the point is patched on the fly (the sweep
/// shape), [`Cow::Borrowed`] when the patch was prebuilt (the tornado
/// shape) — and the batch is analyzed in parallel on `executor` with
/// results, and the choice of reported error, identical to a serial
/// evaluation.
///
/// # Errors
///
/// Fails on the first item (in batch order) whose patch cannot be built
/// or whose patched flow ships nothing.
pub fn analyze_patched_batch<'p, T, F>(
    executor: &Executor,
    items: &[T],
    patch_for: F,
) -> Result<Vec<CostReport>, FlowError>
where
    T: Sync,
    F: Fn(usize, &T) -> Result<Cow<'p, FlowPatch>, FlowError> + Sync,
{
    executor.try_map(items, |i, item| patch_for(i, item)?.analyze())
}

/// A [`Flow`](crate::Flow)'s compiled routing program plus its run
/// economics: the shareable, immutable base that [`FlowPatch`]es and
/// cached evaluations hang off. Obtained from
/// [`Flow::compiled`](crate::Flow::compiled); clones share the program.
#[derive(Debug, Clone)]
pub struct CompiledFlow {
    program: Arc<RoutingProgram>,
    nre: Money,
    volume: u64,
}

impl CompiledFlow {
    pub(crate) fn new(program: Arc<RoutingProgram>, nre: Money, volume: u64) -> CompiledFlow {
        CompiledFlow {
            program,
            nre,
            volume,
        }
    }

    /// Test-only access to the compiled op vector (the verifier's unit
    /// tests corrupt copies of real programs to exercise diagnostics).
    #[cfg(test)]
    pub(crate) fn program(&self) -> &RoutingProgram {
        &self.program
    }

    /// The flow's name (the top line's name).
    pub fn name(&self) -> &str {
        self.program.line_name()
    }

    /// Statically verify the compiled program against the invariant
    /// catalog every engine trusts and lint it for probable modeling
    /// mistakes — DESIGN.md's verifier section has the full catalog.
    /// Runs
    /// automatically (as a debug assertion) when a flow is compiled
    /// under `debug_assertions`.
    pub fn verify(&self) -> Diagnostics {
        verify::verify_program(
            &self.program,
            self.program.ops(),
            VerifyMode::Compiled,
            mc::DEFAULT_SUBASSEMBLY_RETRY_BUDGET,
        )
    }

    /// Statically verified per-started-unit bounds — RNG draws, booked
    /// cost, shipped-fraction support, rework attempts, sub-unit builds
    /// — valid for *every* draw outcome at the given
    /// `subassembly_retry_budget` (the bound the Monte Carlo engine
    /// enforces; the analytic engine's untruncated retry model stays
    /// inside the cost bound whenever each sub-line's expected attempt
    /// count does).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::ZeroRetryBudget`] for a zero budget and
    /// [`FlowError::VerificationFailed`] when structural verification
    /// finds errors (the interval walk trusts region soundness).
    pub fn static_bounds(&self, retry_budget: u32) -> Result<StaticBounds, FlowError> {
        if retry_budget == 0 {
            return Err(FlowError::ZeroRetryBudget);
        }
        let diags =
            verify::structural_errors(&self.program, self.program.ops(), VerifyMode::Compiled);
        if diags.has_errors() {
            return Err(verification_failed(&diags));
        }
        let (entry, len) = self.program.top_region();
        Ok(verify::static_bounds(
            self.program.ops(),
            entry,
            len,
            retry_budget,
        ))
    }

    /// Lint a batch of [`PatchDirective`]s against this program without
    /// applying them: unresolvable slots are errors, several directives
    /// writing the same slot is a warning (last-wins is almost always a
    /// scenario-definition mistake).
    pub fn lint_directives(&self, directives: &[PatchDirective]) -> Diagnostics {
        let mut diags = Diagnostics::new(self.program.line_name());
        let mut touched: Vec<(u32, SlotKind, &str)> = Vec::new();
        for directive in directives {
            let (slot, kind) = match directive {
                PatchDirective::SetCost { slot, .. } | PatchDirective::ScaleCost { slot, .. } => {
                    (slot.as_str(), SlotKind::Cost)
                }
                PatchDirective::SetYield { slot, .. } => (slot.as_str(), SlotKind::Yield),
                PatchDirective::SetCoverage { slot, .. } => (slot.as_str(), SlotKind::Coverage),
            };
            lint_slot_ref(&self.program, slot, kind, &mut touched, &mut diags);
        }
        diags
    }

    /// Lint a batch of [`DualDirection`]s against this program without
    /// evaluating them: unresolvable components are errors, one
    /// direction weighting the same slot twice is a warning (the weights
    /// silently sum, which is almost always a duplicated component).
    pub fn lint_directions(&self, directions: &[DualDirection]) -> Diagnostics {
        let mut diags = Diagnostics::new(self.program.line_name());
        for dir in directions {
            let mut touched: Vec<(u32, SlotKind, &str)> = Vec::new();
            for (name, kind, _) in &dir.parts {
                lint_slot_ref(&self.program, name, *kind, &mut touched, &mut diags);
            }
        }
        diags
    }

    /// The patchable parameters: `(slot name, kind)` pairs, in program
    /// order. Slot names follow the defect-label path convention
    /// (`"wire bonding"`, `"chip assembly/RF chip"`,
    /// `"subassembly/fab"`).
    pub fn slots(&self) -> impl Iterator<Item = (&str, SlotKind)> + '_ {
        self.program
            .slots()
            .iter()
            .map(|s| (s.name.as_str(), s.kind))
    }

    /// Evaluate the unpatched program with the analytic engine
    /// (identical to [`Flow::analyze`](crate::Flow::analyze)).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NothingShipped`] when the flow ships
    /// nothing.
    pub fn analyze(&self) -> Result<CostReport, FlowError> {
        analytic::analyze_program(&self.program, self.nre, self.volume)
    }

    /// Evaluate the unpatched program by seeded Monte Carlo (identical
    /// to [`Flow::simulate`](crate::Flow::simulate)).
    ///
    /// # Errors
    ///
    /// See [`Flow::simulate`](crate::Flow::simulate).
    pub fn simulate(&self, options: &SimOptions) -> Result<CostReport, FlowError> {
        self.simulate_summary(options).map(|s| s.report)
    }

    /// Like [`CompiledFlow::simulate`] but returns the extra Monte
    /// Carlo statistics.
    ///
    /// # Errors
    ///
    /// See [`Flow::simulate`](crate::Flow::simulate).
    pub fn simulate_summary(&self, options: &SimOptions) -> Result<SimSummary, FlowError> {
        mc::simulate_program(&self.program, self.nre, self.volume, options, None)
    }

    /// Like [`CompiledFlow::simulate_summary`], recording wall-clock
    /// spans (one `"chunk"` per executor chunk) into `profiler`.
    /// Profiling is strictly the wall-clock plane: the returned summary
    /// — probe stats included — is bit-identical to the unprofiled run.
    ///
    /// # Errors
    ///
    /// See [`Flow::simulate`](crate::Flow::simulate).
    pub fn simulate_summary_profiled(
        &self,
        options: &SimOptions,
        profiler: &ipass_obs::Profiler,
    ) -> Result<SimSummary, FlowError> {
        mc::simulate_program_profiled(
            &self.program,
            self.nre,
            self.volume,
            options,
            None,
            Some(profiler),
        )
    }

    /// Evaluate the program **once** with forward-mode duals and
    /// return the primal report (bit-identical to
    /// [`CompiledFlow::analyze`]) plus one exact [`Gradient`] per
    /// requested direction — where a tornado or sweep pays `1 + 2·n`
    /// full walks for n parameters, this pays one walk carrying n
    /// tangent lanes (chunked above 16 directions).
    ///
    /// Each [`DualDirection`] is a weighted combination of patch slots
    /// with the per-input-unit semantics of the [`FlowPatch`] setters;
    /// the derivative of the final cost per shipped unit is *exact*
    /// (the analytic engine is closed-form, and final cost is affine in
    /// every cost slot, so cost-direction extrapolations are exact too,
    /// not just first-order).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] /
    /// [`FlowError::AmbiguousPatchSlot`] for unresolvable direction
    /// components and [`FlowError::NothingShipped`] when the flow ships
    /// nothing.
    ///
    /// [`Gradient`]: crate::Gradient
    pub fn analyze_duals(&self, directions: &[DualDirection]) -> Result<DualReport, FlowError> {
        self.analyze_duals_ref(directions)
    }

    /// [`CompiledFlow::analyze_duals`] over borrowed directions — the
    /// allocation-free entry the tornado evaluator uses (its inputs own
    /// their directions; cloning them into a slice would cost more than
    /// the walk's own seeding).
    pub(crate) fn analyze_duals_ref<'d>(
        &self,
        directions: impl IntoIterator<Item = &'d DualDirection>,
    ) -> Result<DualReport, FlowError> {
        let folded = fold_directions(&self.program, self.program.ops(), directions)?;
        let (entry, len) = self.program.top_region();
        analytic::analyze_ops_duals(
            self.program.ops(),
            entry,
            len,
            self.program.names(),
            self.program.line_name(),
            self.nre,
            self.volume,
            &folded,
        )
    }

    /// The current per-input-unit cost of a cost slot (the op's folded
    /// cost divided by its quantity) — the weight a [`DualDirection`]
    /// component needs to express "scale this slot's cost", since
    /// ∂cost/∂(scale factor) = the slot's current folded cost.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] /
    /// [`FlowError::AmbiguousPatchSlot`] like the patch setters.
    pub fn slot_unit_cost(&self, slot: &str) -> Result<Money, FlowError> {
        let (op, qty) = self.program.resolve_slot(slot, SlotKind::Cost)?;
        let folded = match self.program.ops()[op as usize] {
            Op::Cost { cost, .. }
            | Op::Condemn { cost, .. }
            | Op::Step { cost, .. }
            | Op::TestScrap { cost, .. }
            | Op::TestRework { cost, .. } => cost,
            Op::SubLine { .. } => unreachable!("cost slot registered on a sub-line op"),
        };
        Ok(Money::new(folded / qty as f64))
    }

    /// Start a patch: a private copy of the op vector with every slot
    /// still at its compiled value. Creating one per scenario point is
    /// the intended pattern — it is a single `Vec` clone.
    pub fn patch(&self) -> FlowPatch {
        FlowPatch {
            program: Arc::clone(&self.program),
            ops: self.program.ops().to_vec(),
            nre: self.nre,
            volume: self.volume,
            touched: Vec::new(),
            strict: false,
        }
    }
}

/// The [`FlowError::VerificationFailed`] for a diagnostics report that
/// `has_errors()`.
fn verification_failed(diags: &Diagnostics) -> FlowError {
    let first = diags
        .iter()
        .find(|d| d.severity == Severity::Error)
        .expect("caller checked has_errors")
        .to_string();
    FlowError::VerificationFailed {
        flow: diags.flow().to_owned(),
        errors: diags.count(Severity::Error),
        first,
    }
}

/// Shared slot-reference lint: resolve `(name, kind)` and report
/// unknown/ambiguous references as errors and repeated writes of the
/// same resolved slot (tracked in `touched`) as a warning.
fn lint_slot_ref<'n>(
    program: &RoutingProgram,
    name: &'n str,
    kind: SlotKind,
    touched: &mut Vec<(u32, SlotKind, &'n str)>,
    diags: &mut Diagnostics,
) {
    match program.resolve_slot(name, kind) {
        Ok((op, _)) => {
            if touched.iter().any(|(o, k, _)| *o == op && *k == kind) {
                diags.push(Diagnostic::new(
                    Severity::Warning,
                    "duplicate-slot-write",
                    format!("{name} ({kind})"),
                    "slot referenced twice in one batch; later writes silently \
                     override (weights silently sum for dual directions)",
                ));
            } else {
                touched.push((op, kind, name));
            }
        }
        Err(FlowError::AmbiguousPatchSlot { .. }) => diags.push(Diagnostic::new(
            Severity::Error,
            "ambiguous-slot",
            format!("{name} ({kind})"),
            "reference matches more than one stage/part; rename the duplicates",
        )),
        Err(_) => diags.push(Diagnostic::new(
            Severity::Error,
            "unknown-slot",
            format!("{name} ({kind})"),
            "the compiled program exposes no such slot (the parameter may have \
             been compiled away)",
        )),
    }
}

/// A declarative patch step — the serializable/comparable form of the
/// [`FlowPatch`] setters, so scenario definitions can carry patches as
/// plain data (and deduplicate equal ones).
#[derive(Debug, Clone, PartialEq)]
pub enum PatchDirective {
    /// Set a [`SlotKind::Cost`] slot to a per-input-unit cost.
    SetCost {
        /// Slot name.
        slot: String,
        /// New cost per input unit (the op books `quantity ×` this).
        unit_cost: Money,
    },
    /// Multiply a [`SlotKind::Cost`] slot's current cost by a factor.
    ScaleCost {
        /// Slot name.
        slot: String,
        /// Multiplier applied to the op's current cost.
        factor: f64,
    },
    /// Set a [`SlotKind::Yield`] slot to a per-input-unit probability.
    SetYield {
        /// Slot name.
        slot: String,
        /// New per-input-unit success probability (the op folds in
        /// `p^quantity`).
        p: Probability,
    },
    /// Set a [`SlotKind::Coverage`] slot (test fault coverage).
    SetCoverage {
        /// Slot name.
        slot: String,
        /// New fault coverage.
        p: Probability,
    },
}

/// A mutable copy of a compiled program's op vector with named
/// parameter slots overwritten — see the crate docs for the sweep
/// pattern and the analytic-only caveat.
#[derive(Debug, Clone)]
pub struct FlowPatch {
    /// The base program: slot table, label names, region layout.
    program: Arc<RoutingProgram>,
    /// The private op copy the setters write into.
    ops: Vec<Op>,
    nre: Money,
    volume: u64,
    /// Every slot write so far, `(op, kind, name)` — the duplicate-write
    /// detector ([`FlowPatch::duplicate_slots`] and strict mode) reads
    /// this.
    touched: Vec<(u32, SlotKind, String)>,
    /// Strict mode: setters refuse to write a slot twice.
    strict: bool,
}

impl FlowPatch {
    /// The cost field of the op a [`SlotKind::Cost`] slot points at.
    fn cost_of(&mut self, op: u32) -> &mut f64 {
        match &mut self.ops[op as usize] {
            Op::Cost { cost, .. }
            | Op::Condemn { cost, .. }
            | Op::Step { cost, .. }
            | Op::TestScrap { cost, .. }
            | Op::TestRework { cost, .. } => cost,
            Op::SubLine { .. } => unreachable!("cost slot registered on a sub-line op"),
        }
    }

    /// Resolve `(name, kind)` to its unique op and log the write for
    /// duplicate detection. Zero matches and multiple matches
    /// (duplicate stage/part names are legal in a line) are both errors
    /// — silently patching the first duplicate would diverge from
    /// rebuilding the line. Writing the same slot twice is an error in
    /// strict mode ([`FlowPatch::deny_warnings`]) and a
    /// [`FlowPatch::lint`] warning otherwise: last-wins in a scenario
    /// definition almost always means two directives disagree.
    fn resolve(&mut self, name: &str, kind: SlotKind) -> Result<(u32, u32), FlowError> {
        let (op, qty) = self.program.resolve_slot(name, kind)?;
        let duplicate = self.touched.iter().any(|(o, k, _)| *o == op && *k == kind);
        if duplicate && self.strict {
            return Err(FlowError::DuplicatePatchSlot {
                slot: format!("{name} ({kind})"),
            });
        }
        self.touched.push((op, kind, name.to_owned()));
        Ok((op, qty))
    }

    /// Toggle strict mode: with `deny` set, writing the same slot twice
    /// returns [`FlowError::DuplicatePatchSlot`] instead of silently
    /// letting the last write win — the programmatic analogue of
    /// `ipass lint --deny-warnings`.
    pub fn deny_warnings(&mut self, deny: bool) -> &mut FlowPatch {
        self.strict = deny;
        self
    }

    /// Number of slot writes applied so far (every setter call,
    /// duplicates included) — the deterministic patch-application
    /// counter the observability plane aggregates into
    /// `RunStats::patch_writes`.
    pub fn writes(&self) -> u64 {
        self.touched.len() as u64
    }

    /// The slots written more than once so far, as `name (kind)` labels
    /// in first-rewrite order (deduplicated).
    pub fn duplicate_slots(&self) -> Vec<String> {
        let mut seen: Vec<(u32, SlotKind)> = Vec::new();
        let mut dupes: Vec<(u32, SlotKind)> = Vec::new();
        let mut labels = Vec::new();
        for (op, kind, name) in &self.touched {
            if seen.contains(&(*op, *kind)) {
                if !dupes.contains(&(*op, *kind)) {
                    dupes.push((*op, *kind));
                    labels.push(format!("{name} ({kind})"));
                }
            } else {
                seen.push((*op, *kind));
            }
        }
        labels
    }

    /// Verify and lint the *patched* op vector: the structural checks
    /// and lints of [`CompiledFlow::verify`] in patched mode (degenerate
    /// probabilities under the `set_yield` threshold convention are
    /// info-grade, not errors), plus a warning per slot written twice.
    pub fn lint(&self) -> Diagnostics {
        let mut diags = verify::verify_program(
            &self.program,
            &self.ops,
            VerifyMode::Patched,
            mc::DEFAULT_SUBASSEMBLY_RETRY_BUDGET,
        );
        for slot in self.duplicate_slots() {
            diags.push(Diagnostic::new(
                Severity::Warning,
                "duplicate-slot-write",
                slot,
                "slot written more than once; the last write silently won",
            ));
        }
        diags
    }

    /// Set a cost slot to `unit_cost` per input unit (the op books
    /// `quantity × unit_cost`; quantity is 1 for everything but
    /// multi-part attach inputs).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] when the program has no
    /// cost slot of that name (e.g. the step compiled away as a free,
    /// certain no-op).
    pub fn set_cost(&mut self, slot: &str, unit_cost: Money) -> Result<&mut FlowPatch, FlowError> {
        let (op, qty) = self.resolve(slot, SlotKind::Cost)?;
        let folded = qty as f64 * unit_cost.units();
        *self.cost_of(op) = folded;
        Ok(self)
    }

    /// Multiply a cost slot's current value by `factor`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] when the program has no
    /// cost slot of that name.
    pub fn scale_cost(&mut self, slot: &str, factor: f64) -> Result<&mut FlowPatch, FlowError> {
        let (op, _) = self.resolve(slot, SlotKind::Cost)?;
        *self.cost_of(op) *= factor;
        Ok(self)
    }

    /// Set a yield slot to `p` per input unit (the op folds in
    /// `p^quantity`).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] when the program has no
    /// yield slot of that name — in particular when the step's compiled
    /// yield was degenerate (certain or zero), which specialized the op
    /// into a draw-free form with no live probability to overwrite.
    pub fn set_yield(&mut self, slot: &str, p: Probability) -> Result<&mut FlowPatch, FlowError> {
        let (op, qty) = self.resolve(slot, SlotKind::Yield)?;
        let folded = if qty > 1 {
            p.value().powf(qty as f64)
        } else {
            p.value()
        };
        let Op::Step {
            p_good, threshold, ..
        } = &mut self.ops[op as usize]
        else {
            unreachable!("yield slot registered on a non-step op");
        };
        *p_good = folded;
        // Kept structurally valid for the analytic walker; patched
        // programs are never handed to the Monte Carlo kernel (see the
        // module docs), so a degenerate patched probability needs no
        // op-kind re-specialization.
        *threshold = if folded > 0.0 && folded < 1.0 {
            SimRng::threshold(folded)
        } else if folded >= 1.0 {
            u64::MAX
        } else {
            0
        };
        Ok(self)
    }

    /// Set a test stage's fault coverage.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] when the program has no
    /// test stage of that name.
    pub fn set_coverage(
        &mut self,
        slot: &str,
        p: Probability,
    ) -> Result<&mut FlowPatch, FlowError> {
        let (op, _) = self.resolve(slot, SlotKind::Coverage)?;
        match &mut self.ops[op as usize] {
            Op::TestScrap { coverage, .. } | Op::TestRework { coverage, .. } => {
                *coverage = p.value();
            }
            _ => unreachable!("coverage slot registered on a non-test op"),
        }
        Ok(self)
    }

    /// Apply one declarative [`PatchDirective`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] when the directive names
    /// a slot the program does not expose.
    pub fn apply(&mut self, directive: &PatchDirective) -> Result<&mut FlowPatch, FlowError> {
        match directive {
            PatchDirective::SetCost { slot, unit_cost } => self.set_cost(slot, *unit_cost),
            PatchDirective::ScaleCost { slot, factor } => self.scale_cost(slot, *factor),
            PatchDirective::SetYield { slot, p } => self.set_yield(slot, *p),
            PatchDirective::SetCoverage { slot, p } => self.set_coverage(slot, *p),
        }
    }

    /// Override the NRE charged to this evaluation.
    pub fn set_nre(&mut self, nre: Money) -> &mut FlowPatch {
        self.nre = nre;
        self
    }

    /// Override the amortization volume (minimum 1).
    pub fn set_volume(&mut self, volume: u64) -> &mut FlowPatch {
        self.volume = volume.max(1);
        self
    }

    /// Restore every slot to its compiled value and clear the write log
    /// (reuse one allocation across scenario points).
    pub fn reset(&mut self) -> &mut FlowPatch {
        self.ops.clear();
        self.ops.extend_from_slice(self.program.ops());
        self.touched.clear();
        self
    }

    /// Evaluate the patched program with the analytic cohort engine.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NothingShipped`] when the patched flow
    /// ships nothing.
    pub fn analyze(&self) -> Result<CostReport, FlowError> {
        let (entry, len) = self.program.top_region();
        analytic::analyze_ops(
            &self.ops,
            entry,
            len,
            self.program.names(),
            self.program.line_name(),
            self.nre,
            self.volume,
        )
    }

    /// Like [`CompiledFlow::analyze_duals`] but on the patched op
    /// vector: one dual walk at the *patched* operating point, with
    /// the primal report bit-identical to [`FlowPatch::analyze`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownPatchSlot`] /
    /// [`FlowError::AmbiguousPatchSlot`] for unresolvable direction
    /// components and [`FlowError::NothingShipped`] when the patched
    /// flow ships nothing.
    pub fn analyze_duals(&self, directions: &[DualDirection]) -> Result<DualReport, FlowError> {
        let folded = fold_directions(&self.program, &self.ops, directions)?;
        let (entry, len) = self.program.top_region();
        analytic::analyze_ops_duals(
            &self.ops,
            entry,
            len,
            self.program.names(),
            self.program.line_name(),
            self.nre,
            self.volume,
            &folded,
        )
    }
}

/// Translate per-input-unit [`DualDirection`]s into per-op tangent
/// seeds on the *folded* op parameters — the inverse of the folding the
/// [`FlowPatch`] setters perform, as a chain-rule weight:
///
/// - cost slots fold `quantity × unit_cost`, so ∂folded/∂unit = `qty`;
/// - yield slots fold `p_unit^quantity`, so ∂folded/∂p_unit =
///   `qty · p_unit^(qty-1) = qty · p_good^((qty-1)/qty)` evaluated at
///   the op's *current* folded `p_good` (zero when a multi-unit slot
///   sits at `p_good = 0`, matching the one-sided derivative);
/// - coverage slots are stored unfolded, weight passes through.
///
/// `ops` is passed separately from `program` so patched op vectors
/// seed at their patched operating point.
fn fold_directions<'d>(
    program: &RoutingProgram,
    ops: &[Op],
    directions: impl IntoIterator<Item = &'d DualDirection>,
) -> Result<FoldedDirections, FlowError> {
    let mut folded = FoldedDirections::default();
    for dir in directions {
        for (name, kind, w) in &dir.parts {
            let (op, qty) = program.resolve_slot(name, *kind)?;
            let weight = match kind {
                SlotKind::Cost => w * qty as f64,
                SlotKind::Coverage => *w,
                SlotKind::Yield if qty <= 1 => *w,
                SlotKind::Yield => {
                    let Op::Step { p_good, .. } = ops[op as usize] else {
                        unreachable!("yield slot registered on a non-step op");
                    };
                    let q = qty as f64;
                    if p_good <= 0.0 {
                        0.0
                    } else {
                        w * q * p_good.powf((q - 1.0) / q)
                    }
                }
            };
            folded.seeds.push(FoldedSeed {
                op,
                kind: *kind,
                weight,
            });
        }
        folded.ends.push(folded.seeds.len() as u32);
    }
    Ok(folded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostCategory, StepCost};
    use crate::line::Line;
    use crate::part::Part;
    use crate::stage::{Attach, Process, Test};
    use crate::yield_model::YieldModel;
    use crate::Flow;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn flow(part_cost: f64, process_yield: f64) -> Flow {
        let line = Line::builder(
            "t",
            Part::new("c", CostCategory::Substrate)
                .with_cost(StepCost::fixed(Money::new(part_cost))),
        )
        .process(Process::new("p").with_yield(YieldModel::flat(p(process_yield))))
        .attach(
            Attach::new("a").input(
                Part::new("die", CostCategory::Chip)
                    .with_cost(StepCost::fixed(Money::new(5.0)))
                    .with_incoming_yield(YieldModel::flat(p(0.95))),
                2,
            ),
        )
        .test(Test::new("ft").with_coverage(p(0.99)))
        .build()
        .unwrap();
        Flow::new(line)
    }

    #[test]
    fn patched_program_matches_rebuilt_line() {
        // Patching (carrier cost, process yield, part cost, coverage)
        // must equal rebuilding the line with those values.
        let base = flow(10.0, 0.9).compiled().unwrap();
        let mut patch = base.patch();
        patch
            .set_cost("c", Money::new(12.0))
            .unwrap()
            .set_yield("p", p(0.8))
            .unwrap()
            .set_cost("a/die", Money::new(6.0))
            .unwrap()
            .set_yield("a/die", p(0.9))
            .unwrap()
            .set_coverage("ft", p(0.95))
            .unwrap();
        let patched = patch.analyze().unwrap();

        let rebuilt_line = Line::builder(
            "t",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(12.0))),
        )
        .process(Process::new("p").with_yield(YieldModel::flat(p(0.8))))
        .attach(
            Attach::new("a").input(
                Part::new("die", CostCategory::Chip)
                    .with_cost(StepCost::fixed(Money::new(6.0)))
                    .with_incoming_yield(YieldModel::flat(p(0.9))),
                2,
            ),
        )
        .test(Test::new("ft").with_coverage(p(0.95)))
        .build()
        .unwrap();
        let rebuilt = Flow::new(rebuilt_line).analyze().unwrap();
        assert_eq!(patched.shipped_fraction(), rebuilt.shipped_fraction());
        assert_eq!(patched.total_spend(), rebuilt.total_spend());
        assert_eq!(
            patched.final_cost_per_shipped(),
            rebuilt.final_cost_per_shipped()
        );
    }

    #[test]
    fn reset_restores_the_compiled_values() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let unpatched = base.analyze().unwrap();
        let mut patch = base.patch();
        patch.scale_cost("c", 3.0).unwrap();
        assert_ne!(
            patch.analyze().unwrap().total_spend(),
            unpatched.total_spend()
        );
        patch.reset();
        assert_eq!(patch.analyze().unwrap(), unpatched);
    }

    #[test]
    fn unknown_slot_is_reported() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let mut patch = base.patch();
        let err = patch.set_cost("ghost", Money::new(1.0)).unwrap_err();
        assert!(matches!(err, FlowError::UnknownPatchSlot { .. }));
        assert!(err.to_string().contains("ghost"));
        // The attach op is free and certain — compiled away, hence no
        // yield slot to patch.
        let err = patch.set_yield("a", p(0.5)).unwrap_err();
        assert!(matches!(err, FlowError::UnknownPatchSlot { .. }));
    }

    #[test]
    fn duplicate_stage_names_are_ambiguous_not_shadowed() {
        // Line validation allows two stages with the same name; a
        // patch naming them must error instead of silently updating
        // only the first.
        let line = Line::builder(
            "dup",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(1.0))),
        )
        .process(
            Process::new("anneal")
                .with_cost(StepCost::fixed(Money::new(2.0)))
                .with_yield(YieldModel::flat(p(0.9))),
        )
        .process(
            Process::new("anneal")
                .with_cost(StepCost::fixed(Money::new(3.0)))
                .with_yield(YieldModel::flat(p(0.95))),
        )
        .build()
        .unwrap();
        let base = Flow::new(line).compiled().unwrap();
        let mut patch = base.patch();
        let err = patch.set_cost("anneal", Money::new(9.0)).unwrap_err();
        assert!(matches!(err, FlowError::AmbiguousPatchSlot { .. }));
        assert!(err.to_string().contains("anneal"));
        // The unique carrier slot still resolves.
        assert!(patch.set_cost("c", Money::new(2.0)).is_ok());
    }

    #[test]
    fn duplicate_slot_writes_are_detected_not_silently_last_wins() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        // Default mode: both writes land (last wins) but the patch
        // knows, and lint() surfaces it as a warning.
        let mut patch = base.patch();
        patch.set_cost("c", Money::new(11.0)).unwrap();
        patch.set_cost("c", Money::new(12.0)).unwrap();
        assert_eq!(patch.duplicate_slots(), vec!["c (cost)".to_owned()]);
        let diags = patch.lint();
        assert!(diags
            .iter()
            .any(|d| d.code == "duplicate-slot-write" && d.path == "c (cost)"));
        assert_eq!(diags.deny_warnings_failures(), 1, "{diags}");
        // Same slot name, different kind: not a duplicate.
        let mut patch = base.patch();
        patch.set_cost("a/die", Money::new(6.0)).unwrap();
        patch.set_yield("a/die", p(0.9)).unwrap();
        assert!(patch.duplicate_slots().is_empty());
        // Strict mode refuses the second write outright.
        let mut strict = base.patch();
        strict.deny_warnings(true);
        strict
            .apply(&PatchDirective::SetCost {
                slot: "c".into(),
                unit_cost: Money::new(11.0),
            })
            .unwrap();
        let err = strict
            .apply(&PatchDirective::ScaleCost {
                slot: "c".into(),
                factor: 2.0,
            })
            .unwrap_err();
        assert!(matches!(err, FlowError::DuplicatePatchSlot { .. }));
        assert!(err.to_string().contains("c (cost)"));
        // reset() clears the write log with the values.
        strict.reset();
        assert!(strict.scale_cost("c", 2.0).is_ok());
    }

    #[test]
    fn batch_lints_catch_unknown_ambiguous_and_duplicate_references() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let directives = [
            PatchDirective::SetCost {
                slot: "c".into(),
                unit_cost: Money::new(11.0),
            },
            PatchDirective::ScaleCost {
                slot: "c".into(),
                factor: 2.0,
            },
            PatchDirective::SetYield {
                slot: "ghost".into(),
                p: p(0.5),
            },
        ];
        let diags = base.lint_directives(&directives);
        assert!(diags.iter().any(|d| d.code == "duplicate-slot-write"));
        assert!(diags
            .iter()
            .any(|d| d.code == "unknown-slot" && d.path.contains("ghost")));
        assert!(diags.has_errors());

        let dirs = [
            DualDirection::new()
                .with("c", SlotKind::Cost, 1.0)
                .with("c", SlotKind::Cost, 2.0),
            DualDirection::cost("ghost"),
        ];
        let diags = base.lint_directions(&dirs);
        assert!(diags.iter().any(|d| d.code == "duplicate-slot-write"));
        assert!(diags.iter().any(|d| d.code == "unknown-slot"));
        // Distinct directions may legitimately touch the same slot.
        let ok = base.lint_directions(&[DualDirection::cost("c"), DualDirection::cost("c")]);
        assert_eq!(ok.deny_warnings_failures(), 0, "{ok}");
    }

    #[test]
    fn patched_lint_runs_in_patched_mode() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let mut patch = base.patch();
        patch.set_yield("p", Probability::ONE).unwrap();
        let diags = patch.lint();
        // A degenerate patched probability is info-grade, not an error.
        assert!(!diags.has_errors(), "{diags}");
        assert!(diags.iter().any(|d| d.code == "degenerate-patched-step"));
    }

    #[test]
    fn directives_match_setters() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let mut by_setter = base.patch();
        by_setter.scale_cost("a/die", 1.5).unwrap();
        let mut by_directive = base.patch();
        by_directive
            .apply(&PatchDirective::ScaleCost {
                slot: "a/die".into(),
                factor: 1.5,
            })
            .unwrap();
        assert_eq!(
            by_setter.analyze().unwrap(),
            by_directive.analyze().unwrap()
        );
    }

    #[test]
    fn slots_enumerate_the_patchable_surface() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let slots: Vec<(String, SlotKind)> = base.slots().map(|(n, k)| (n.to_owned(), k)).collect();
        assert!(slots.contains(&("c".into(), SlotKind::Cost)));
        assert!(slots.contains(&("p".into(), SlotKind::Yield)));
        assert!(slots.contains(&("a/die".into(), SlotKind::Cost)));
        assert!(slots.contains(&("ft".into(), SlotKind::Coverage)));
    }

    #[test]
    fn degenerate_patched_yield_is_analytically_sound() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let mut patch = base.patch();
        patch.set_yield("p", Probability::ONE).unwrap();
        let certain = patch.analyze().unwrap();
        assert!(certain.shipped_fraction() > base.analyze().unwrap().shipped_fraction());
        patch.reset();
        patch.set_yield("p", Probability::ZERO).unwrap();
        // Everything defective and the test catches 99 %: almost
        // nothing ships, but the walker stays well-defined.
        let doomed = patch.analyze().unwrap();
        assert!(doomed.shipped_fraction() < 0.05);
    }

    /// Central finite difference of `metric` under `apply(x)` patching.
    fn central_fd(
        base: &CompiledFlow,
        x0: f64,
        h: f64,
        apply: impl Fn(&mut FlowPatch, f64),
        metric: impl Fn(&CostReport) -> f64,
    ) -> f64 {
        let mut lo = base.patch();
        apply(&mut lo, x0 - h);
        let mut hi = base.patch();
        apply(&mut hi, x0 + h);
        (metric(&hi.analyze().unwrap()) - metric(&lo.analyze().unwrap())) / (2.0 * h)
    }

    #[test]
    fn dual_primal_is_bit_identical_to_analyze() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let dirs = [
            DualDirection::cost("c"),
            DualDirection::cost("a/die"),
            DualDirection::step_yield("p"),
            DualDirection::step_yield("a/die"),
            DualDirection::coverage("ft"),
        ];
        let dual = base.analyze_duals(&dirs).unwrap();
        assert_eq!(dual.report, base.analyze().unwrap());
        assert_eq!(dual.gradients.len(), dirs.len());
    }

    #[test]
    fn dual_gradients_match_finite_differences() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let dual = base
            .analyze_duals(&[
                DualDirection::cost("c"),
                DualDirection::cost("a/die"),
                DualDirection::step_yield("p"),
                DualDirection::step_yield("a/die"),
                DualDirection::coverage("ft"),
            ])
            .unwrap();
        let h = 1e-6;
        type Setter = Box<dyn Fn(&mut FlowPatch, f64)>;
        let cases: [(f64, Setter); 5] = [
            (
                10.0,
                Box::new(|p, x| {
                    p.set_cost("c", Money::new(x)).unwrap();
                }),
            ),
            (
                5.0,
                Box::new(|p, x| {
                    p.set_cost("a/die", Money::new(x)).unwrap();
                }),
            ),
            (
                0.9,
                Box::new(|pt, x| {
                    pt.set_yield("p", p(x)).unwrap();
                }),
            ),
            (
                0.95,
                Box::new(|pt, x| {
                    pt.set_yield("a/die", p(x)).unwrap();
                }),
            ),
            (
                0.99,
                Box::new(|pt, x| {
                    pt.set_coverage("ft", p(x)).unwrap();
                }),
            ),
        ];
        for (g, (x0, apply)) in dual.gradients.iter().zip(&cases) {
            let fd = central_fd(&base, *x0, h, apply, |r| r.final_cost_per_shipped().units());
            assert!(
                (g.final_cost_per_shipped - fd).abs() <= 1e-6 * fd.abs().max(1.0),
                "dual {} vs fd {fd}",
                g.final_cost_per_shipped,
            );
            let fd_ship = central_fd(&base, *x0, h, apply, CostReport::shipped_fraction);
            assert!((g.shipped_fraction - fd_ship).abs() <= 1e-6 * fd_ship.abs().max(1.0));
        }
        // Cost directions are exact-linear: extrapolating the carrier
        // cost by a *finite* step must land exactly on the re-analyzed
        // value (cohort masses don't depend on costs).
        let g = dual.gradients[0].final_cost_per_shipped;
        let base_cost = dual.report.final_cost_per_shipped().units();
        let mut jumped = base.patch();
        jumped.set_cost("c", Money::new(17.5)).unwrap();
        let expect = jumped.analyze().unwrap().final_cost_per_shipped().units();
        assert!((base_cost + g * 7.5 - expect).abs() <= 1e-12 * expect.abs());
    }

    #[test]
    fn multi_slot_direction_sums_component_derivatives() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        // d/ds of scaling *both* cost slots by (1+s) at s=0: weight each
        // slot by its current per-unit cost.
        let combined =
            DualDirection::new()
                .with("c", SlotKind::Cost, 10.0)
                .with("a/die", SlotKind::Cost, 5.0);
        let dual = base
            .analyze_duals(&[
                combined,
                DualDirection::cost("c"),
                DualDirection::cost("a/die"),
            ])
            .unwrap();
        let lhs = dual.gradients[0].final_cost_per_shipped;
        let rhs = 10.0 * dual.gradients[1].final_cost_per_shipped
            + 5.0 * dual.gradients[2].final_cost_per_shipped;
        assert!((lhs - rhs).abs() <= 1e-12 * rhs.abs());
    }

    #[test]
    fn dual_directions_resolve_like_the_setters() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let err = base
            .analyze_duals(&[DualDirection::cost("ghost")])
            .unwrap_err();
        assert!(matches!(err, FlowError::UnknownPatchSlot { .. }));
        // No-direction call degenerates to a plain analyze.
        let empty = base.analyze_duals(&[]).unwrap();
        assert_eq!(empty.report, base.analyze().unwrap());
        assert!(empty.gradients.is_empty());
    }

    #[test]
    fn patched_duals_seed_at_the_patched_point() {
        // After patching the step yield, the dual derivative must be
        // taken at the *patched* operating point, not the compiled one.
        let base = flow(10.0, 0.9).compiled().unwrap();
        let mut patch = base.patch();
        patch.set_yield("p", p(0.7)).unwrap();
        let dual = patch
            .analyze_duals(&[DualDirection::step_yield("p")])
            .unwrap();
        assert_eq!(dual.report, patch.analyze().unwrap());
        let h = 1e-6;
        let fd = central_fd(
            &base,
            0.7,
            h,
            |pt, x| {
                pt.set_yield("p", p(x)).unwrap();
            },
            |r| r.final_cost_per_shipped().units(),
        );
        let g = dual.gradients[0].final_cost_per_shipped;
        assert!((g - fd).abs() <= 1e-6 * fd.abs().max(1.0), "{g} vs {fd}");
    }

    #[test]
    fn more_than_max_width_directions_chunk_correctly() {
        // 20 directions forces two chunks (16 + 4); lane bookkeeping
        // must not bleed across chunk boundaries.
        let base = flow(10.0, 0.9).compiled().unwrap();
        let one = base.analyze_duals(&[DualDirection::cost("c")]).unwrap();
        let many: Vec<DualDirection> = (0..20).map(|_| DualDirection::cost("c")).collect();
        let wide = base.analyze_duals(&many).unwrap();
        assert_eq!(wide.report, one.report);
        assert_eq!(wide.gradients.len(), 20);
        for g in &wide.gradients {
            assert_eq!(*g, one.gradients[0]);
        }
    }

    #[test]
    fn compiled_flow_engines_match_flow_engines() {
        let f = flow(10.0, 0.9);
        let compiled = f.compiled().unwrap();
        assert_eq!(compiled.name(), "t");
        assert_eq!(compiled.analyze().unwrap(), f.analyze().unwrap());
        let opts = SimOptions::new(5_000).with_seed(11);
        assert_eq!(
            compiled.simulate(&opts).unwrap(),
            f.simulate(&opts).unwrap()
        );
    }
}
