//! The compiled routing program: a validated [`Line`] lowered once per
//! simulation into a flat, cache-friendly op sequence the Monte Carlo
//! kernel executes in a tight loop.
//!
//! The object-graph interpreter (kept in [`crate::mc`] as the
//! bit-exactness oracle) re-derives every invariant quantity — step
//! costs via [`StepCost::total`](crate::StepCost::total), yield
//! probabilities via [`YieldModel::value`](crate::YieldModel::value),
//! `p^q` for multi-part attaches — on **every** routed unit, which puts
//! `powf`/`powi` and nested enum matching on the hot path of each of
//! the 100 000+ units of a run. Compilation hoists all of that out:
//! every op carries its precomputed floats, and nested sub-lines are
//! flattened into the same op vector as contiguous regions addressed by
//! `(entry, len)` ranges.
//!
//! # The draw-order contract
//!
//! Compilation must not change *which* random draws a unit consumes or
//! *in which order* — otherwise seeded results would diverge from the
//! interpreter and from every committed golden value. Three rules keep
//! the kernel bit-identical:
//!
//! 1. Ops are emitted in exactly the interpreter's visit order
//!    (carrier, then stages in line order, attach inputs in declaration
//!    order, sub-line units depth-first).
//! 2. Conditional draws keep their guards: a yield draw is skipped for
//!    an already-defective unit, a coverage draw happens only for a
//!    defective unit — precisely the short-circuit structure of the
//!    interpreter.
//! 3. An op may be elided only when it is a *provable* no-op under
//!    those rules: `p ≥ 1` Bernoulli draws consume no randomness (see
//!    [`SimRng::bernoulli`]) and a zero cost adds nothing, so a step
//!    with zero cost and certain yield can vanish without shifting any
//!    stream.
//!
//! All precomputed floats are produced by the *same* expressions the
//! interpreter evaluates per unit (`q * cost.total().units()`,
//! `p.powf(q)`, …), so every booked amount is bit-identical too.

use crate::cost::CostCategory;
use crate::error::FlowError;
use crate::labels::{self, InputLabels, LineLabels, StageLabels};
use crate::line::Line;
use crate::part::AttachInput;
use crate::stage::{FailAction, Stage};
use ipass_obs::EngineCounters;
use ipass_sim::SimRng;
use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasherDefault;

pub(crate) const NCAT: usize = CostCategory::COUNT;

pub(crate) const TEST_CAT: usize = 5; // CostCategory::Test.index()
pub(crate) const OTHER_CAT: usize = 6; // CostCategory::Other.index()

/// One instruction of the routing program. All monetary amounts are
/// plain `f64`s and all hot-path probabilities are integer draw
/// thresholds (see [`SimRng::threshold`]), precomputed at compile time.
///
/// Degenerate yields specialize at compile time instead of branching
/// per draw: a certain step compiles to [`Op::Cost`] (no draw — exactly
/// what [`SimRng::bernoulli`] consumes for `p ≥ 1`) and an
/// always-failing step to [`Op::Condemn`] (`p ≤ 0` consumes no draw
/// either). [`Op::Step`] therefore only ever carries a probability
/// strictly inside `(0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Op {
    /// Book `cost` under `cat`; certain yield — no draw, no defect.
    Cost { cost: f64, cat: CostCategory },
    /// Book `cost` under `cat`; zero yield — no draw, the unit is
    /// deterministically defective (attributed to `label` unless it
    /// already was).
    Condemn {
        cost: f64,
        cat: CostCategory,
        label: u32,
    },
    /// Book `cost` under category `cat`, then — unless the unit is
    /// already defective — draw against `threshold`; a failed draw
    /// marks the unit defective and attributes it to `label`. Covers
    /// the carrier start, process stages, the attach operation itself
    /// and multi-part attach inputs (where `cost = q·part_cost` and
    /// `p = p_part^q` are folded in). `p_good` is the raw probability
    /// the threshold was derived from; the Monte Carlo kernel never
    /// reads it, but the analytic cohort walker propagates expected
    /// mass with it.
    Step {
        cost: f64,
        cat: CostCategory,
        threshold: u64,
        p_good: f64,
        label: u32,
    },
    /// Consume `qty` passing units of the nested line compiled at
    /// `ops[entry..entry + len]`; each attempt that fails inside the
    /// sub-line scraps there and is retried against the budget.
    SubLine {
        qty: u32,
        entry: u32,
        len: u32,
        /// Index into [`RoutingProgram::line_names`] for starvation
        /// errors.
        name: u32,
    },
    /// Test stage scrapping detected failures.
    TestScrap { cost: f64, coverage: f64 },
    /// Test stage routing detected failures through a bounded rework
    /// loop (rework cost books under `Other`, the re-test under `Test`).
    TestRework {
        cost: f64,
        coverage: f64,
        rework_cost: f64,
        success: f64,
        max_attempts: u32,
    },
}

impl Op {
    /// Slot of this op kind in [`EngineCounters::ops`] (the
    /// `ipass_obs::OP_*` indices).
    #[inline]
    pub(crate) fn kind_index(&self) -> usize {
        match self {
            Op::Cost { .. } => ipass_obs::OP_COST,
            Op::Condemn { .. } => ipass_obs::OP_CONDEMN,
            Op::Step { .. } => ipass_obs::OP_STEP,
            Op::SubLine { .. } => ipass_obs::OP_SUB_LINE,
            Op::TestScrap { .. } => ipass_obs::OP_TEST_SCRAP,
            Op::TestRework { .. } => ipass_obs::OP_TEST_REWORK,
        }
    }
}

/// What a patch slot lets you overwrite on a compiled program.
///
/// Slots are registered during compilation for every op that still
/// carries the corresponding parameter — a step compiled away as a
/// provable no-op, or whose uncertainty was specialized out
/// (the `Cost`/`Condemn` ops), exposes no yield slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// The cost an op books (per input unit for part inputs; the folded
    /// op cost is `quantity × unit cost`).
    Cost,
    /// The success probability of a step (per input unit for part
    /// inputs; the folded probability is `p^quantity`).
    Yield,
    /// The fault coverage of a test stage.
    Coverage,
}

impl fmt::Display for SlotKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SlotKind::Cost => "cost",
            SlotKind::Yield => "yield",
            SlotKind::Coverage => "coverage",
        })
    }
}

/// One patchable parameter of a compiled program: `(name, kind)` →
/// op index. Names follow the defect-label path convention
/// (`"wire bonding"`, `"chip assembly/RF chip"`, `"subassembly/fab"`),
/// without the ` (incoming)` decoration.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PatchSlot {
    pub(crate) name: String,
    pub(crate) kind: SlotKind,
    /// Index into `RoutingProgram::ops`.
    pub(crate) op: u32,
    /// Input quantity folded into the op (1 for everything but
    /// multi-part attach inputs).
    pub(crate) qty: u32,
}

/// Per-unit routing state accumulated by the kernel (the compiled
/// equivalent of the interpreter's `Unit`).
#[derive(Debug, Clone)]
pub(crate) struct UnitState {
    pub(crate) cost: f64,
    pub(crate) by_cat: [f64; NCAT],
    pub(crate) defective: bool,
}

impl UnitState {
    #[inline]
    pub(crate) fn new() -> UnitState {
        UnitState {
            cost: 0.0,
            by_cat: [0.0; NCAT],
            defective: false,
        }
    }
}

/// What happened to one routed unit. The unit's cost state lives in the
/// caller-provided [`UnitState`]; scrapped units are already booked
/// into the totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Routed {
    Shipped,
    Scrapped,
}

/// Accumulator shared by the kernel and the interpreter oracle.
#[derive(Debug, Clone)]
pub(crate) struct Totals {
    pub(crate) attempted: u64,
    pub(crate) shipped: f64,
    pub(crate) good_shipped: f64,
    pub(crate) embodied: f64,
    pub(crate) embodied_by_cat: [f64; NCAT],
    pub(crate) scrap_spend: f64,
    pub(crate) scrap_by_cat: [f64; NCAT],
    pub(crate) scrapped: f64,
    pub(crate) defects: Vec<f64>,
    pub(crate) rework_attempts: u64,
    pub(crate) sub_units_built: u64,
    /// Whether deterministic probe counting is on for this run. Rides
    /// the accumulator so every counting site can check it without an
    /// extra parameter; false (the default) compiles the probe blocks
    /// out of the hot path.
    pub(crate) probe: bool,
    /// Probe counters (draws, ops by kind, lane occupancy). Folded by
    /// [`Totals::merge`] exactly like the results, so they inherit the
    /// executor's bit-identity across thread counts.
    pub(crate) obs: EngineCounters,
}

impl Totals {
    pub(crate) fn new(n_labels: usize) -> Totals {
        Totals {
            attempted: 0,
            shipped: 0.0,
            good_shipped: 0.0,
            embodied: 0.0,
            embodied_by_cat: [0.0; NCAT],
            scrap_spend: 0.0,
            scrap_by_cat: [0.0; NCAT],
            scrapped: 0.0,
            defects: vec![0.0; n_labels],
            rework_attempts: 0,
            sub_units_built: 0,
            probe: false,
            obs: EngineCounters::new(),
        }
    }

    /// Book a scrapped unit's sunk cost.
    pub(crate) fn scrap(&mut self, cost: f64, by_cat: &[f64; NCAT]) {
        self.scrapped += 1.0;
        self.scrap_spend += cost;
        for (a, b) in self.scrap_by_cat.iter_mut().zip(by_cat.iter()) {
            *a += *b;
        }
    }

    /// Book a shipped unit's embodied cost.
    pub(crate) fn ship(&mut self, cost: f64, by_cat: &[f64; NCAT], defective: bool) {
        self.shipped += 1.0;
        if !defective {
            self.good_shipped += 1.0;
        }
        self.embodied += cost;
        for (a, b) in self.embodied_by_cat.iter_mut().zip(by_cat.iter()) {
            *a += *b;
        }
    }

    /// [`Totals::scrap`] restricted to the `active` category indices.
    /// Exactly equivalent whenever every skipped category is `+0.0` in
    /// `by_cat` (the lane kernel's prefix guarantees it): `x += 0.0` is
    /// an exact no-op for every non-`-0.0` accumulator, and these
    /// accumulators never become `-0.0`.
    #[inline]
    pub(crate) fn scrap_active(&mut self, cost: f64, by_cat: &[f64; NCAT], active: &[u8]) {
        self.scrapped += 1.0;
        self.scrap_spend += cost;
        for &k in active {
            self.scrap_by_cat[k as usize] += by_cat[k as usize];
        }
    }

    /// [`Totals::ship`] restricted to the `active` category indices —
    /// see [`Totals::scrap_active`] for the exactness argument.
    #[inline]
    pub(crate) fn ship_active(
        &mut self,
        cost: f64,
        by_cat: &[f64; NCAT],
        defective: bool,
        active: &[u8],
    ) {
        self.shipped += 1.0;
        if !defective {
            self.good_shipped += 1.0;
        }
        self.embodied += cost;
        for &k in active {
            self.embodied_by_cat[k as usize] += by_cat[k as usize];
        }
    }

    pub(crate) fn merge(&mut self, other: &Totals) {
        self.attempted += other.attempted;
        self.shipped += other.shipped;
        self.good_shipped += other.good_shipped;
        self.embodied += other.embodied;
        self.scrap_spend += other.scrap_spend;
        self.scrapped += other.scrapped;
        self.rework_attempts += other.rework_attempts;
        self.sub_units_built += other.sub_units_built;
        self.obs.merge(&other.obs);
        for (a, b) in self
            .embodied_by_cat
            .iter_mut()
            .zip(other.embodied_by_cat.iter())
        {
            *a += *b;
        }
        for (a, b) in self.scrap_by_cat.iter_mut().zip(other.scrap_by_cat.iter()) {
            *a += *b;
        }
        for (a, b) in self.defects.iter_mut().zip(other.defects.iter()) {
            *a += *b;
        }
    }
}

/// A [`Line`] compiled into a flat routing program.
///
/// Compile once per simulation (or cache on the [`Flow`](crate::Flow))
/// and route as many units as you like; the program is immutable and
/// `Sync`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RoutingProgram {
    /// Field visibility is `pub(crate)` (not accessor-only) so the
    /// verifier's mutation corpus can corrupt programs in place.
    pub(crate) ops: Vec<Op>,
    /// The top line's contiguous region.
    pub(crate) entry: u32,
    pub(crate) len: u32,
    /// Defect-source labels, in [`labels::index_line`] order — shared
    /// with the analytic engine's pareto.
    names: Vec<String>,
    /// Nested line names, for starvation errors.
    line_names: Vec<String>,
    /// The top line's name (reports, `NothingShipped`).
    line_name: String,
    /// No [`Op::SubLine`] anywhere: the kernel may take the
    /// recursion-free fast path.
    pub(crate) flat: bool,
    /// Patchable parameters, in emission order (see [`PatchSlot`]).
    pub(crate) slots: Vec<PatchSlot>,
    /// Pre-resolved name → per-kind slot lookup, including build-time
    /// ambiguity marks, so [`RoutingProgram::resolve_slot`] is one hash
    /// probe — a dual direction resolves every part it names, and a
    /// K-wide tornado resolves K of them per evaluation.
    slot_lookup: HashMap<String, SlotEntry, BuildHasherDefault<FnvHasher>>,
}

/// Resolution outcomes for one slot name, indexed by [`SlotKind`]
/// discriminant.
#[derive(Debug, Clone, Default, PartialEq)]
struct SlotEntry {
    by_kind: [Option<SlotTarget>; 3],
}

/// What a `(name, kind)` pair resolves to, decided at compile time.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SlotTarget {
    /// Exactly one registered slot.
    Unique { op: u32, qty: u32 },
    /// Duplicate stage/part names (legal in a line) — resolution must
    /// error rather than silently pick one.
    Ambiguous,
}

/// FNV-1a: slot names are short, so a byte-at-a-time multiply-xor beats
/// SipHash's finalization overhead; resolution is a hot per-evaluation
/// path for dual directions, not a DoS surface.
#[derive(Debug)]
pub(crate) struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl RoutingProgram {
    /// Compile a **validated** line (call [`Line::validate`] first; the
    /// compiler trusts the structural invariants it establishes).
    pub(crate) fn compile(line: &Line) -> RoutingProgram {
        let mut names = Vec::new();
        let line_labels = labels::index_line(line, "", &mut names);
        let mut ops = Vec::new();
        let mut line_names = Vec::new();
        let mut slots = Vec::new();
        let (entry, len) = compile_line(
            line,
            &line_labels,
            "",
            &mut ops,
            &mut line_names,
            &mut slots,
        );
        let flat = !ops.iter().any(|op| matches!(op, Op::SubLine { .. }));
        let mut slot_lookup: HashMap<String, SlotEntry, BuildHasherDefault<FnvHasher>> =
            HashMap::with_capacity_and_hasher(slots.len(), BuildHasherDefault::default());
        for s in &slots {
            let target =
                &mut slot_lookup.entry(s.name.clone()).or_default().by_kind[s.kind as usize];
            *target = Some(match target {
                None => SlotTarget::Unique {
                    op: s.op,
                    qty: s.qty,
                },
                Some(_) => SlotTarget::Ambiguous,
            });
        }
        RoutingProgram {
            ops,
            entry,
            len,
            names,
            line_names,
            line_name: line.name().to_owned(),
            flat,
            slots,
            slot_lookup,
        }
    }

    /// Defect-source labels, aligned with `Totals::defects`.
    pub(crate) fn names(&self) -> &[String] {
        &self.names
    }

    /// The top line's name.
    pub(crate) fn line_name(&self) -> &str {
        &self.line_name
    }

    /// Nested line names ([`Op::SubLine::name`] indexes this).
    pub(crate) fn line_names(&self) -> &[String] {
        &self.line_names
    }

    /// The flat op vector (the analytic walker and patcher read it).
    pub(crate) fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The top region's `(entry, len)`.
    pub(crate) fn top_region(&self) -> (u32, u32) {
        (self.entry, self.len)
    }

    /// Whether the program contains no [`Op::SubLine`] anywhere — the
    /// precondition for the batched lane kernel (and the recursion-free
    /// scalar fast path).
    pub(crate) fn flat(&self) -> bool {
        self.flat
    }

    /// Patchable parameters, in emission order.
    pub(crate) fn slots(&self) -> &[PatchSlot] {
        &self.slots
    }

    /// Resolve `(name, kind)` to its unique `(op, qty)`. Zero matches
    /// and multiple matches (duplicate stage/part names are legal in a
    /// line) are both errors — silently using the first duplicate would
    /// diverge from rebuilding the line.
    pub(crate) fn resolve_slot(&self, name: &str, kind: SlotKind) -> Result<(u32, u32), FlowError> {
        match self
            .slot_lookup
            .get(name)
            .and_then(|e| e.by_kind[kind as usize])
        {
            Some(SlotTarget::Unique { op, qty }) => Ok((op, qty)),
            Some(SlotTarget::Ambiguous) => Err(FlowError::AmbiguousPatchSlot {
                slot: format!("{name} ({kind})"),
            }),
            None => Err(FlowError::UnknownPatchSlot {
                slot: format!("{name} ({kind})"),
            }),
        }
    }

    /// Find a slot by `(name, kind)` (first match; the patcher's
    /// resolver additionally rejects ambiguous names).
    #[cfg(test)]
    pub(crate) fn slot(&self, name: &str, kind: SlotKind) -> Option<&PatchSlot> {
        self.slots.iter().find(|s| s.kind == kind && s.name == name)
    }

    /// Number of ops (model-size reporting and tests).
    #[cfg(test)]
    pub(crate) fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Route one unit through the program into the caller-provided
    /// `unit` state (reset here). [`Routed::Scrapped`] means the unit
    /// was already booked into `totals`.
    ///
    /// Programs without nested lines (the common case) dispatch to the
    /// `FLAT = true` instantiation of the op loop, which contains no
    /// recursion and therefore inlines fully into the chunk loop with
    /// register-resident unit state.
    #[inline]
    pub(crate) fn run_unit(
        &self,
        rng: &mut SimRng,
        totals: &mut Totals,
        unit: &mut UnitState,
        retry_budget: u32,
    ) -> Result<Routed, FlowError> {
        if self.flat {
            self.run_line::<true>(self.entry, self.len, rng, totals, unit, retry_budget)
        } else {
            self.run_line::<false>(self.entry, self.len, rng, totals, unit, retry_budget)
        }
    }

    /// Execute one region of the program. `FLAT` promises the region
    /// (transitively) contains no [`Op::SubLine`]; that instantiation
    /// is recursion-free and inlinable.
    #[inline]
    fn run_line<const FLAT: bool>(
        &self,
        entry: u32,
        len: u32,
        rng: &mut SimRng,
        totals: &mut Totals,
        unit: &mut UnitState,
        retry_budget: u32,
    ) -> Result<Routed, FlowError> {
        // Hot accumulators live in locals (registers, once inlined);
        // the caller's `unit` is only written on the shipped path.
        let mut cost = 0.0f64;
        let mut by_cat = [0.0f64; NCAT];
        let mut defective = false;
        let ops = &self.ops[entry as usize..(entry + len) as usize];
        for op in ops {
            if totals.probe {
                totals.obs.ops[op.kind_index()] += 1;
            }
            match *op {
                Op::Cost { cost: c, cat } => {
                    cost += c;
                    by_cat[cat.index()] += c;
                }
                Op::Condemn {
                    cost: c,
                    cat,
                    label,
                } => {
                    cost += c;
                    by_cat[cat.index()] += c;
                    if !defective {
                        defective = true;
                        totals.defects[label as usize] += 1.0;
                    }
                }
                Op::Step {
                    cost: c,
                    cat,
                    threshold,
                    p_good: _,
                    label,
                } => {
                    cost += c;
                    by_cat[cat.index()] += c;
                    // The draw is consumed only for a non-defective
                    // unit (short-circuit), mirroring the interpreter.
                    if !defective && rng.next_u53() >= threshold {
                        defective = true;
                        totals.defects[label as usize] += 1.0;
                    }
                }
                Op::SubLine {
                    qty,
                    entry,
                    len,
                    name,
                } => {
                    if FLAT {
                        unreachable!("flat program contains a sub-line op");
                    }
                    let mut sub = UnitState::new();
                    for _ in 0..qty {
                        self.passing_sub_unit(
                            entry,
                            len,
                            name,
                            rng,
                            totals,
                            &mut sub,
                            retry_budget,
                        )?;
                        cost += sub.cost;
                        for (a, b) in by_cat.iter_mut().zip(sub.by_cat.iter()) {
                            *a += *b;
                        }
                        if sub.defective {
                            // The escape was already attributed inside
                            // the sub-line's own labels.
                            defective = true;
                        }
                    }
                }
                Op::TestScrap { cost: c, coverage } => {
                    cost += c;
                    by_cat[TEST_CAT] += c;
                    if defective && rng.bernoulli(coverage) {
                        totals.scrap(cost, &by_cat);
                        return Ok(Routed::Scrapped);
                    }
                }
                Op::TestRework {
                    cost: c,
                    coverage,
                    rework_cost,
                    success,
                    max_attempts,
                } => {
                    cost += c;
                    by_cat[TEST_CAT] += c;
                    if defective && rng.bernoulli(coverage) {
                        let mut recovered = false;
                        for _ in 0..max_attempts {
                            totals.rework_attempts += 1;
                            cost += rework_cost;
                            by_cat[OTHER_CAT] += rework_cost;
                            cost += c;
                            by_cat[TEST_CAT] += c;
                            if rng.bernoulli(success) {
                                defective = false;
                                recovered = true;
                                break;
                            }
                            if !rng.bernoulli(coverage) {
                                // Escaped on re-test: continues defective.
                                recovered = true;
                                break;
                            }
                        }
                        if !recovered {
                            totals.scrap(cost, &by_cat);
                            return Ok(Routed::Scrapped);
                        }
                    }
                }
            }
        }
        unit.cost = cost;
        unit.by_cat = by_cat;
        unit.defective = defective;
        Ok(Routed::Shipped)
    }

    /// Keep producing sub-units until one passes the nested line; the
    /// passing unit's state is left in `sub`.
    #[allow(clippy::too_many_arguments)] // mirrors run_line's hot signature
    fn passing_sub_unit(
        &self,
        entry: u32,
        len: u32,
        name: u32,
        rng: &mut SimRng,
        totals: &mut Totals,
        sub: &mut UnitState,
        retry_budget: u32,
    ) -> Result<(), FlowError> {
        for _ in 0..retry_budget {
            totals.sub_units_built += 1;
            if self.run_line::<false>(entry, len, rng, totals, sub, retry_budget)?
                == Routed::Shipped
            {
                return Ok(());
            }
        }
        Err(FlowError::SubassemblyStarved {
            line: self.line_names[name as usize].clone(),
            attempts: retry_budget,
        })
    }
}

/// Emit one line's region (post-order: nested lines compile first so
/// every region is contiguous) and return its `(entry, len)`. `prefix`
/// scopes patch-slot names the way [`labels::index_line`] scopes defect
/// labels.
fn compile_line(
    line: &Line,
    line_labels: &LineLabels,
    prefix: &str,
    ops: &mut Vec<Op>,
    line_names: &mut Vec<String>,
    slots: &mut Vec<PatchSlot>,
) -> (u32, u32) {
    // Pass 1: compile nested lines into their own regions.
    let mut sub_regions: Vec<Vec<Option<(u32, u32, u32)>>> =
        Vec::with_capacity(line.stages().len());
    for (stage, stage_labels) in line.stages().iter().zip(line_labels.stages.iter()) {
        let mut row = Vec::new();
        if let (Stage::Attach(a), StageLabels::Attach { inputs, .. }) = (stage, stage_labels) {
            for ((input, _), input_labels) in a.inputs().iter().zip(inputs.iter()) {
                row.push(match (input, input_labels) {
                    (AttachInput::Line(sub), InputLabels::Line(sub_labels)) => {
                        let name = line_names.len() as u32;
                        line_names.push(sub.name().to_owned());
                        let sub_prefix = format!("{prefix}{}/", sub.name());
                        let (entry, len) =
                            compile_line(sub, sub_labels, &sub_prefix, ops, line_names, slots);
                        Some((entry, len, name))
                    }
                    _ => None,
                });
            }
        }
        sub_regions.push(row);
    }

    // Pass 2: emit this line's own contiguous region.
    let entry = ops.len() as u32;
    let carrier = line.carrier();
    push_step(
        ops,
        slots,
        &format!("{prefix}{}", carrier.name()),
        1,
        carrier.cost().total().units(),
        carrier.category(),
        carrier.incoming_yield().value().value(),
        line_labels.carrier,
    );
    for (si, (stage, stage_labels)) in line
        .stages()
        .iter()
        .zip(line_labels.stages.iter())
        .enumerate()
    {
        match (stage, stage_labels) {
            (Stage::Process(p), StageLabels::Process(label)) => push_step(
                ops,
                slots,
                &format!("{prefix}{}", p.name()),
                1,
                p.cost().total().units(),
                p.category(),
                p.process_yield().value().value(),
                *label,
            ),
            (Stage::Attach(a), StageLabels::Attach { op, inputs }) => {
                push_step(
                    ops,
                    slots,
                    &format!("{prefix}{}", a.name()),
                    1,
                    a.cost().total().units(),
                    a.category(),
                    a.attach_yield().value().value(),
                    *op,
                );
                for (ii, ((input, qty), input_labels)) in
                    a.inputs().iter().zip(inputs.iter()).enumerate()
                {
                    match (input, input_labels) {
                        (AttachInput::Part(part), InputLabels::Part(label)) => {
                            // The same per-unit expressions the
                            // interpreter evaluates, hoisted to compile
                            // time — bit-identical by construction.
                            let q = *qty as f64;
                            push_step(
                                ops,
                                slots,
                                &format!("{prefix}{}/{}", a.name(), part.name()),
                                *qty,
                                q * part.cost().total().units(),
                                part.category(),
                                part.incoming_yield().value().value().powf(q),
                                *label,
                            );
                        }
                        (AttachInput::Line(_), InputLabels::Line(_)) => {
                            let (entry, len, name) =
                                sub_regions[si][ii].expect("sub-line compiled in pass 1");
                            ops.push(Op::SubLine {
                                qty: *qty,
                                entry,
                                len,
                                name,
                            });
                        }
                        _ => unreachable!("label map mismatch"),
                    }
                }
            }
            (Stage::Test(t), StageLabels::Test) => {
                let cost = t.cost().total().units();
                let coverage = t.coverage().value();
                let op = ops.len() as u32;
                let name = format!("{prefix}{}", t.name());
                slots.push(PatchSlot {
                    name: name.clone(),
                    kind: SlotKind::Cost,
                    op,
                    qty: 1,
                });
                slots.push(PatchSlot {
                    name,
                    kind: SlotKind::Coverage,
                    op,
                    qty: 1,
                });
                ops.push(match t.fail_action() {
                    FailAction::Scrap => Op::TestScrap { cost, coverage },
                    FailAction::Rework(rework) => Op::TestRework {
                        cost,
                        coverage,
                        rework_cost: rework.cost.total().units(),
                        success: rework.success.value(),
                        max_attempts: rework.max_attempts,
                    },
                });
            }
            _ => unreachable!("label map mismatch"),
        }
    }
    (entry, ops.len() as u32 - entry)
}

/// Emit the op for one cost-and-yield step, specializing degenerate
/// probabilities at compile time. [`SimRng::bernoulli`] consumes **no**
/// draw for `p ≤ 0` or `p ≥ 1`, so the specialized ops (which never
/// draw) keep every random stream aligned with the interpreter; a step
/// that neither costs nor can fail is elided entirely.
///
/// Every emitted op registers a [`SlotKind::Cost`] slot; only a
/// genuine [`Op::Step`] registers a [`SlotKind::Yield`] slot (the
/// specialized forms carry no live probability to overwrite).
#[allow(clippy::too_many_arguments)] // one flat parameter record per step
fn push_step(
    ops: &mut Vec<Op>,
    slots: &mut Vec<PatchSlot>,
    name: &str,
    qty: u32,
    cost: f64,
    cat: CostCategory,
    p_good: f64,
    label: usize,
) {
    let label = label as u32;
    let op = ops.len() as u32;
    let mut slot = |kind| {
        slots.push(PatchSlot {
            name: name.to_owned(),
            kind,
            op,
            qty,
        })
    };
    if p_good >= 1.0 {
        if cost != 0.0 {
            slot(SlotKind::Cost);
            ops.push(Op::Cost { cost, cat });
        }
    } else if p_good <= 0.0 {
        slot(SlotKind::Cost);
        ops.push(Op::Condemn { cost, cat, label });
    } else {
        slot(SlotKind::Cost);
        slot(SlotKind::Yield);
        ops.push(Op::Step {
            cost,
            cat,
            threshold: SimRng::threshold(p_good),
            p_good,
            label,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StepCost;
    use crate::part::Part;
    use crate::stage::{Attach, Process, Test};
    use crate::yield_model::YieldModel;
    use ipass_units::{Money, Probability};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn category_index_constants_match() {
        assert_eq!(TEST_CAT, CostCategory::Test.index());
        assert_eq!(OTHER_CAT, CostCategory::Other.index());
    }

    #[test]
    fn compiles_flat_line_with_precomputed_invariants() {
        let line = Line::builder(
            "l",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(2.0))),
        )
        .process(
            Process::new("p")
                .with_cost(StepCost::fixed(Money::new(1.0)))
                .with_yield(YieldModel::flat(p(0.9))),
        )
        .attach(
            Attach::new("a").input(
                Part::new("die", CostCategory::Chip)
                    .with_cost(StepCost::fixed(Money::new(3.0)))
                    .with_incoming_yield(YieldModel::flat(p(0.95))),
                4,
            ),
        )
        .test(Test::new("t").with_coverage(p(0.99)))
        .build()
        .unwrap();
        let program = RoutingProgram::compile(&line);
        // carrier, process, attach part (the attach op itself is free
        // and certain, hence elided), test.
        assert_eq!(program.op_count(), 4);
        assert_eq!(program.line_name(), "l");
        match program.ops[2] {
            Op::Step {
                cost,
                cat,
                threshold,
                p_good,
                label: _,
            } => {
                assert_eq!(cost, 12.0); // 4 × 3.0 precomputed
                assert_eq!(cat, CostCategory::Chip);
                // p^q precomputed, then lowered to a draw threshold.
                assert_eq!(p_good, 0.95f64.powf(4.0));
                assert_eq!(threshold, SimRng::threshold(0.95f64.powf(4.0)));
            }
            other => panic!("expected part step, got {other:?}"),
        }
        // Patch slots name every live parameter: the part input exposes
        // cost + yield, the free-and-certain attach op exposes nothing.
        let slot = program.slot("a/die", SlotKind::Yield).unwrap();
        assert_eq!(slot.op, 2);
        assert_eq!(slot.qty, 4);
        assert!(program.slot("a", SlotKind::Cost).is_none());
        assert!(program.slot("t", SlotKind::Coverage).is_some());
        assert!(program.slot("t", SlotKind::Cost).is_some());
    }

    #[test]
    fn degenerate_yields_specialize() {
        let line = Line::builder(
            "l",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(1.0))),
        )
        .process(Process::new("certain").with_cost(StepCost::fixed(Money::new(2.0))))
        .process(Process::new("doomed").with_yield(YieldModel::flat(Probability::clamped(0.0))))
        .test(Test::new("t"))
        .build()
        .unwrap();
        let program = RoutingProgram::compile(&line);
        assert!(matches!(program.ops[0], Op::Cost { .. })); // carrier: certain incoming
        assert!(matches!(program.ops[1], Op::Cost { cost, .. } if cost == 2.0));
        assert!(matches!(program.ops[2], Op::Condemn { .. }));
    }

    #[test]
    fn noop_steps_are_elided_and_do_not_shift_streams() {
        // A certain, free process must compile away entirely.
        let with_noop = Line::builder("l", Part::new("c", CostCategory::Substrate))
            .process(Process::new("free"))
            .process(
                Process::new("real")
                    .with_cost(StepCost::fixed(Money::new(1.0)))
                    .with_yield(YieldModel::flat(p(0.9))),
            )
            .build()
            .unwrap();
        let without = Line::builder("l", Part::new("c", CostCategory::Substrate))
            .process(
                Process::new("real")
                    .with_cost(StepCost::fixed(Money::new(1.0)))
                    .with_yield(YieldModel::flat(p(0.9))),
            )
            .build()
            .unwrap();
        let a = RoutingProgram::compile(&with_noop);
        let b = RoutingProgram::compile(&without);
        assert_eq!(a.op_count(), b.op_count());
    }

    #[test]
    fn nested_regions_are_contiguous_and_resolvable() {
        let sub = Line::builder("sub", Part::new("blank", CostCategory::Substrate))
            .process(Process::new("fab").with_yield(YieldModel::flat(p(0.6))))
            .test(Test::new("probe"))
            .build()
            .unwrap();
        let line = Line::builder("main", Part::new("pcb", CostCategory::Substrate))
            .attach(Attach::new("join").input(sub, 2))
            .test(Test::new("ft"))
            .build()
            .unwrap();
        let program = RoutingProgram::compile(&line);
        let sub_ops: Vec<&Op> = program
            .ops
            .iter()
            .filter(|op| matches!(op, Op::SubLine { .. }))
            .collect();
        assert_eq!(sub_ops.len(), 1);
        let Op::SubLine {
            qty,
            entry,
            len,
            name,
        } = *sub_ops[0]
        else {
            unreachable!()
        };
        assert_eq!(qty, 2);
        assert_eq!(program.line_names[name as usize], "sub");
        // The sub region precedes the top region (post-order layout) and
        // stays in bounds.
        assert!((entry + len) as usize <= program.ops.len());
        assert!(entry < program.entry);
        // Nested slots carry the sub-line path prefix and point into
        // the sub region.
        let fab = program.slot("sub/fab", SlotKind::Yield).unwrap();
        assert!(fab.op >= entry && fab.op < entry + len);
    }
}
