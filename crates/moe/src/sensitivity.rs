//! Tornado-style sensitivity analysis: which inputs move the final cost?
//!
//! The paper compares "the results for different cost and yield
//! implications"; this module systematizes that: perturb each input to
//! its low/high variant, re-evaluate the flow analytically, and rank the
//! inputs by their cost swing.

use crate::dual::DualDirection;
use crate::error::FlowError;
use crate::flow::Flow;
use crate::patch::{CompiledFlow, FlowPatch};
use ipass_sim::Executor;
use std::fmt;

/// One input parameter with its low/high flow variants.
#[derive(Debug)]
pub struct TornadoInput<'a> {
    /// Parameter label.
    pub name: &'a str,
    /// The flow with the parameter at its low value.
    pub low: Flow,
    /// The flow with the parameter at its high value.
    pub high: Flow,
}

/// One input parameter as a pair of patches on a shared compiled
/// program — the fast form of [`TornadoInput`]: the production line is
/// compiled once and each variant overwrites a few parameter slots
/// (see [`FlowPatch`]) instead of rebuilding a whole flow.
#[derive(Debug)]
pub struct TornadoPatch<'a> {
    /// Parameter label.
    pub name: &'a str,
    /// The patch with the parameter at its low value.
    pub low: FlowPatch,
    /// The patch with the parameter at its high value.
    pub high: FlowPatch,
}

/// One input parameter as a derivative direction plus its low/high
/// deltas — the gradient form of [`TornadoPatch`]: the whole chart is
/// one dual pass ([`CompiledFlow::analyze_duals`]) instead of `1 + 2·n`
/// patched walks. Rows extrapolate `baseline + ∂cost/∂direction · Δ`;
/// for pure cost directions that extrapolation is *exact* (final cost
/// is affine in every cost slot), elsewhere it is first-order.
#[derive(Debug)]
pub struct TornadoDirection<'a> {
    /// Parameter label.
    pub name: &'a str,
    /// The derivative direction (per-input-unit slot weights).
    pub direction: DualDirection,
    /// Signed delta along `direction` for the low variant.
    pub low: f64,
    /// Signed delta along `direction` for the high variant.
    pub high: f64,
}

/// One bar of the tornado chart.
#[derive(Debug, Clone, PartialEq)]
pub struct TornadoRow {
    /// Parameter label.
    pub name: String,
    /// Final cost per shipped unit with the low variant.
    pub low_cost: f64,
    /// Final cost per shipped unit with the high variant.
    pub high_cost: f64,
}

impl TornadoRow {
    /// The swing (absolute difference) this parameter produces.
    pub fn swing(&self) -> f64 {
        (self.high_cost - self.low_cost).abs()
    }
}

/// The tornado chart: rows sorted by decreasing swing around the
/// baseline cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Tornado {
    baseline_cost: f64,
    rows: Vec<TornadoRow>,
}

impl Tornado {
    /// Evaluate the baseline and every input variant analytically.
    ///
    /// # Errors
    ///
    /// Fails if any flow is invalid or ships nothing.
    pub fn evaluate(baseline: &Flow, inputs: Vec<TornadoInput<'_>>) -> Result<Tornado, FlowError> {
        Tornado::evaluate_with(&Executor::available(), baseline, inputs)
    }

    /// [`Tornado::evaluate`] on an explicit executor; the baseline and
    /// every low/high variant are analyzed in parallel.
    ///
    /// # Errors
    ///
    /// Fails if any flow is invalid or ships nothing.
    pub fn evaluate_with(
        executor: &Executor,
        baseline: &Flow,
        inputs: Vec<TornadoInput<'_>>,
    ) -> Result<Tornado, FlowError> {
        // One flat batch: baseline first, then each input's low/high.
        let mut flows: Vec<&Flow> = Vec::with_capacity(1 + 2 * inputs.len());
        flows.push(baseline);
        for input in &inputs {
            flows.push(&input.low);
            flows.push(&input.high);
        }
        let costs = executor.try_map(&flows, |_, flow| {
            flow.analyze().map(|r| r.final_cost_per_shipped().units())
        })?;
        let names = inputs.iter().map(|i| i.name);
        Ok(Tornado::from_costs(&costs, names))
    }

    /// Evaluate a tornado over patches of one shared compiled program:
    /// the baseline is the unpatched program, each row a low/high
    /// [`FlowPatch`] pair. Where [`Tornado::evaluate`] builds and
    /// compiles `1 + 2·n` flows, this compiles nothing — each variant
    /// is a patched copy of the base op vector.
    ///
    /// # Errors
    ///
    /// Fails if the baseline or any patched variant ships nothing.
    pub fn evaluate_patches(
        baseline: &CompiledFlow,
        inputs: &[TornadoPatch<'_>],
    ) -> Result<Tornado, FlowError> {
        Tornado::evaluate_patches_with(&Executor::available(), baseline, inputs)
    }

    /// [`Tornado::evaluate_patches`] on an explicit executor; the
    /// baseline and every low/high variant are analyzed in parallel.
    ///
    /// # Errors
    ///
    /// Fails if the baseline or any patched variant ships nothing.
    pub fn evaluate_patches_with(
        executor: &Executor,
        baseline: &CompiledFlow,
        inputs: &[TornadoPatch<'_>],
    ) -> Result<Tornado, FlowError> {
        // One flat batch: the unpatched baseline first, then each
        // input's low/high patch. An unpatched `FlowPatch` analyzes
        // identically to `CompiledFlow::analyze`, so the baseline rides
        // the same shared fan-out as the variants.
        let mut variants: Vec<Option<&FlowPatch>> = Vec::with_capacity(1 + 2 * inputs.len());
        variants.push(None);
        for input in inputs {
            variants.push(Some(&input.low));
            variants.push(Some(&input.high));
        }
        let reports = crate::patch::analyze_patched_batch(executor, &variants, |_, variant| {
            Ok(match variant {
                None => std::borrow::Cow::Owned(baseline.patch()),
                Some(patch) => std::borrow::Cow::Borrowed(*patch),
            })
        })?;
        let costs: Vec<f64> = reports
            .iter()
            .map(|r| r.final_cost_per_shipped().units())
            .collect();
        let names = inputs.iter().map(|i| i.name);
        Ok(Tornado::from_costs(&costs, names))
    }

    /// Evaluate a tornado in **one analytic pass**: the baseline walk
    /// carries one tangent lane per input, and each row is the
    /// gradient extrapolation `baseline + ∂cost/∂direction · Δ`.
    ///
    /// For rows whose direction touches only [`SlotKind::Cost`] slots
    /// the extrapolated costs equal the re-evaluated
    /// [`Tornado::evaluate_patches`] costs exactly (cohort masses are
    /// cost-independent, so final cost is affine in every cost slot);
    /// yield and coverage rows are first-order around the baseline.
    ///
    /// # Errors
    ///
    /// Fails if a direction names an unknown or ambiguous slot, or if
    /// the baseline ships nothing.
    ///
    /// [`SlotKind::Cost`]: crate::SlotKind::Cost
    pub fn evaluate_gradients(
        baseline: &CompiledFlow,
        inputs: &[TornadoDirection<'_>],
    ) -> Result<Tornado, FlowError> {
        let dual = baseline.analyze_duals_ref(inputs.iter().map(|i| &i.direction))?;
        let baseline_cost = dual.report.final_cost_per_shipped().units();
        let rows = inputs
            .iter()
            .zip(&dual.gradients)
            .map(|(input, g)| TornadoRow {
                name: input.name.to_owned(),
                low_cost: baseline_cost + g.final_cost_per_shipped * input.low,
                high_cost: baseline_cost + g.final_cost_per_shipped * input.high,
            })
            .collect();
        Ok(Tornado::sorted(baseline_cost, rows))
    }

    /// Assemble a chart from externally computed rows — for hybrid
    /// evaluations that mix exact gradient extrapolations (cost rows)
    /// with re-evaluated patches (large nonlinear steps), like
    /// the GPS case study's sensitivity experiment. Rows are sorted by
    /// decreasing swing like every other constructor.
    pub fn from_rows(baseline_cost: f64, rows: Vec<TornadoRow>) -> Tornado {
        Tornado::sorted(baseline_cost, rows)
    }

    /// Assemble the chart from the flat `[baseline, low₀, high₀, …]`
    /// cost batch both evaluation strategies produce.
    fn from_costs<'a>(costs: &[f64], names: impl Iterator<Item = &'a str>) -> Tornado {
        let baseline_cost = costs[0];
        let rows: Vec<TornadoRow> = names
            .enumerate()
            .map(|(i, name)| TornadoRow {
                name: name.to_owned(),
                low_cost: costs[1 + 2 * i],
                high_cost: costs[2 + 2 * i],
            })
            .collect();
        Tornado::sorted(baseline_cost, rows)
    }

    /// Sort rows by decreasing swing. `total_cmp`, not `partial_cmp`:
    /// a NaN swing (e.g. a variant whose cost overflowed to NaN) must
    /// sort deterministically — NaN ranks above every finite swing so a
    /// poisoned row is impossible to overlook at the top of the chart —
    /// rather than short-circuiting the comparator to `Equal` and
    /// leaving neighbors in arbitrary relative order.
    fn sorted(baseline_cost: f64, mut rows: Vec<TornadoRow>) -> Tornado {
        rows.sort_by(|a, b| b.swing().total_cmp(&a.swing()));
        Tornado {
            baseline_cost,
            rows,
        }
    }

    /// The baseline final cost per shipped unit.
    pub fn baseline_cost(&self) -> f64 {
        self.baseline_cost
    }

    /// Rows sorted by decreasing swing.
    pub fn rows(&self) -> &[TornadoRow] {
        &self.rows
    }

    /// The chart as a typed range-[`Breakdown`] artifact: one bar per
    /// parameter around the baseline cost, already sorted by swing.
    ///
    /// [`Breakdown`]: ipass_report::Breakdown
    pub fn artifact(&self) -> ipass_report::Breakdown {
        self.artifact_titled("tornado — final cost per shipped unit")
    }

    /// [`Tornado::artifact`] with an explicit title.
    pub fn artifact_titled(&self, title: impl Into<String>) -> ipass_report::Breakdown {
        self.rows.iter().fold(
            ipass_report::Breakdown::new(title, "cost units").with_baseline(self.baseline_cost),
            |b, row| b.range(row.name.clone(), row.low_cost, row.high_cost),
        )
    }

    /// Render the chart as text bars (the artifact pipeline's aligned
    /// txt sink; the old ad-hoc bar formatter is gone).
    pub fn render(&self) -> String {
        self.artifact().to_txt()
    }
}

impl fmt::Display for Tornado {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostCategory, StepCost};
    use crate::line::Line;
    use crate::part::Part;
    use crate::stage::{Process, Test};
    use crate::yield_model::YieldModel;
    use ipass_units::{Money, Probability};

    fn flow(part_cost: f64, process_yield: f64) -> Flow {
        let line = Line::builder(
            "t",
            Part::new("c", CostCategory::Substrate)
                .with_cost(StepCost::fixed(Money::new(part_cost))),
        )
        .process(
            Process::new("p")
                .with_yield(YieldModel::flat(Probability::new(process_yield).unwrap())),
        )
        .test(Test::new("t").with_coverage(Probability::new(0.99).unwrap()))
        .build()
        .unwrap();
        Flow::new(line)
    }

    #[test]
    fn ranks_by_swing() {
        let tornado = Tornado::evaluate(
            &flow(10.0, 0.9),
            vec![
                TornadoInput {
                    name: "part cost ±10%",
                    low: flow(9.0, 0.9),
                    high: flow(11.0, 0.9),
                },
                TornadoInput {
                    name: "process yield ±5pts",
                    low: flow(10.0, 0.85),
                    high: flow(10.0, 0.95),
                },
            ],
        )
        .unwrap();
        assert_eq!(tornado.rows().len(), 2);
        // Yield ±5 pts swings ~11 % of cost; part cost ±10 % swings ~20 %.
        assert_eq!(tornado.rows()[0].name, "part cost ±10%");
        assert!(tornado.rows()[0].swing() > tornado.rows()[1].swing());
        assert!((tornado.baseline_cost() - 10.0 / 0.9009).abs() < 0.11);
    }

    #[test]
    fn patched_tornado_matches_rebuilt_tornado() {
        let rebuilt = Tornado::evaluate(
            &flow(10.0, 0.9),
            vec![
                TornadoInput {
                    name: "part cost ±10%",
                    low: flow(9.0, 0.9),
                    high: flow(11.0, 0.9),
                },
                TornadoInput {
                    name: "process yield ±5pts",
                    low: flow(10.0, 0.85),
                    high: flow(10.0, 0.95),
                },
            ],
        )
        .unwrap();
        let base = flow(10.0, 0.9).compiled().unwrap();
        let variant = |cost: Option<f64>, y: Option<f64>| {
            let mut p_ = base.patch();
            if let Some(c) = cost {
                p_.set_cost("c", Money::new(c)).unwrap();
            }
            if let Some(y) = y {
                p_.set_yield("p", Probability::new(y).unwrap()).unwrap();
            }
            p_
        };
        let patched = Tornado::evaluate_patches(
            &base,
            &[
                TornadoPatch {
                    name: "part cost ±10%",
                    low: variant(Some(9.0), None),
                    high: variant(Some(11.0), None),
                },
                TornadoPatch {
                    name: "process yield ±5pts",
                    low: variant(None, Some(0.85)),
                    high: variant(None, Some(0.95)),
                },
            ],
        )
        .unwrap();
        assert_eq!(rebuilt.baseline_cost(), patched.baseline_cost());
        assert_eq!(rebuilt.rows(), patched.rows());
    }

    #[test]
    fn nan_swing_sorts_first_not_arbitrarily() {
        // `partial_cmp(..).unwrap_or(Equal)` used to make NaN swings
        // compare Equal to everything, so sort order depended on where
        // the NaN row sat in the input. `total_cmp` ranks NaN above all
        // finite swings, deterministically.
        let costs = [
            10.0, // baseline
            9.0,
            11.0, // "small": swing 2
            f64::NAN,
            11.0, // "poisoned": swing NaN
            5.0,
            15.0, // "big": swing 10
        ];
        let tornado = Tornado::from_costs(&costs, ["small", "poisoned", "big"].into_iter());
        let order: Vec<&str> = tornado.rows().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(order, ["poisoned", "big", "small"]);
        // Same rows, NaN listed last on input: same output order.
        let costs = [10.0, 5.0, 15.0, 9.0, 11.0, f64::NAN, 11.0];
        let tornado = Tornado::from_costs(&costs, ["big", "small", "poisoned"].into_iter());
        let order: Vec<&str> = tornado.rows().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(order, ["poisoned", "big", "small"]);
    }

    #[test]
    fn gradient_tornado_cross_checks_the_patched_path() {
        let base = flow(10.0, 0.9).compiled().unwrap();
        let variant = |cost: Option<f64>, y: Option<f64>| {
            let mut p_ = base.patch();
            if let Some(c) = cost {
                p_.set_cost("c", Money::new(c)).unwrap();
            }
            if let Some(y) = y {
                p_.set_yield("p", Probability::new(y).unwrap()).unwrap();
            }
            p_
        };
        let patched = Tornado::evaluate_patches(
            &base,
            &[
                TornadoPatch {
                    name: "part cost ±10%",
                    low: variant(Some(9.0), None),
                    high: variant(Some(11.0), None),
                },
                TornadoPatch {
                    name: "process yield ±5pts",
                    low: variant(None, Some(0.85)),
                    high: variant(None, Some(0.95)),
                },
            ],
        )
        .unwrap();
        let gradient = Tornado::evaluate_gradients(
            &base,
            &[
                TornadoDirection {
                    name: "part cost ±10%",
                    direction: DualDirection::cost("c"),
                    low: -1.0,
                    high: 1.0,
                },
                TornadoDirection {
                    name: "process yield ±5pts",
                    direction: DualDirection::step_yield("p"),
                    low: -0.05,
                    high: 0.05,
                },
            ],
        )
        .unwrap();
        assert_eq!(gradient.baseline_cost(), patched.baseline_cost());
        assert_eq!(gradient.rows().len(), 2);
        for (g, p_) in gradient.rows().iter().zip(patched.rows()) {
            assert_eq!(g.name, p_.name);
            if g.name.contains("cost") {
                // Cost rows: the gradient extrapolation is exact.
                assert!((g.low_cost - p_.low_cost).abs() <= 1e-12 * p_.low_cost.abs());
                assert!((g.high_cost - p_.high_cost).abs() <= 1e-12 * p_.high_cost.abs());
            } else {
                // Yield rows: first-order around the baseline — within
                // a few percent for a ±5 pt step on this line.
                assert!((g.low_cost - p_.low_cost).abs() / p_.low_cost.abs() < 0.03);
                assert!((g.high_cost - p_.high_cost).abs() / p_.high_cost.abs() < 0.03);
            }
        }
        // Both strategies agree on the ranking.
        assert_eq!(gradient.rows()[0].name, patched.rows()[0].name);
    }

    #[test]
    fn render_draws_bars() {
        let tornado = Tornado::evaluate(
            &flow(10.0, 0.9),
            vec![TornadoInput {
                name: "x",
                low: flow(8.0, 0.9),
                high: flow(12.0, 0.9),
            }],
        )
        .unwrap();
        let text = tornado.render();
        assert!(text.contains("█") && text.contains("baseline"));
    }

    #[test]
    fn empty_inputs_is_just_the_baseline() {
        let tornado = Tornado::evaluate(&flow(10.0, 0.9), vec![]).unwrap();
        assert!(tornado.rows().is_empty());
        assert!(tornado.baseline_cost() > 0.0);
    }
}
