//! Tornado-style sensitivity analysis: which inputs move the final cost?
//!
//! The paper compares "the results for different cost and yield
//! implications"; this module systematizes that: perturb each input to
//! its low/high variant, re-evaluate the flow analytically, and rank the
//! inputs by their cost swing.

use crate::error::FlowError;
use crate::flow::Flow;
use crate::patch::{CompiledFlow, FlowPatch};
use ipass_sim::Executor;
use std::fmt;

/// One input parameter with its low/high flow variants.
#[derive(Debug)]
pub struct TornadoInput<'a> {
    /// Parameter label.
    pub name: &'a str,
    /// The flow with the parameter at its low value.
    pub low: Flow,
    /// The flow with the parameter at its high value.
    pub high: Flow,
}

/// One input parameter as a pair of patches on a shared compiled
/// program — the fast form of [`TornadoInput`]: the production line is
/// compiled once and each variant overwrites a few parameter slots
/// (see [`FlowPatch`]) instead of rebuilding a whole flow.
#[derive(Debug)]
pub struct TornadoPatch<'a> {
    /// Parameter label.
    pub name: &'a str,
    /// The patch with the parameter at its low value.
    pub low: FlowPatch,
    /// The patch with the parameter at its high value.
    pub high: FlowPatch,
}

/// One bar of the tornado chart.
#[derive(Debug, Clone, PartialEq)]
pub struct TornadoRow {
    /// Parameter label.
    pub name: String,
    /// Final cost per shipped unit with the low variant.
    pub low_cost: f64,
    /// Final cost per shipped unit with the high variant.
    pub high_cost: f64,
}

impl TornadoRow {
    /// The swing (absolute difference) this parameter produces.
    pub fn swing(&self) -> f64 {
        (self.high_cost - self.low_cost).abs()
    }
}

/// The tornado chart: rows sorted by decreasing swing around the
/// baseline cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Tornado {
    baseline_cost: f64,
    rows: Vec<TornadoRow>,
}

impl Tornado {
    /// Evaluate the baseline and every input variant analytically.
    ///
    /// # Errors
    ///
    /// Fails if any flow is invalid or ships nothing.
    pub fn evaluate(baseline: &Flow, inputs: Vec<TornadoInput<'_>>) -> Result<Tornado, FlowError> {
        Tornado::evaluate_with(&Executor::available(), baseline, inputs)
    }

    /// [`Tornado::evaluate`] on an explicit executor; the baseline and
    /// every low/high variant are analyzed in parallel.
    ///
    /// # Errors
    ///
    /// Fails if any flow is invalid or ships nothing.
    pub fn evaluate_with(
        executor: &Executor,
        baseline: &Flow,
        inputs: Vec<TornadoInput<'_>>,
    ) -> Result<Tornado, FlowError> {
        // One flat batch: baseline first, then each input's low/high.
        let mut flows: Vec<&Flow> = Vec::with_capacity(1 + 2 * inputs.len());
        flows.push(baseline);
        for input in &inputs {
            flows.push(&input.low);
            flows.push(&input.high);
        }
        let costs = executor.try_map(&flows, |_, flow| {
            flow.analyze().map(|r| r.final_cost_per_shipped().units())
        })?;
        let names = inputs.iter().map(|i| i.name);
        Ok(Tornado::from_costs(&costs, names))
    }

    /// Evaluate a tornado over patches of one shared compiled program:
    /// the baseline is the unpatched program, each row a low/high
    /// [`FlowPatch`] pair. Where [`Tornado::evaluate`] builds and
    /// compiles `1 + 2·n` flows, this compiles nothing — each variant
    /// is a patched copy of the base op vector.
    ///
    /// # Errors
    ///
    /// Fails if the baseline or any patched variant ships nothing.
    pub fn evaluate_patches(
        baseline: &CompiledFlow,
        inputs: Vec<TornadoPatch<'_>>,
    ) -> Result<Tornado, FlowError> {
        Tornado::evaluate_patches_with(&Executor::available(), baseline, inputs)
    }

    /// [`Tornado::evaluate_patches`] on an explicit executor; the
    /// baseline and every low/high variant are analyzed in parallel.
    ///
    /// # Errors
    ///
    /// Fails if the baseline or any patched variant ships nothing.
    pub fn evaluate_patches_with(
        executor: &Executor,
        baseline: &CompiledFlow,
        inputs: Vec<TornadoPatch<'_>>,
    ) -> Result<Tornado, FlowError> {
        // One flat batch: the unpatched baseline first, then each
        // input's low/high patch. An unpatched `FlowPatch` analyzes
        // identically to `CompiledFlow::analyze`, so the baseline rides
        // the same shared fan-out as the variants.
        let mut variants: Vec<Option<&FlowPatch>> = Vec::with_capacity(1 + 2 * inputs.len());
        variants.push(None);
        for input in &inputs {
            variants.push(Some(&input.low));
            variants.push(Some(&input.high));
        }
        let reports = crate::patch::analyze_patched_batch(executor, &variants, |_, variant| {
            Ok(match variant {
                None => std::borrow::Cow::Owned(baseline.patch()),
                Some(patch) => std::borrow::Cow::Borrowed(*patch),
            })
        })?;
        let costs: Vec<f64> = reports
            .iter()
            .map(|r| r.final_cost_per_shipped().units())
            .collect();
        let names = inputs.iter().map(|i| i.name);
        Ok(Tornado::from_costs(&costs, names))
    }

    /// Assemble the chart from the flat `[baseline, low₀, high₀, …]`
    /// cost batch both evaluation strategies produce.
    fn from_costs<'a>(costs: &[f64], names: impl Iterator<Item = &'a str>) -> Tornado {
        let baseline_cost = costs[0];
        let mut rows: Vec<TornadoRow> = names
            .enumerate()
            .map(|(i, name)| TornadoRow {
                name: name.to_owned(),
                low_cost: costs[1 + 2 * i],
                high_cost: costs[2 + 2 * i],
            })
            .collect();
        rows.sort_by(|a, b| {
            b.swing()
                .partial_cmp(&a.swing())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Tornado {
            baseline_cost,
            rows,
        }
    }

    /// The baseline final cost per shipped unit.
    pub fn baseline_cost(&self) -> f64 {
        self.baseline_cost
    }

    /// Rows sorted by decreasing swing.
    pub fn rows(&self) -> &[TornadoRow] {
        &self.rows
    }

    /// The chart as a typed range-[`Breakdown`] artifact: one bar per
    /// parameter around the baseline cost, already sorted by swing.
    ///
    /// [`Breakdown`]: ipass_report::Breakdown
    pub fn artifact(&self) -> ipass_report::Breakdown {
        self.artifact_titled("tornado — final cost per shipped unit")
    }

    /// [`Tornado::artifact`] with an explicit title.
    pub fn artifact_titled(&self, title: impl Into<String>) -> ipass_report::Breakdown {
        self.rows.iter().fold(
            ipass_report::Breakdown::new(title, "cost units").with_baseline(self.baseline_cost),
            |b, row| b.range(row.name.clone(), row.low_cost, row.high_cost),
        )
    }

    /// Render the chart as text bars (the artifact pipeline's aligned
    /// txt sink; the old ad-hoc bar formatter is gone).
    pub fn render(&self) -> String {
        self.artifact().to_txt()
    }
}

impl fmt::Display for Tornado {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostCategory, StepCost};
    use crate::line::Line;
    use crate::part::Part;
    use crate::stage::{Process, Test};
    use crate::yield_model::YieldModel;
    use ipass_units::{Money, Probability};

    fn flow(part_cost: f64, process_yield: f64) -> Flow {
        let line = Line::builder(
            "t",
            Part::new("c", CostCategory::Substrate)
                .with_cost(StepCost::fixed(Money::new(part_cost))),
        )
        .process(
            Process::new("p")
                .with_yield(YieldModel::flat(Probability::new(process_yield).unwrap())),
        )
        .test(Test::new("t").with_coverage(Probability::new(0.99).unwrap()))
        .build()
        .unwrap();
        Flow::new(line)
    }

    #[test]
    fn ranks_by_swing() {
        let tornado = Tornado::evaluate(
            &flow(10.0, 0.9),
            vec![
                TornadoInput {
                    name: "part cost ±10%",
                    low: flow(9.0, 0.9),
                    high: flow(11.0, 0.9),
                },
                TornadoInput {
                    name: "process yield ±5pts",
                    low: flow(10.0, 0.85),
                    high: flow(10.0, 0.95),
                },
            ],
        )
        .unwrap();
        assert_eq!(tornado.rows().len(), 2);
        // Yield ±5 pts swings ~11 % of cost; part cost ±10 % swings ~20 %.
        assert_eq!(tornado.rows()[0].name, "part cost ±10%");
        assert!(tornado.rows()[0].swing() > tornado.rows()[1].swing());
        assert!((tornado.baseline_cost() - 10.0 / 0.9009).abs() < 0.11);
    }

    #[test]
    fn patched_tornado_matches_rebuilt_tornado() {
        let rebuilt = Tornado::evaluate(
            &flow(10.0, 0.9),
            vec![
                TornadoInput {
                    name: "part cost ±10%",
                    low: flow(9.0, 0.9),
                    high: flow(11.0, 0.9),
                },
                TornadoInput {
                    name: "process yield ±5pts",
                    low: flow(10.0, 0.85),
                    high: flow(10.0, 0.95),
                },
            ],
        )
        .unwrap();
        let base = flow(10.0, 0.9).compiled().unwrap();
        let variant = |cost: Option<f64>, y: Option<f64>| {
            let mut p_ = base.patch();
            if let Some(c) = cost {
                p_.set_cost("c", Money::new(c)).unwrap();
            }
            if let Some(y) = y {
                p_.set_yield("p", Probability::new(y).unwrap()).unwrap();
            }
            p_
        };
        let patched = Tornado::evaluate_patches(
            &base,
            vec![
                TornadoPatch {
                    name: "part cost ±10%",
                    low: variant(Some(9.0), None),
                    high: variant(Some(11.0), None),
                },
                TornadoPatch {
                    name: "process yield ±5pts",
                    low: variant(None, Some(0.85)),
                    high: variant(None, Some(0.95)),
                },
            ],
        )
        .unwrap();
        assert_eq!(rebuilt.baseline_cost(), patched.baseline_cost());
        assert_eq!(rebuilt.rows(), patched.rows());
    }

    #[test]
    fn render_draws_bars() {
        let tornado = Tornado::evaluate(
            &flow(10.0, 0.9),
            vec![TornadoInput {
                name: "x",
                low: flow(8.0, 0.9),
                high: flow(12.0, 0.9),
            }],
        )
        .unwrap();
        let text = tornado.render();
        assert!(text.contains("█") && text.contains("baseline"));
    }

    #[test]
    fn empty_inputs_is_just_the_baseline() {
        let tornado = Tornado::evaluate(&flow(10.0, 0.9), vec![]).unwrap();
        assert!(tornado.rows().is_empty());
        assert!(tornado.baseline_cost() > 0.0);
    }
}
