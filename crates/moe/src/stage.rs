//! Stages of a production line: process, attach, test (with rework).

use crate::cost::{CostCategory, StepCost};
use crate::part::AttachInput;
use crate::yield_model::YieldModel;
use ipass_units::Probability;

/// A value-adding process step (screen printing, rerouting, packaging…).
///
/// # Examples
///
/// ```
/// use ipass_moe::{CostCategory, Process, StepCost, YieldModel};
/// use ipass_units::Money;
///
/// let pkg = Process::new("BGA packaging")
///     .with_cost(StepCost::fixed(Money::new(7.30)))
///     .with_yield(YieldModel::percent(96.8))
///     .with_category(CostCategory::Packaging);
/// assert_eq!(pkg.name(), "BGA packaging");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Process {
    name: String,
    cost: StepCost,
    yield_: YieldModel,
    category: CostCategory,
}

impl Process {
    /// Create a free, defect-free process; chain `with_*` to configure.
    pub fn new(name: impl Into<String>) -> Process {
        Process {
            name: name.into(),
            cost: StepCost::ZERO,
            yield_: YieldModel::Certain,
            category: CostCategory::Assembly,
        }
    }

    /// Set the cost per unit processed.
    pub fn with_cost(mut self, cost: StepCost) -> Process {
        self.cost = cost;
        self
    }

    /// Set the process yield.
    pub fn with_yield(mut self, y: YieldModel) -> Process {
        self.yield_ = y;
        self
    }

    /// Set the accounting category (default: `Assembly`).
    pub fn with_category(mut self, category: CostCategory) -> Process {
        self.category = category;
        self
    }

    /// The stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cost per unit processed.
    pub fn cost(&self) -> &StepCost {
        &self.cost
    }

    /// The process yield model.
    pub fn process_yield(&self) -> &YieldModel {
        &self.yield_
    }

    /// The accounting category.
    pub fn category(&self) -> CostCategory {
        self.category
    }
}

/// An assembly step attaching parts (or subassembly outputs) to the unit.
///
/// # Examples
///
/// ```
/// use ipass_moe::{Attach, CostCategory, Part, StepCost, YieldModel};
/// use ipass_units::{Money, Probability};
///
/// let rf = Part::new("RF die", CostCategory::Chip)
///     .with_cost(StepCost::fixed(Money::new(79.3)));
/// let dsp = Part::new("DSP die", CostCategory::Chip)
///     .with_cost(StepCost::fixed(Money::new(118.9)));
/// let attach = Attach::new("dice bonding")
///     .input(rf, 1)
///     .input(dsp, 1)
///     .with_cost(StepCost::per_item(Money::new(0.10), 2))
///     .with_yield(YieldModel::percent(99.0));
/// assert_eq!(attach.inputs().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Attach {
    name: String,
    inputs: Vec<(AttachInput, u32)>,
    cost: StepCost,
    yield_: YieldModel,
    category: CostCategory,
}

impl Attach {
    /// Create an attach stage with no inputs yet.
    pub fn new(name: impl Into<String>) -> Attach {
        Attach {
            name: name.into(),
            inputs: Vec::new(),
            cost: StepCost::ZERO,
            yield_: YieldModel::Certain,
            category: CostCategory::Assembly,
        }
    }

    /// Add `quantity` instances of an input (part or nested line).
    pub fn input(mut self, input: impl Into<AttachInput>, quantity: u32) -> Attach {
        self.inputs.push((input.into(), quantity));
        self
    }

    /// Set the assembly operation cost (booked under this stage's
    /// category, not the parts' categories).
    pub fn with_cost(mut self, cost: StepCost) -> Attach {
        self.cost = cost;
        self
    }

    /// Set the assembly yield (the operation itself; incoming part
    /// quality is carried by each part's incoming yield).
    pub fn with_yield(mut self, y: YieldModel) -> Attach {
        self.yield_ = y;
        self
    }

    /// Set the accounting category of the operation cost.
    pub fn with_category(mut self, category: CostCategory) -> Attach {
        self.category = category;
        self
    }

    /// The stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attached inputs with quantities.
    pub fn inputs(&self) -> &[(AttachInput, u32)] {
        &self.inputs
    }

    /// The assembly operation cost.
    pub fn cost(&self) -> &StepCost {
        &self.cost
    }

    /// The assembly yield model.
    pub fn attach_yield(&self) -> &YieldModel {
        &self.yield_
    }

    /// The accounting category.
    pub fn category(&self) -> CostCategory {
        self.category
    }
}

/// A bounded rework loop behind a failed test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rework {
    /// Cost of one rework attempt.
    pub cost: StepCost,
    /// Probability that the attempt actually repairs the unit.
    pub success: Probability,
    /// Maximum rework attempts before the unit is scrapped.
    pub max_attempts: u32,
}

impl Rework {
    /// Create a rework policy.
    pub fn new(cost: StepCost, success: Probability, max_attempts: u32) -> Rework {
        Rework {
            cost,
            success,
            max_attempts,
        }
    }
}

/// What happens to units failing a test.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FailAction {
    /// Scrap the unit; its accumulated cost is booked as yield loss.
    #[default]
    Scrap,
    /// Attempt repair, then re-test; scrapped after `max_attempts`.
    Rework(Rework),
}

/// A test stage with finite fault coverage.
///
/// Defective units are detected with probability `coverage`; undetected
/// defectives ("escapes") continue down the line and may ship.
///
/// # Examples
///
/// ```
/// use ipass_moe::{FailAction, StepCost, Test};
/// use ipass_units::{Money, Probability};
///
/// let t = Test::new("functional test")
///     .with_cost(StepCost::fixed(Money::new(10.0)))
///     .with_coverage(Probability::new(0.99)?)
///     .on_fail(FailAction::Scrap);
/// assert_eq!(t.coverage().percent(), 99.0);
/// # Ok::<(), ipass_units::ProbabilityError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Test {
    name: String,
    cost: StepCost,
    coverage: Probability,
    on_fail: FailAction,
}

impl Test {
    /// Create a free test with perfect coverage that scraps failures.
    pub fn new(name: impl Into<String>) -> Test {
        Test {
            name: name.into(),
            cost: StepCost::ZERO,
            coverage: Probability::ONE,
            on_fail: FailAction::Scrap,
        }
    }

    /// Set the cost per unit tested (paid again on re-test after rework).
    pub fn with_cost(mut self, cost: StepCost) -> Test {
        self.cost = cost;
        self
    }

    /// Set the fault coverage.
    pub fn with_coverage(mut self, coverage: Probability) -> Test {
        self.coverage = coverage;
        self
    }

    /// Set the fail routing.
    pub fn on_fail(mut self, action: FailAction) -> Test {
        self.on_fail = action;
        self
    }

    /// The stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The test cost.
    pub fn cost(&self) -> &StepCost {
        &self.cost
    }

    /// The fault coverage.
    pub fn coverage(&self) -> Probability {
        self.coverage
    }

    /// The fail routing.
    pub fn fail_action(&self) -> &FailAction {
        &self.on_fail
    }
}

/// A stage in a production [`Line`](crate::Line).
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// Value-adding process.
    Process(Process),
    /// Assembly of parts or subassemblies.
    Attach(Attach),
    /// Inspection with finite fault coverage.
    Test(Test),
}

impl Stage {
    /// The stage's display name.
    pub fn name(&self) -> &str {
        match self {
            Stage::Process(p) => p.name(),
            Stage::Attach(a) => a.name(),
            Stage::Test(t) => t.name(),
        }
    }
}

impl From<Process> for Stage {
    fn from(p: Process) -> Stage {
        Stage::Process(p)
    }
}

impl From<Attach> for Stage {
    fn from(a: Attach) -> Stage {
        Stage::Attach(a)
    }
}

impl From<Test> for Stage {
    fn from(t: Test) -> Stage {
        Stage::Test(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::part::Part;
    use ipass_units::Money;

    #[test]
    fn process_builder() {
        let p = Process::new("reroute")
            .with_cost(StepCost::fixed(Money::new(1.0)))
            .with_yield(YieldModel::percent(99.0))
            .with_category(CostCategory::Substrate);
        assert_eq!(p.name(), "reroute");
        assert_eq!(p.cost().total(), Money::new(1.0));
        assert_eq!(p.category(), CostCategory::Substrate);
        assert!((p.process_yield().value().value() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn attach_accumulates_inputs() {
        let a = Attach::new("smd mount")
            .input(Part::new("kit", CostCategory::PassiveParts), 112)
            .with_cost(StepCost::per_item(Money::new(0.01), 112));
        assert_eq!(a.inputs().len(), 1);
        assert_eq!(a.inputs()[0].1, 112);
        assert_eq!(a.cost().total(), Money::new(1.12));
    }

    #[test]
    fn test_defaults_are_safe() {
        let t = Test::new("t");
        assert!(t.coverage().is_certain());
        assert_eq!(*t.fail_action(), FailAction::Scrap);
    }

    #[test]
    fn stage_names() {
        assert_eq!(Stage::from(Process::new("p")).name(), "p");
        assert_eq!(Stage::from(Attach::new("a")).name(), "a");
        assert_eq!(Stage::from(Test::new("t")).name(), "t");
    }

    #[test]
    fn rework_policy() {
        let r = Rework::new(
            StepCost::fixed(Money::new(3.0)),
            Probability::new(0.6).unwrap(),
            2,
        );
        assert_eq!(r.max_attempts, 2);
        let action = FailAction::Rework(r);
        assert_ne!(action, FailAction::Scrap);
        assert_eq!(FailAction::default(), FailAction::Scrap);
    }
}
