//! Explicit AVX-512 kernels for the wide lanes (widths 16, 32 and 64).
//!
//! The portable lane loops in [`super`] are written to auto-vectorize,
//! but LLVM compiles the per-step draw loop conservatively: it inserts
//! runtime alias checks against the op slice on every step and streams
//! `alive`/`consumed` through the stack instead of keeping them in
//! vector registers across steps. Spelling the mix64-heavy loops — the
//! yield-step run, the test-coverage pass and the stream-key
//! initialization — with explicit intrinsics pins the intended
//! codegen: a lane is `NG` `zmm` registers (two for width 16, four for
//! width 32, eight for width 64), occupancy masks (`entered`/`alive`/`fail`) live in mask
//! registers, and memory traffic happens once per run, not once per
//! step. The group loops have const trip counts, so LLVM fully unrolls
//! them.
//!
//! Everything here is *integer* arithmetic — the same adds, multiplies,
//! shifts, xors and compares as the portable loops, element for
//! element — so the results are bit-identical by construction and the
//! portable path remains the reference (and the fallback for other
//! widths and non-x86 builds).
//!
//! Only compiled when `avx512dq`/`avx512vl` are statically enabled
//! (e.g. `-C target-cpu=native` on a machine with them): `vpmullq`
//! (64-bit lane-wise multiply, the backbone of the SplitMix64
//! finalizer) is AVX-512DQ, the masked compares are AVX-512F.

use core::arch::x86_64::{
    __m512i, _mm512_add_epi64, _mm512_loadu_epi64, _mm512_mask_add_epi64,
    _mm512_mask_cmpge_epu64_mask, _mm512_mask_cmplt_epu64_mask, _mm512_mask_mov_epi64,
    _mm512_mask_set1_epi64, _mm512_mullo_epi64, _mm512_set1_epi64, _mm512_setzero_si512,
    _mm512_srli_epi64, _mm512_storeu_epi64, _mm512_test_epi64_mask, _mm512_xor_si512,
};

/// SplitMix64 finalizer multiplier #1 (matches `ipass_sim::rng`).
const C1: i64 = 0xBF58_476D_1CE4_E5B9_u64 as i64;
/// SplitMix64 finalizer multiplier #2.
const C2: i64 = 0x94D0_49BB_1331_11EB_u64 as i64;
/// The golden-ratio counter stride (`SimRng`'s `GOLDEN`).
const G: i64 = 0x9E37_79B9_7F4A_7C15_u64 as i64;

/// `i · GOLDEN` for the lane offsets (unit `base + i` streams at
/// `(base + i) · G + G = (base · G + G) + i · G`).
const IDX_G: [u64; 64] = {
    let mut a = [0u64; 64];
    let mut i = 0;
    while i < 64 {
        a[i] = (G as u64).wrapping_mul(i as u64);
        i += 1;
    }
    a
};

/// Steps per [`run_zmm`] call; longer runs loop in chunks of this.
pub(super) const STEP_CHUNK: usize = 32;

/// The full SplitMix64 finalizer (`mix64`) of eight lanes.
#[inline(always)]
unsafe fn mix64v(x: __m512i) -> __m512i {
    // SAFETY: caller guarantees avx512f/avx512dq (compile-time gated at
    // the module level).
    unsafe {
        let x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 30));
        let x = _mm512_mullo_epi64(x, _mm512_set1_epi64(C1));
        let x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 27));
        let x = _mm512_mullo_epi64(x, _mm512_set1_epi64(C2));
        _mm512_xor_si512(x, _mm512_srli_epi64(x, 31))
    }
}

/// `mix_to_u53` of eight lanes: the SplitMix64 finalizer, top 53 bits.
#[inline(always)]
unsafe fn mix53(x: __m512i) -> __m512i {
    // SAFETY: as above.
    unsafe { _mm512_srli_epi64(mix64v(x), 11) }
}

/// `SimRng::stream(seed, base + i).key` for the `8 · NG` lane units —
/// `mix64(seed ^ mix64((base + i) · G + G))`, written to both `key`
/// and `h` (a fresh stream's mix input is its key).
pub(super) fn keys_zmm<const NG: usize>(seed: u64, base: u64, key: &mut [u64], h: &mut [u64]) {
    debug_assert!(NG <= 8 && key.len() == 8 * NG && h.len() == 8 * NG);
    // SAFETY: unaligned loads/stores on in-bounds 8-element groups;
    // intrinsics statically available (module gate).
    unsafe {
        let m = base.wrapping_mul(G as u64).wrapping_add(G as u64);
        let mv = _mm512_set1_epi64(m as i64);
        let sv = _mm512_set1_epi64(seed as i64);
        let kp = key.as_mut_ptr().cast::<i64>();
        let hp = h.as_mut_ptr().cast::<i64>();
        let ip = IDX_G.as_ptr().cast::<i64>();
        for g in 0..NG {
            let u = _mm512_add_epi64(mv, _mm512_loadu_epi64(ip.add(8 * g)));
            let k = mix64v(_mm512_xor_si512(sv, mix64v(u)));
            _mm512_storeu_epi64(kp.add(8 * g), k);
            _mm512_storeu_epi64(hp.add(8 * g), k);
        }
    }
}

/// Evaluate `th.len()` consecutive yield steps for an `8 · NG`-unit
/// lane, entry mask to writeback.
///
/// Element-for-element identical to the portable run loop: units
/// neither defective nor scrapped enter; step `s` draws
/// `mix_to_u53(h[i] + s·G)`, a draw `>= th[s]` fails an alive unit,
/// every alive unit consumes one draw, and `newly[s]` receives the
/// number of fresh failures at step `s`. On return `h` has advanced by
/// `consumed · G` and `defective` absorbed the failures. Returns
/// `false` — with `newly` untouched and no writeback — when no unit
/// enters (the portable run skips such a lane wholesale).
pub(super) fn run_zmm<const NG: usize>(
    h: &mut [u64],
    defective: &mut [u64],
    scrapped: &[u64],
    th: &[u64],
    newly: &mut [u64],
) -> bool {
    debug_assert!(th.len() <= STEP_CHUNK && newly.len() >= th.len());
    debug_assert!(h.len() == 8 * NG && defective.len() == 8 * NG && scrapped.len() == 8 * NG);
    // SAFETY: unaligned loads/stores on in-bounds 8-element groups; the
    // intrinsics are statically available (module gate).
    unsafe {
        let hp = h.as_mut_ptr().cast::<i64>();
        let dp = defective.as_mut_ptr().cast::<i64>();
        let sp = scrapped.as_ptr().cast::<i64>();
        let mut hv = [_mm512_setzero_si512(); NG];
        let mut dv = [_mm512_setzero_si512(); NG];
        let mut ek = [0u8; NG];
        let mut any = 0u8;
        for g in 0..NG {
            hv[g] = _mm512_loadu_epi64(hp.add(8 * g));
            dv[g] = _mm512_loadu_epi64(dp.add(8 * g));
            let sv = _mm512_loadu_epi64(sp.add(8 * g));
            // Flag words are 0 / ALL; `test` turns them into occupancy
            // masks. entered = !(defective | scrapped).
            ek[g] = !(_mm512_test_epi64_mask(dv[g], dv[g]) | _mm512_test_epi64_mask(sv, sv));
            any |= ek[g];
        }
        if any == 0 {
            return false;
        }
        let mut ak = ek;
        let mut cv = [_mm512_setzero_si512(); NG];
        let one = _mm512_set1_epi64(1);
        let gv = _mm512_set1_epi64(G);
        let mut sgv = _mm512_setzero_si512();
        for (s, &t) in th.iter().enumerate() {
            let tv = _mm512_set1_epi64(t as i64);
            let mut fresh = 0u32;
            for g in 0..NG {
                let draw = mix53(_mm512_add_epi64(hv[g], sgv));
                // fail = alive & (draw >= t).
                let f = _mm512_mask_cmpge_epu64_mask(ak[g], draw, tv);
                // Alive units consume one draw.
                cv[g] = _mm512_mask_add_epi64(cv[g], ak[g], cv[g], one);
                ak[g] &= !f;
                fresh += f.count_ones();
            }
            newly[s] = u64::from(fresh);
            sgv = _mm512_add_epi64(sgv, gv);
        }
        // h advances by `consumed · G`; failures enter `defective`.
        for g in 0..NG {
            let h2 = _mm512_add_epi64(hv[g], _mm512_mullo_epi64(cv[g], gv));
            _mm512_storeu_epi64(hp.add(8 * g), h2);
            _mm512_storeu_epi64(
                dp.add(8 * g),
                _mm512_mask_set1_epi64(dv[g], ek[g] & !ak[g], -1),
            );
        }
        true
    }
}

/// The threshold branch of a `TestScrap` coverage pass for an
/// `8 · NG`-unit lane: defective, not-yet-scrapped units draw
/// `mix_to_u53(h[i])`; a draw `< t` is caught (scrapped at op `jj`);
/// exactly the checking units advance `h` by one stride. Returns the
/// number caught.
pub(super) fn cover_zmm<const NG: usize>(
    h: &mut [u64],
    t: u64,
    jj: u64,
    defective: &[u64],
    scrapped: &mut [u64],
    scrap_op: &mut [u64],
) -> u64 {
    debug_assert!(h.len() == 8 * NG && defective.len() == 8 * NG);
    debug_assert!(scrapped.len() == 8 * NG && scrap_op.len() == 8 * NG);
    // SAFETY: as in `run_zmm`.
    unsafe {
        let hp = h.as_mut_ptr().cast::<i64>();
        let dp = defective.as_ptr().cast::<i64>();
        let sp = scrapped.as_mut_ptr().cast::<i64>();
        let op = scrap_op.as_mut_ptr().cast::<i64>();
        let tv = _mm512_set1_epi64(t as i64);
        let gv = _mm512_set1_epi64(G);
        let jv = _mm512_set1_epi64(jj as i64);
        let mut caught_n = 0u32;
        for g in 0..NG {
            let hv = _mm512_loadu_epi64(hp.add(8 * g));
            let dv = _mm512_loadu_epi64(dp.add(8 * g));
            let sv = _mm512_loadu_epi64(sp.add(8 * g));
            // Only defective, unscrapped units draw coverage.
            let check = _mm512_test_epi64_mask(dv, dv) & !_mm512_test_epi64_mask(sv, sv);
            let draw = mix53(hv);
            // caught = check & (draw < t).
            let caught = _mm512_mask_cmplt_epu64_mask(check, draw, tv);
            // h advances one stride exactly for the units that drew.
            _mm512_storeu_epi64(hp.add(8 * g), _mm512_mask_add_epi64(hv, check, hv, gv));
            _mm512_storeu_epi64(sp.add(8 * g), _mm512_mask_set1_epi64(sv, caught, -1));
            let so = _mm512_loadu_epi64(op.add(8 * g));
            _mm512_storeu_epi64(op.add(8 * g), _mm512_mask_mov_epi64(so, caught, jv));
            caught_n += caught.count_ones();
        }
        u64::from(caught_n)
    }
}
