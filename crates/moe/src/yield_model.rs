//! Yield models: how likely a part or stage is to leave the unit
//! defect-free.

use ipass_units::{Area, Probability};
use std::fmt;

/// Classic wafer/substrate defect-density yield models.
///
/// All take the product `λ = A·D₀` of area (cm²) and defect density
/// (defects/cm²) and return the probability that a substrate carries no
/// killer defect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefectModel {
    /// `Y = e^{-λ}` — random, uncorrelated defects.
    Poisson,
    /// `Y = ((1 − e^{-λ})/λ)²` — Murphy's bell-shaped compromise.
    Murphy,
    /// `Y = 1/(1 + λ)` — Seeds' model for strongly clustered defects.
    Seeds,
    /// `Y = (1 + λ/α)^{-α}` — negative binomial with cluster factor `α`.
    NegativeBinomial {
        /// Cluster factor; `α → ∞` recovers Poisson, `α = 1` recovers
        /// Seeds.
        alpha: f64,
    },
}

impl DefectModel {
    /// Evaluate the model at `lambda = area · defect_density`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or NaN.
    pub fn yield_at(self, lambda: f64) -> Probability {
        assert!(
            lambda >= 0.0 && !lambda.is_nan(),
            "lambda must be non-negative, got {lambda}"
        );
        let y = match self {
            DefectModel::Poisson => (-lambda).exp(),
            DefectModel::Murphy => {
                if lambda == 0.0 {
                    1.0
                } else {
                    let t = (1.0 - (-lambda).exp()) / lambda;
                    t * t
                }
            }
            DefectModel::Seeds => 1.0 / (1.0 + lambda),
            DefectModel::NegativeBinomial { alpha } => {
                assert!(alpha > 0.0, "cluster factor must be positive, got {alpha}");
                (1.0 + lambda / alpha).powf(-alpha)
            }
        };
        Probability::clamped(y)
    }
}

/// How a part or stage affects the defect state of the unit.
///
/// # Examples
///
/// ```
/// use ipass_moe::{DefectModel, YieldModel};
/// use ipass_units::{Area, Probability};
///
/// // 212 wire bonds, each 99.99 % reliable:
/// let wb = YieldModel::per_item(Probability::new(0.9999)?, 212);
/// assert!((wb.value().value() - 0.9999f64.powi(212)).abs() < 1e-12);
///
/// // MCM-D substrate, 0.05 defects/cm² Poisson over 8.1 cm²:
/// let sub = YieldModel::defect_density(0.05, Area::from_cm2(8.1), DefectModel::Poisson);
/// assert!((sub.value().value() - (-0.405f64).exp()).abs() < 1e-12);
/// # Ok::<(), ipass_units::ProbabilityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum YieldModel {
    /// Never introduces a defect.
    #[default]
    Certain,
    /// A flat per-step (or per-part) probability of staying good.
    Flat(Probability),
    /// `each^items`: independent per-item yield (bonds, placements).
    PerItem {
        /// Yield of one item.
        each: Probability,
        /// Number of items.
        items: u32,
    },
    /// `per_cm2^area`: compounded per-area yield, the alternative reading
    /// of the paper's Table 2 "yield per cm²".
    PerArea {
        /// Yield of one cm².
        per_cm2: Probability,
        /// Area over which to compound.
        area: Area,
    },
    /// Defect-density model over an area.
    DefectDensity {
        /// Killer defects per cm².
        defects_per_cm2: f64,
        /// Substrate area.
        area: Area,
        /// Statistical model translating `λ` into yield.
        model: DefectModel,
    },
}

impl YieldModel {
    /// A flat yield.
    pub fn flat(p: Probability) -> YieldModel {
        YieldModel::Flat(p)
    }

    /// A flat yield given as a percentage (e.g. `99.9`).
    ///
    /// # Panics
    ///
    /// Panics when the percentage is outside `[0, 100]`; yield tables are
    /// static data, so a bad entry is a programming error.
    pub fn percent(percent: f64) -> YieldModel {
        YieldModel::Flat(
            Probability::from_percent(percent)
                .unwrap_or_else(|e| panic!("invalid yield percentage: {e}")),
        )
    }

    /// Independent per-item yield.
    pub fn per_item(each: Probability, items: u32) -> YieldModel {
        YieldModel::PerItem { each, items }
    }

    /// Compounded per-area yield.
    pub fn per_area(per_cm2: Probability, area: Area) -> YieldModel {
        YieldModel::PerArea { per_cm2, area }
    }

    /// Defect-density yield over an area.
    pub fn defect_density(defects_per_cm2: f64, area: Area, model: DefectModel) -> YieldModel {
        assert!(
            defects_per_cm2 >= 0.0 && !defects_per_cm2.is_nan(),
            "defect density must be non-negative, got {defects_per_cm2}"
        );
        YieldModel::DefectDensity {
            defects_per_cm2,
            area,
            model,
        }
    }

    /// The resulting probability that no defect is introduced.
    pub fn value(&self) -> Probability {
        match *self {
            YieldModel::Certain => Probability::ONE,
            YieldModel::Flat(p) => p,
            YieldModel::PerItem { each, items } => each.powi(items),
            YieldModel::PerArea { per_cm2, area } => per_cm2.powf(area.cm2()),
            YieldModel::DefectDensity {
                defects_per_cm2,
                area,
                model,
            } => model.yield_at(defects_per_cm2 * area.cm2()),
        }
    }
}

impl fmt::Display for YieldModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn certain_and_flat() {
        assert!(YieldModel::Certain.value().is_certain());
        assert_eq!(YieldModel::flat(p(0.9)).value().value(), 0.9);
        assert!((YieldModel::percent(99.9).value().value() - 0.999).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid yield percentage")]
    fn percent_rejects_out_of_range() {
        let _ = YieldModel::percent(120.0);
    }

    #[test]
    fn per_item_compounds() {
        let y = YieldModel::per_item(p(0.9999), 112).value();
        assert!((y.value() - 0.9999f64.powi(112)).abs() < 1e-12);
        assert!(YieldModel::per_item(p(0.5), 0).value().is_certain());
    }

    #[test]
    fn per_area_compounds() {
        let y = YieldModel::per_area(p(0.99), Area::from_cm2(8.1)).value();
        assert!((y.value() - 0.99f64.powf(8.1)).abs() < 1e-12);
    }

    #[test]
    fn defect_models_at_zero_lambda_are_unity() {
        for m in [
            DefectModel::Poisson,
            DefectModel::Murphy,
            DefectModel::Seeds,
            DefectModel::NegativeBinomial { alpha: 2.0 },
        ] {
            assert!(m.yield_at(0.0).is_certain(), "{m:?}");
        }
    }

    #[test]
    fn defect_model_ordering_at_moderate_lambda() {
        // For the same λ the models are ordered: Poisson is the most
        // pessimistic, Seeds the most optimistic, Murphy in between.
        let l = 1.0;
        let poisson = DefectModel::Poisson.yield_at(l).value();
        let murphy = DefectModel::Murphy.yield_at(l).value();
        let seeds = DefectModel::Seeds.yield_at(l).value();
        assert!(poisson < murphy && murphy < seeds);
    }

    #[test]
    fn negative_binomial_limits() {
        let l = 0.8;
        let nb_large = DefectModel::NegativeBinomial { alpha: 1e9 }
            .yield_at(l)
            .value();
        let poisson = DefectModel::Poisson.yield_at(l).value();
        assert!((nb_large - poisson).abs() < 1e-6);
        let nb_one = DefectModel::NegativeBinomial { alpha: 1.0 }
            .yield_at(l)
            .value();
        let seeds = DefectModel::Seeds.yield_at(l).value();
        assert!((nb_one - seeds).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_rejected() {
        let _ = DefectModel::Poisson.yield_at(-0.1);
    }

    #[test]
    fn display_shows_percent() {
        assert_eq!(YieldModel::percent(93.3).to_string(), "93.30%");
    }

    proptest! {
        #[test]
        fn all_models_stay_in_range(lambda in 0.0f64..50.0, alpha in 0.1f64..10.0) {
            for m in [
                DefectModel::Poisson,
                DefectModel::Murphy,
                DefectModel::Seeds,
                DefectModel::NegativeBinomial { alpha },
            ] {
                let y = m.yield_at(lambda).value();
                prop_assert!((0.0..=1.0).contains(&y), "{:?} at {} gave {}", m, lambda, y);
            }
        }

        #[test]
        fn yield_decreases_with_area(d in 0.001f64..1.0, a1 in 0.1f64..10.0, extra in 0.1f64..10.0) {
            let small = YieldModel::defect_density(d, Area::from_cm2(a1), DefectModel::Poisson).value();
            let large = YieldModel::defect_density(d, Area::from_cm2(a1 + extra), DefectModel::Poisson).value();
            prop_assert!(large.value() <= small.value());
        }
    }
}
