//! Seeded Monte Carlo engine: routes individual units through the flow,
//! the way the paper describes MOE ("yield figures are translated into
//! faults using Monte Carlo simulation").
//!
//! The engine runs on the [`ipass_sim`] substrate: every started unit
//! draws from its own counter-based random stream and units fold into
//! chunk accumulators that merge in fixed order, so a seeded run
//! produces **bit-identical** results for any [`SimOptions::threads`]
//! value — threads are a pure performance knob, not a semantic one.
//!
//! Since PR 2 the hot path no longer interprets the nested [`Line`]
//! object graph per unit: the line is compiled once into a flat
//! [`RoutingProgram`](crate::compile::RoutingProgram) (see
//! [`crate::compile`]), and since PR 6 sub-line-free programs are
//! evaluated by the batched lane kernel (see [`crate::lane`]) — a lane
//! of [`SimOptions::lane_width`] units per op, bit-identical to the
//! scalar walk for every width. The original interpreter is kept below,
//! exposed through [`simulate_line_reference`], as the bit-exactness
//! oracle the property tests pin both kernels against.

use crate::compile::{RoutingProgram, Totals, NCAT};
use crate::cost::{CostCategory, CostVector};
use crate::error::FlowError;
use crate::labels::{self, InputLabels, LineLabels, StageLabels};
use crate::lane::LaneSampler;
use crate::line::Line;
use crate::part::AttachInput;
use crate::stage::{FailAction, Stage};
use ipass_obs::{Probe, Profiler, RunStats};
use ipass_sim::{BinomialTally, Executor, RunOptions, Sampler, SimRng, StopRule};
use ipass_units::Money;

/// Default retry budget when a nested line must deliver one passing
/// unit (see [`SimOptions::subassembly_retry_budget`]).
pub const DEFAULT_SUBASSEMBLY_RETRY_BUDGET: u32 = 100_000;

/// Default lane width of the batched Monte Carlo kernel (see
/// [`SimOptions::lane_width`]). Width 64 is the widest kernel — eight
/// `zmm` register groups on AVX-512 builds — and measures fastest
/// across flow shapes; narrower lanes cost nothing to request on small
/// runs because partial lanes fall back to the scalar tail anyway.
pub const DEFAULT_LANE_WIDTH: usize = 64;

/// Options for a Monte Carlo run.
///
/// # Examples
///
/// ```
/// use ipass_moe::SimOptions;
///
/// let opts = SimOptions::new(50_000).with_seed(7).with_threads(2);
/// assert_eq!(opts.units, 50_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Number of carrier units to start.
    pub units: u64,
    /// RNG seed; equal seeds reproduce results for *any* thread count.
    pub seed: u64,
    /// Worker threads — a pure performance knob; results are
    /// bit-identical regardless.
    pub threads: usize,
    /// Retry budget when a nested line must deliver one passing unit;
    /// exhausting it fails the run with
    /// [`FlowError::SubassemblyStarved`].
    pub subassembly_retry_budget: u32,
    /// Lane width of the batched kernel — how many units the kernel
    /// routes per op on sub-line-free programs. Rounded down to the
    /// nearest supported width (powers of two up to 64; values below 1
    /// mean the scalar walk). Like `threads`, a pure performance knob:
    /// results are bit-identical for every width.
    pub lane_width: usize,
    /// Deterministic probe counting ([`Probe::OFF`] by default). When
    /// on, the run's [`SimSummary::stats`] snapshot carries RNG draw,
    /// op-by-kind and lane-occupancy counters, chunk-folded exactly
    /// like the results — bit-identical for any thread count. When off,
    /// every probe site is a dead predicted-false branch; the hot path
    /// pays nothing.
    pub probe: Probe,
}

impl SimOptions {
    /// Create options for `units` started units (seed 0, single thread,
    /// default lane width).
    pub fn new(units: u64) -> SimOptions {
        SimOptions {
            units,
            seed: 0,
            threads: 1,
            subassembly_retry_budget: DEFAULT_SUBASSEMBLY_RETRY_BUDGET,
            lane_width: DEFAULT_LANE_WIDTH,
            probe: Probe::OFF,
        }
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> SimOptions {
        self.seed = seed;
        self
    }

    /// Set the number of worker threads (minimum 1).
    pub fn with_threads(mut self, threads: usize) -> SimOptions {
        self.threads = threads.max(1);
        self
    }

    /// Set the subassembly retry budget.
    ///
    /// A budget of zero is rejected with
    /// [`FlowError::ZeroRetryBudget`] when the simulation runs — it is
    /// never silently bumped.
    pub fn with_retry_budget(mut self, budget: u32) -> SimOptions {
        self.subassembly_retry_budget = budget;
        self
    }

    /// Set the batched kernel's lane width (rounded down to the nearest
    /// supported width by [`effective_lane_width`]; `1` — or `0` — runs
    /// the scalar walk).
    ///
    /// [`effective_lane_width`]: crate::effective_lane_width
    pub fn with_lane_width(mut self, width: usize) -> SimOptions {
        self.lane_width = width;
        self
    }

    /// Enable (or disable) deterministic probe counting; see
    /// [`SimOptions::probe`].
    pub fn with_probe(mut self, probe: Probe) -> SimOptions {
        self.probe = probe;
        self
    }
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions::new(100_000)
    }
}

/// Extra Monte Carlo statistics beyond the [`CostReport`].
///
/// [`CostReport`]: crate::CostReport
#[derive(Debug, Clone, PartialEq)]
pub struct SimSummary {
    /// The cost report assembled from the simulated counts.
    pub report: crate::report::CostReport,
    /// Units scrapped anywhere in the flow (including subassemblies).
    pub scrapped: f64,
    /// Total rework attempts performed.
    pub rework_attempts: u64,
    /// Units produced by nested lines (consumed + scrapped).
    pub sub_units_built: u64,
    /// Whether an early-stopping rule ended the run before the full
    /// unit budget.
    pub stopped_early: bool,
    /// Deterministic probe counters — `Some` exactly when the run was
    /// probed ([`SimOptions::probe`]). Bit-identical for any thread
    /// count; the portable core ([`RunStats::invariant_core`]) is
    /// additionally invariant across lane widths.
    pub stats: Option<RunStats>,
}

/// Shipped-fraction confidence half width used by all samplers'
/// early-stopping hooks (the lane kernel, the interpreter oracle).
///
/// Wilson, not Wald: the Wald width is 0 while every unit so far
/// shipped (or scrapped), which would vacuously satisfy any stop rule
/// on a high-yield line.
pub(crate) fn shipped_half_width(acc: &Totals, z: f64) -> f64 {
    BinomialTally::from_f64_counts(acc.attempted as f64, acc.shipped).wilson_half_width(z)
}

/// Run the Monte Carlo simulation for a validated line (test-only
/// convenience: production callers go through the [`Flow`]'s cached
/// program and [`simulate_program`]).
///
/// [`Flow`]: crate::Flow
#[cfg(test)]
pub(crate) fn simulate_line(
    line: &Line,
    nre: Money,
    volume: u64,
    options: &SimOptions,
) -> Result<SimSummary, FlowError> {
    line.validate()?;
    let program = RoutingProgram::compile(line);
    simulate_program(&program, nre, volume, options, None)
}

/// Like [`simulate_line`], stopping early once the shipped-fraction
/// confidence interval is narrower than the rule's target.
#[cfg(test)]
pub(crate) fn simulate_line_adaptive(
    line: &Line,
    nre: Money,
    volume: u64,
    options: &SimOptions,
    stop: StopRule,
) -> Result<SimSummary, FlowError> {
    line.validate()?;
    let program = RoutingProgram::compile(line);
    simulate_program(&program, nre, volume, options, Some(stop))
}

/// Reject option combinations with no sound interpretation. Checked at
/// the run entry points (not only in the builder): the fields are
/// public, so builder validation alone could be bypassed with
/// struct-update syntax.
fn validate_options(options: &SimOptions) -> Result<(), FlowError> {
    if options.units == 0 {
        return Err(FlowError::NoUnits);
    }
    if options.subassembly_retry_budget == 0 {
        return Err(FlowError::ZeroRetryBudget);
    }
    Ok(())
}

/// Run a pre-compiled routing program (the cached-[`Flow`] hot path).
///
/// [`Flow`]: crate::Flow
pub(crate) fn simulate_program(
    program: &RoutingProgram,
    nre: Money,
    volume: u64,
    options: &SimOptions,
    stop: Option<StopRule>,
) -> Result<SimSummary, FlowError> {
    simulate_program_profiled(program, nre, volume, options, stop, None)
}

/// [`simulate_program`] with an optional wall-clock profiler: the
/// executor records one `"chunk"` span per completed chunk. Profiling
/// never touches the deterministic plane — the summary (stats included)
/// is bit-identical with and without it.
pub(crate) fn simulate_program_profiled(
    program: &RoutingProgram,
    nre: Money,
    volume: u64,
    options: &SimOptions,
    stop: Option<StopRule>,
    profiler: Option<&Profiler>,
) -> Result<SimSummary, FlowError> {
    validate_options(options)?;
    let sampler = LaneSampler::new(
        program,
        options.subassembly_retry_budget,
        options.lane_width,
        options.probe,
    );
    let executor = Executor::new(options.threads);
    let run_options = RunOptions { stop };
    let outcome = match profiler {
        Some(p) => {
            executor.run_batch_traced(&sampler, options.units, options.seed, &run_options, p)?
        }
        None => executor.run_batch_with(&sampler, options.units, options.seed, &run_options)?,
    };
    summarize(
        program.line_name(),
        program.names(),
        outcome.acc,
        nre,
        volume,
        outcome.stopped_early,
    )
}

/// Assemble the [`SimSummary`] from a merged accumulator (shared by the
/// kernel and the interpreter oracle, so their outputs are built
/// identically).
fn summarize(
    line_name: &str,
    names: &[String],
    totals: Totals,
    nre: Money,
    volume: u64,
    stopped_early: bool,
) -> Result<SimSummary, FlowError> {
    let started = totals.attempted as f64;
    if totals.shipped <= 0.0 {
        return Err(FlowError::NothingShipped {
            flow: line_name.to_owned(),
        });
    }
    let mut by_category = CostVector::new();
    for cat in CostCategory::ALL {
        let i = cat.index();
        by_category.book(
            cat,
            Money::new(totals.embodied_by_cat[i] + totals.scrap_by_cat[i]),
        );
    }
    let report = crate::report::CostReport::from_parts(
        line_name.to_owned(),
        started,
        totals.shipped,
        totals.good_shipped,
        Money::new(totals.embodied + totals.scrap_spend),
        Money::new(totals.embodied),
        by_category,
        nre,
        volume,
        labels::pareto(names, &totals.defects, started),
    );
    let stats = totals.probe.then(|| {
        let mut stats = RunStats::from_engine(totals.attempted, &totals.obs);
        stats.rework_attempts = totals.rework_attempts;
        stats.sub_units_built = totals.sub_units_built;
        stats
    });
    Ok(SimSummary {
        report,
        scrapped: totals.scrapped,
        rework_attempts: totals.rework_attempts,
        sub_units_built: totals.sub_units_built,
        stopped_early,
        stats,
    })
}

// ---------------------------------------------------------------------
// The interpreter oracle: the original (PR 1) object-graph engine, kept
// verbatim so property tests can pin the compiled kernel's results —
// every draw, every floating-point sum — against it.
// ---------------------------------------------------------------------

/// The production line as an [`ipass_sim`] sampler: one sample routes
/// one carrier unit through the (possibly nested) line object graph.
struct LineSampler<'a> {
    line: &'a Line,
    labels: &'a LineLabels,
    n_labels: usize,
    retry_budget: u32,
}

impl Sampler for LineSampler<'_> {
    type Acc = Totals;
    type Error = FlowError;

    fn make_acc(&self) -> Totals {
        Totals::new(self.n_labels)
    }

    fn sample(&self, _unit: u64, rng: &mut SimRng, totals: &mut Totals) -> Result<(), FlowError> {
        totals.attempted += 1;
        if let Some(unit) = produce_unit(self.line, self.labels, rng, totals, self.retry_budget)? {
            totals.ship(unit.cost, &unit.by_cat, unit.defective);
        }
        Ok(())
    }

    fn merge(&self, into: &mut Totals, from: Totals) {
        into.merge(&from);
    }

    fn ci_half_width(&self, acc: &Totals, z: f64) -> Option<f64> {
        Some(shipped_half_width(acc, z))
    }
}

/// Reference implementation: simulate by interpreting the line object
/// graph per unit (the pre-compilation engine).
///
/// Kept as the bit-exactness oracle for the compiled kernel; see
/// `crates/moe/tests/kernel_oracle.rs`. Slower than [`Flow::simulate`]
/// — do not use it for production runs.
///
/// [`Flow::simulate`]: crate::Flow::simulate
///
/// # Errors
///
/// Same contract as [`Flow::simulate`](crate::Flow::simulate).
#[doc(hidden)]
pub fn simulate_line_reference(
    line: &Line,
    nre: Money,
    volume: u64,
    options: &SimOptions,
    stop: Option<StopRule>,
) -> Result<SimSummary, FlowError> {
    line.validate()?;
    validate_options(options)?;
    let mut names = Vec::new();
    let line_labels = labels::index_line(line, "", &mut names);
    let sampler = LineSampler {
        line,
        labels: &line_labels,
        n_labels: names.len(),
        retry_budget: options.subassembly_retry_budget,
    };
    let outcome = Executor::new(options.threads).run_with(
        &sampler,
        options.units,
        options.seed,
        &RunOptions { stop },
    )?;
    summarize(
        line.name(),
        &names,
        outcome.acc,
        nre,
        volume,
        outcome.stopped_early,
    )
}

#[derive(Debug, Clone)]
struct Unit {
    cost: f64,
    by_cat: [f64; NCAT],
    defective: bool,
}

impl Unit {
    fn add_cost(&mut self, amount: f64, category: CostCategory) {
        self.cost += amount;
        self.by_cat[category.index()] += amount;
    }
}

/// Route one unit through `line`. `Ok(None)` means the unit was scrapped
/// (already booked into `totals`).
fn produce_unit(
    line: &Line,
    line_labels: &LineLabels,
    rng: &mut SimRng,
    totals: &mut Totals,
    retry_budget: u32,
) -> Result<Option<Unit>, FlowError> {
    let carrier = line.carrier();
    let mut unit = Unit {
        cost: 0.0,
        by_cat: [0.0; NCAT],
        defective: false,
    };
    unit.add_cost(carrier.cost().total().units(), carrier.category());
    if !rng.bernoulli(carrier.incoming_yield().value().value()) {
        unit.defective = true;
        totals.defects[line_labels.carrier] += 1.0;
    }

    for (stage, stage_labels) in line.stages().iter().zip(line_labels.stages.iter()) {
        match (stage, stage_labels) {
            (Stage::Process(p), StageLabels::Process(label)) => {
                unit.add_cost(p.cost().total().units(), p.category());
                if !unit.defective && !rng.bernoulli(p.process_yield().value().value()) {
                    unit.defective = true;
                    totals.defects[*label] += 1.0;
                }
            }
            (Stage::Attach(a), StageLabels::Attach { op, inputs }) => {
                unit.add_cost(a.cost().total().units(), a.category());
                if !unit.defective && !rng.bernoulli(a.attach_yield().value().value()) {
                    unit.defective = true;
                    totals.defects[*op] += 1.0;
                }
                for ((input, qty), input_labels) in a.inputs().iter().zip(inputs.iter()) {
                    match (input, input_labels) {
                        (AttachInput::Part(part), InputLabels::Part(label)) => {
                            let q = *qty as f64;
                            unit.add_cost(q * part.cost().total().units(), part.category());
                            if !unit.defective {
                                let all_good = part.incoming_yield().value().value().powf(q);
                                if !rng.bernoulli(all_good) {
                                    unit.defective = true;
                                    totals.defects[*label] += 1.0;
                                }
                            }
                        }
                        (AttachInput::Line(sub), InputLabels::Line(sub_labels)) => {
                            for _ in 0..*qty {
                                let sub_unit =
                                    produce_passing(sub, sub_labels, rng, totals, retry_budget)?;
                                unit.cost += sub_unit.cost;
                                for (a_, b) in unit.by_cat.iter_mut().zip(sub_unit.by_cat.iter()) {
                                    *a_ += *b;
                                }
                                if sub_unit.defective {
                                    unit.defective = true;
                                    // The escape was already attributed inside
                                    // the sub-line's own labels.
                                }
                            }
                        }
                        _ => unreachable!("label map mismatch"),
                    }
                }
            }
            (Stage::Test(t), StageLabels::Test) => {
                unit.add_cost(t.cost().total().units(), CostCategory::Test);
                if unit.defective && rng.bernoulli(t.coverage().value()) {
                    // Caught.
                    match t.fail_action() {
                        FailAction::Scrap => {
                            totals.scrap(unit.cost, &unit.by_cat);
                            return Ok(None);
                        }
                        FailAction::Rework(rework) => {
                            let mut recovered = false;
                            for _ in 0..rework.max_attempts {
                                totals.rework_attempts += 1;
                                unit.add_cost(rework.cost.total().units(), CostCategory::Other);
                                unit.add_cost(t.cost().total().units(), CostCategory::Test);
                                if rng.bernoulli(rework.success.value()) {
                                    unit.defective = false;
                                    recovered = true;
                                    break;
                                }
                                if !rng.bernoulli(t.coverage().value()) {
                                    // Escaped on re-test: continues defective.
                                    recovered = true;
                                    break;
                                }
                            }
                            if !recovered {
                                totals.scrap(unit.cost, &unit.by_cat);
                                return Ok(None);
                            }
                        }
                    }
                }
            }
            _ => unreachable!("label map mismatch"),
        }
    }
    Ok(Some(unit))
}

/// Keep producing sub-units until one passes the nested line.
fn produce_passing(
    line: &Line,
    line_labels: &LineLabels,
    rng: &mut SimRng,
    totals: &mut Totals,
    retry_budget: u32,
) -> Result<Unit, FlowError> {
    for _ in 0..retry_budget {
        totals.sub_units_built += 1;
        if let Some(unit) = produce_unit(line, line_labels, rng, totals, retry_budget)? {
            return Ok(unit);
        }
    }
    Err(FlowError::SubassemblyStarved {
        line: line.name().to_owned(),
        attempts: retry_budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StepCost;
    use crate::part::Part;
    use crate::stage::{Attach, Process, Test};
    use crate::yield_model::YieldModel;
    use ipass_units::Probability;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn simple_line() -> Line {
        Line::builder(
            "l",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(2.0))),
        )
        .process(
            Process::new("p")
                .with_cost(StepCost::fixed(Money::new(1.0)))
                .with_yield(YieldModel::flat(p(0.9))),
        )
        .test(
            Test::new("t")
                .with_cost(StepCost::fixed(Money::new(0.5)))
                .with_coverage(p(0.99)),
        )
        .build()
        .unwrap()
    }

    #[test]
    fn zero_units_rejected() {
        let err = simulate_line(&simple_line(), Money::ZERO, 1, &SimOptions::new(0)).unwrap_err();
        assert_eq!(err, FlowError::NoUnits);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let opts = SimOptions::new(20_000).with_seed(42);
        let a = simulate_line(&simple_line(), Money::ZERO, 1, &opts).unwrap();
        let b = simulate_line(&simple_line(), Money::ZERO, 1, &opts).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.scrapped, b.scrapped);
    }

    #[test]
    fn thread_count_is_a_pure_performance_knob() {
        let line = simple_line();
        let single = simulate_line(
            &line,
            Money::ZERO,
            1,
            &SimOptions::new(30_000).with_seed(42).with_threads(1),
        )
        .unwrap();
        for threads in [2, 4, 8] {
            let multi = simulate_line(
                &line,
                Money::ZERO,
                1,
                &SimOptions::new(30_000).with_seed(42).with_threads(threads),
            )
            .unwrap();
            assert_eq!(single, multi, "threads = {threads}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = simulate_line(
            &simple_line(),
            Money::ZERO,
            1,
            &SimOptions::new(20_000).with_seed(1),
        )
        .unwrap();
        let b = simulate_line(
            &simple_line(),
            Money::ZERO,
            1,
            &SimOptions::new(20_000).with_seed(2),
        )
        .unwrap();
        assert_ne!(a.report.shipped(), b.report.shipped());
    }

    #[test]
    fn kernel_matches_interpreter_on_simple_line() {
        let line = simple_line();
        let opts = SimOptions::new(50_000).with_seed(17);
        let kernel = simulate_line(&line, Money::new(10.0), 100, &opts).unwrap();
        let oracle = simulate_line_reference(&line, Money::new(10.0), 100, &opts, None).unwrap();
        assert_eq!(kernel, oracle);
    }

    #[test]
    fn mc_matches_analytic_on_simple_line() {
        let line = simple_line();
        let analytic = crate::analytic::analyze_line_reference(&line, Money::ZERO, 1).unwrap();
        let mc = simulate_line(
            &line,
            Money::ZERO,
            1,
            &SimOptions::new(200_000).with_seed(7),
        )
        .unwrap()
        .report;
        assert!((mc.shipped_fraction() - analytic.shipped_fraction()).abs() < 0.005);
        let rel = mc.final_cost_per_shipped().units() / analytic.final_cost_per_shipped().units();
        assert!((rel - 1.0).abs() < 0.01, "relative error {rel}");
    }

    #[test]
    fn mc_matches_analytic_with_subassembly() {
        let sub = Line::builder(
            "sub",
            Part::new("blank", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(4.0))),
        )
        .process(Process::new("fab").with_yield(YieldModel::flat(p(0.6))))
        .test(Test::new("probe"))
        .build()
        .unwrap();
        let line = Line::builder("main", Part::new("pcb", CostCategory::Substrate))
            .attach(Attach::new("join").input(sub, 2))
            .build()
            .unwrap();
        let analytic = crate::analytic::analyze_line_reference(&line, Money::ZERO, 1).unwrap();
        let sim = simulate_line(
            &line,
            Money::ZERO,
            1,
            &SimOptions::new(100_000).with_seed(3),
        )
        .unwrap();
        let mc = sim.report;
        assert!(sim.sub_units_built > 200_000); // retries needed at 60 % yield
        let rel = mc.final_cost_per_shipped().units() / analytic.final_cost_per_shipped().units();
        assert!((rel - 1.0).abs() < 0.01, "relative error {rel}");
        assert!(
            (mc.yield_loss_per_shipped().units() - analytic.yield_loss_per_shipped().units()).abs()
                < 0.2
        );
    }

    #[test]
    fn starved_subassembly_is_reported() {
        let sub = Line::builder("dead", Part::new("blank", CostCategory::Substrate))
            .process(Process::new("kill").with_yield(YieldModel::flat(p(0.0))))
            .test(Test::new("probe"))
            .build()
            .unwrap();
        let line = Line::builder("main", Part::new("pcb", CostCategory::Substrate))
            .attach(Attach::new("join").input(sub, 1))
            .build()
            .unwrap();
        let err = simulate_line(&line, Money::ZERO, 1, &SimOptions::new(10)).unwrap_err();
        assert!(matches!(err, FlowError::SubassemblyStarved { .. }));
    }

    #[test]
    fn retry_budget_is_configurable_and_reported() {
        // 60 % yield: 8 consecutive failures are rare but happen across
        // 10k units, so a budget of 8 starves; the generous default does
        // not.
        let sub = Line::builder("marginal", Part::new("blank", CostCategory::Substrate))
            .process(Process::new("fab").with_yield(YieldModel::flat(p(0.6))))
            .test(Test::new("probe"))
            .build()
            .unwrap();
        let line = Line::builder("main", Part::new("pcb", CostCategory::Substrate))
            .attach(Attach::new("join").input(sub, 1))
            .build()
            .unwrap();
        let tight = SimOptions::new(10_000).with_seed(1).with_retry_budget(8);
        match simulate_line(&line, Money::ZERO, 1, &tight) {
            Err(FlowError::SubassemblyStarved { line, attempts }) => {
                assert_eq!(line, "marginal");
                assert_eq!(attempts, 8);
            }
            other => panic!("expected starvation, got {other:?}"),
        }
        let roomy = SimOptions::new(10_000).with_seed(1);
        assert!(simulate_line(&line, Money::ZERO, 1, &roomy).is_ok());
    }

    #[test]
    fn zero_retry_budget_is_a_hard_error() {
        // Both engines reject a configured 0 instead of silently
        // bumping it to 1, even for flows without subassemblies.
        let opts = SimOptions::new(100).with_retry_budget(0);
        assert_eq!(
            simulate_line(&simple_line(), Money::ZERO, 1, &opts).unwrap_err(),
            FlowError::ZeroRetryBudget
        );
        assert_eq!(
            simulate_line_reference(&simple_line(), Money::ZERO, 1, &opts, None).unwrap_err(),
            FlowError::ZeroRetryBudget
        );
        // Struct-update bypass of the builder is caught too.
        let bypassed = SimOptions {
            subassembly_retry_budget: 0,
            ..SimOptions::new(100)
        };
        assert_eq!(
            simulate_line(&simple_line(), Money::ZERO, 1, &bypassed).unwrap_err(),
            FlowError::ZeroRetryBudget
        );
    }

    fn starving_line(sub_yield: f64) -> Line {
        let sub = Line::builder("feeder", Part::new("blank", CostCategory::Substrate))
            .process(Process::new("fab").with_yield(YieldModel::flat(p(sub_yield))))
            .test(Test::new("probe"))
            .build()
            .unwrap();
        Line::builder("main", Part::new("pcb", CostCategory::Substrate))
            .attach(Attach::new("join").input(sub, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn exhausted_budget_reports_line_and_attempts() {
        // The compiled kernel's starvation error carries the nested
        // line's name and the exact exhausted budget, and matches the
        // interpreter oracle's error bit for bit.
        let line = starving_line(0.5);
        let opts = SimOptions::new(5_000).with_seed(2).with_retry_budget(3);
        let kernel = simulate_line(&line, Money::ZERO, 1, &opts).unwrap_err();
        let oracle = simulate_line_reference(&line, Money::ZERO, 1, &opts, None).unwrap_err();
        assert_eq!(kernel, oracle);
        match kernel {
            FlowError::SubassemblyStarved { line, attempts } => {
                assert_eq!(line, "feeder");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected starvation, got {other:?}"),
        }
    }

    #[test]
    fn starvation_error_is_thread_deterministic() {
        // Which unit starves first is part of the deterministic
        // contract: the same error surfaces for every thread count.
        let line = starving_line(0.0);
        let opts = SimOptions::new(1_000).with_seed(5).with_retry_budget(4);
        let single = simulate_line(&line, Money::ZERO, 1, &opts).unwrap_err();
        for threads in [2, 4, 8] {
            let multi =
                simulate_line(&line, Money::ZERO, 1, &opts.with_threads(threads)).unwrap_err();
            assert_eq!(single, multi, "threads = {threads}");
        }
    }

    #[test]
    fn budget_of_one_is_honored_not_bumped() {
        // A budget of exactly 1 means "no retries": the first failed
        // sub-unit starves the consumer.
        let line = starving_line(0.5);
        let opts = SimOptions::new(1_000).with_seed(1).with_retry_budget(1);
        match simulate_line(&line, Money::ZERO, 1, &opts) {
            Err(FlowError::SubassemblyStarved { attempts, .. }) => assert_eq!(attempts, 1),
            other => panic!("expected starvation, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_stages_consume_no_draws_in_the_compiled_kernel() {
        // The draw-stream contract, pinned on the kernel itself: a
        // certain (p ≥ 1) costly stage and a free certain stage compile
        // to draw-free ops, so inserting them must not shift any later
        // draw — shipped counts and the defect pareto stay identical.
        let with_degenerates = Line::builder(
            "l",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(2.0))),
        )
        .process(Process::new("certain").with_cost(StepCost::fixed(Money::new(1.0))))
        .process(Process::new("free"))
        .process(
            Process::new("real")
                .with_cost(StepCost::fixed(Money::new(1.0)))
                .with_yield(YieldModel::flat(p(0.9))),
        )
        .test(Test::new("t").with_coverage(p(0.97)))
        .build()
        .unwrap();
        let without = Line::builder(
            "l",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(2.0))),
        )
        .process(
            Process::new("real")
                .with_cost(StepCost::fixed(Money::new(1.0)))
                .with_yield(YieldModel::flat(p(0.9))),
        )
        .test(Test::new("t").with_coverage(p(0.97)))
        .build()
        .unwrap();
        let opts = SimOptions::new(30_000).with_seed(13);
        let a = simulate_line(&with_degenerates, Money::ZERO, 1, &opts).unwrap();
        let b = simulate_line(&without, Money::ZERO, 1, &opts).unwrap();
        assert_eq!(a.report.shipped(), b.report.shipped());
        assert_eq!(a.report.good_shipped(), b.report.good_shipped());
        assert_eq!(a.scrapped, b.scrapped);
        assert_eq!(a.report.defect_pareto(), b.report.defect_pareto());
        // The certain stage's cost is booked deterministically on every
        // started unit.
        assert_eq!(
            a.report.total_spend().units(),
            b.report.total_spend().units() + 30_000.0
        );
    }

    #[test]
    fn condemn_op_consumes_no_draw_and_matches_oracle() {
        // A zero-yield stage compiles to Op::Condemn (no draw); the
        // coverage draw of the test is then taken for every unit. The
        // kernel must agree with the interpreter oracle bit for bit on
        // this degenerate path too.
        let line = Line::builder(
            "doomed",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(1.0))),
        )
        .process(Process::new("kill").with_yield(YieldModel::flat(p(0.0))))
        .test(Test::new("leaky").with_coverage(p(0.5)))
        .build()
        .unwrap();
        let opts = SimOptions::new(20_000).with_seed(3);
        let kernel = simulate_line(&line, Money::ZERO, 1, &opts).unwrap();
        let oracle = simulate_line_reference(&line, Money::ZERO, 1, &opts, None).unwrap();
        assert_eq!(kernel, oracle);
        // Every shipped unit is a coverage escape of the condemned mass.
        assert_eq!(kernel.report.good_shipped(), 0.0);
        assert!((kernel.report.shipped_fraction() - 0.5).abs() < 0.01);
    }

    #[test]
    fn adaptive_stops_early_and_is_deterministic() {
        let line = simple_line();
        let stop = StopRule::half_width_95(0.01);
        let opts = SimOptions::new(1_000_000).with_seed(9);
        let a = simulate_line_adaptive(&line, Money::ZERO, 1, &opts, stop).unwrap();
        assert!(a.stopped_early);
        assert!(
            a.report.started() < 1_000_000.0,
            "ran {}",
            a.report.started()
        );
        let b = simulate_line_adaptive(&line, Money::ZERO, 1, &opts.with_threads(4), stop).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn defect_pareto_tracks_sources() {
        let report = simulate_line(
            &simple_line(),
            Money::ZERO,
            1,
            &SimOptions::new(50_000).with_seed(5),
        )
        .unwrap()
        .report;
        let pareto = report.defect_pareto();
        assert_eq!(pareto.len(), 1);
        assert_eq!(pareto[0].0, "p");
        assert!((pareto[0].1 - 0.1).abs() < 0.01);
    }
}
