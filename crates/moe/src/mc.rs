//! Seeded Monte Carlo engine: routes individual units through the flow,
//! the way the paper describes MOE ("yield figures are translated into
//! faults using Monte Carlo simulation").

use crate::cost::{CostCategory, CostVector};
use crate::error::FlowError;
use crate::labels::{self, InputLabels, LineLabels, StageLabels};
use crate::line::Line;
use crate::part::AttachInput;
use crate::stage::{FailAction, Stage};
use ipass_units::Money;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NCAT: usize = CostCategory::COUNT;

/// Retry budget when a nested line must deliver one passing unit.
const SUBASSEMBLY_RETRY_BUDGET: u32 = 100_000;

/// Options for a Monte Carlo run.
///
/// # Examples
///
/// ```
/// use ipass_moe::SimOptions;
///
/// let opts = SimOptions::new(50_000).with_seed(7).with_threads(2);
/// assert_eq!(opts.units, 50_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Number of carrier units to start.
    pub units: u64,
    /// RNG seed; equal seeds (and thread counts) reproduce results.
    pub seed: u64,
    /// Worker threads; the unit budget is split evenly among them.
    pub threads: usize,
}

impl SimOptions {
    /// Create options for `units` started units (seed 0, single thread).
    pub fn new(units: u64) -> SimOptions {
        SimOptions {
            units,
            seed: 0,
            threads: 1,
        }
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> SimOptions {
        self.seed = seed;
        self
    }

    /// Set the number of worker threads (minimum 1).
    pub fn with_threads(mut self, threads: usize) -> SimOptions {
        self.threads = threads.max(1);
        self
    }
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions::new(100_000)
    }
}

/// Extra Monte Carlo statistics beyond the [`CostReport`].
///
/// [`CostReport`]: crate::CostReport
#[derive(Debug, Clone, PartialEq)]
pub struct SimSummary {
    /// The cost report assembled from the simulated counts.
    pub report: crate::report::CostReport,
    /// Units scrapped anywhere in the flow (including subassemblies).
    pub scrapped: f64,
    /// Total rework attempts performed.
    pub rework_attempts: u64,
    /// Units produced by nested lines (consumed + scrapped).
    pub sub_units_built: u64,
}

#[derive(Debug, Clone)]
struct Totals {
    shipped: f64,
    good_shipped: f64,
    embodied: f64,
    embodied_by_cat: [f64; NCAT],
    scrap_spend: f64,
    scrap_by_cat: [f64; NCAT],
    scrapped: f64,
    defects: Vec<f64>,
    rework_attempts: u64,
    sub_units_built: u64,
}

impl Totals {
    fn new(n_labels: usize) -> Totals {
        Totals {
            shipped: 0.0,
            good_shipped: 0.0,
            embodied: 0.0,
            embodied_by_cat: [0.0; NCAT],
            scrap_spend: 0.0,
            scrap_by_cat: [0.0; NCAT],
            scrapped: 0.0,
            defects: vec![0.0; n_labels],
            rework_attempts: 0,
            sub_units_built: 0,
        }
    }

    fn scrap(&mut self, unit: &Unit) {
        self.scrapped += 1.0;
        self.scrap_spend += unit.cost;
        for (a, b) in self.scrap_by_cat.iter_mut().zip(unit.by_cat.iter()) {
            *a += *b;
        }
    }

    fn merge(&mut self, other: &Totals) {
        self.shipped += other.shipped;
        self.good_shipped += other.good_shipped;
        self.embodied += other.embodied;
        self.scrap_spend += other.scrap_spend;
        self.scrapped += other.scrapped;
        self.rework_attempts += other.rework_attempts;
        self.sub_units_built += other.sub_units_built;
        for (a, b) in self.embodied_by_cat.iter_mut().zip(other.embodied_by_cat.iter()) {
            *a += *b;
        }
        for (a, b) in self.scrap_by_cat.iter_mut().zip(other.scrap_by_cat.iter()) {
            *a += *b;
        }
        for (a, b) in self.defects.iter_mut().zip(other.defects.iter()) {
            *a += *b;
        }
    }
}

#[derive(Debug, Clone)]
struct Unit {
    cost: f64,
    by_cat: [f64; NCAT],
    defective: bool,
}

impl Unit {
    fn add_cost(&mut self, amount: f64, category: CostCategory) {
        self.cost += amount;
        self.by_cat[category.index()] += amount;
    }
}

/// Run the Monte Carlo simulation for a validated line.
pub(crate) fn simulate_line(
    line: &Line,
    nre: Money,
    volume: u64,
    options: &SimOptions,
) -> Result<SimSummary, FlowError> {
    line.validate()?;
    if options.units == 0 {
        return Err(FlowError::NoUnits);
    }
    let mut names = Vec::new();
    let line_labels = labels::index_line(line, "", &mut names);

    let n_labels = names.len();
    let totals = if options.threads <= 1 {
        run_chunk(line, &line_labels, n_labels, options.units, options.seed)?
    } else {
        let threads = options.threads.min((options.units as usize).max(1));
        let per = options.units / threads as u64;
        let remainder = options.units % threads as u64;
        let mut partials: Vec<Result<Totals, FlowError>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let units = per + u64::from((t as u64) < remainder);
                let seed = options
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1));
                let line_labels = &line_labels;
                handles.push(
                    scope.spawn(move || run_chunk(line, line_labels, n_labels, units, seed)),
                );
            }
            for h in handles {
                partials.push(h.join().expect("simulation worker panicked"));
            }
        });
        let mut merged = Totals::new(n_labels);
        for partial in partials {
            merged.merge(&partial?);
        }
        merged
    };

    let started = options.units as f64;
    if totals.shipped <= 0.0 {
        return Err(FlowError::NothingShipped {
            flow: line.name().to_owned(),
        });
    }
    let mut by_category = CostVector::new();
    for cat in CostCategory::ALL {
        let i = cat.index();
        by_category.book(
            cat,
            Money::new(totals.embodied_by_cat[i] + totals.scrap_by_cat[i]),
        );
    }
    let report = crate::report::CostReport::from_parts(
        line.name().to_owned(),
        started,
        totals.shipped,
        totals.good_shipped,
        Money::new(totals.embodied + totals.scrap_spend),
        Money::new(totals.embodied),
        by_category,
        nre,
        volume,
        labels::pareto(&names, &totals.defects, started),
    );
    Ok(SimSummary {
        report,
        scrapped: totals.scrapped,
        rework_attempts: totals.rework_attempts,
        sub_units_built: totals.sub_units_built,
    })
}

fn run_chunk(
    line: &Line,
    line_labels: &LineLabels,
    n_labels: usize,
    units: u64,
    seed: u64,
) -> Result<Totals, FlowError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut totals = Totals::new(n_labels);
    for _ in 0..units {
        if let Some(unit) = produce_unit(line, line_labels, &mut rng, &mut totals)? {
            totals.shipped += 1.0;
            if !unit.defective {
                totals.good_shipped += 1.0;
            }
            totals.embodied += unit.cost;
            for (a, b) in totals.embodied_by_cat.iter_mut().zip(unit.by_cat.iter()) {
                *a += *b;
            }
        }
    }
    Ok(totals)
}

/// Route one unit through `line`. `Ok(None)` means the unit was scrapped
/// (already booked into `totals`).
fn produce_unit(
    line: &Line,
    line_labels: &LineLabels,
    rng: &mut StdRng,
    totals: &mut Totals,
) -> Result<Option<Unit>, FlowError> {
    let carrier = line.carrier();
    let mut unit = Unit {
        cost: 0.0,
        by_cat: [0.0; NCAT],
        defective: false,
    };
    unit.add_cost(carrier.cost().total().units(), carrier.category());
    if !bernoulli(rng, carrier.incoming_yield().value().value()) {
        unit.defective = true;
        totals.defects[line_labels.carrier] += 1.0;
    }

    for (stage, stage_labels) in line.stages().iter().zip(line_labels.stages.iter()) {
        match (stage, stage_labels) {
            (Stage::Process(p), StageLabels::Process(label)) => {
                unit.add_cost(p.cost().total().units(), p.category());
                if !unit.defective && !bernoulli(rng, p.process_yield().value().value()) {
                    unit.defective = true;
                    totals.defects[*label] += 1.0;
                }
            }
            (Stage::Attach(a), StageLabels::Attach { op, inputs }) => {
                unit.add_cost(a.cost().total().units(), a.category());
                if !unit.defective && !bernoulli(rng, a.attach_yield().value().value()) {
                    unit.defective = true;
                    totals.defects[*op] += 1.0;
                }
                for ((input, qty), input_labels) in a.inputs().iter().zip(inputs.iter()) {
                    match (input, input_labels) {
                        (AttachInput::Part(part), InputLabels::Part(label)) => {
                            let q = *qty as f64;
                            unit.add_cost(q * part.cost().total().units(), part.category());
                            if !unit.defective {
                                let all_good = part
                                    .incoming_yield()
                                    .value()
                                    .value()
                                    .powf(q);
                                if !bernoulli(rng, all_good) {
                                    unit.defective = true;
                                    totals.defects[*label] += 1.0;
                                }
                            }
                        }
                        (AttachInput::Line(sub), InputLabels::Line(sub_labels)) => {
                            for _ in 0..*qty {
                                let sub_unit =
                                    produce_passing(sub, sub_labels, rng, totals)?;
                                unit.cost += sub_unit.cost;
                                for (a_, b) in
                                    unit.by_cat.iter_mut().zip(sub_unit.by_cat.iter())
                                {
                                    *a_ += *b;
                                }
                                if sub_unit.defective {
                                    unit.defective = true;
                                    // The escape was already attributed inside
                                    // the sub-line's own labels.
                                }
                            }
                        }
                        _ => unreachable!("label map mismatch"),
                    }
                }
            }
            (Stage::Test(t), StageLabels::Test) => {
                unit.add_cost(t.cost().total().units(), CostCategory::Test);
                if unit.defective && bernoulli(rng, t.coverage().value()) {
                    // Caught.
                    match t.fail_action() {
                        FailAction::Scrap => {
                            totals.scrap(&unit);
                            return Ok(None);
                        }
                        FailAction::Rework(rework) => {
                            let mut recovered = false;
                            for _ in 0..rework.max_attempts {
                                totals.rework_attempts += 1;
                                unit.add_cost(rework.cost.total().units(), CostCategory::Other);
                                unit.add_cost(t.cost().total().units(), CostCategory::Test);
                                if bernoulli(rng, rework.success.value()) {
                                    unit.defective = false;
                                    recovered = true;
                                    break;
                                }
                                if !bernoulli(rng, t.coverage().value()) {
                                    // Escaped on re-test: continues defective.
                                    recovered = true;
                                    break;
                                }
                            }
                            if !recovered {
                                totals.scrap(&unit);
                                return Ok(None);
                            }
                        }
                    }
                }
            }
            _ => unreachable!("label map mismatch"),
        }
    }
    Ok(Some(unit))
}

/// Keep producing sub-units until one passes the nested line.
fn produce_passing(
    line: &Line,
    line_labels: &LineLabels,
    rng: &mut StdRng,
    totals: &mut Totals,
) -> Result<Unit, FlowError> {
    for _ in 0..SUBASSEMBLY_RETRY_BUDGET {
        totals.sub_units_built += 1;
        if let Some(unit) = produce_unit(line, line_labels, rng, totals)? {
            return Ok(unit);
        }
    }
    Err(FlowError::SubassemblyStarved {
        line: line.name().to_owned(),
        attempts: SUBASSEMBLY_RETRY_BUDGET,
    })
}

fn bernoulli(rng: &mut StdRng, p: f64) -> bool {
    if p >= 1.0 {
        true
    } else if p <= 0.0 {
        false
    } else {
        rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StepCost;
    use crate::part::Part;
    use crate::stage::{Attach, Process, Test};
    use crate::yield_model::YieldModel;
    use ipass_units::Probability;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn simple_line() -> Line {
        Line::builder(
            "l",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(2.0))),
        )
        .process(
            Process::new("p")
                .with_cost(StepCost::fixed(Money::new(1.0)))
                .with_yield(YieldModel::flat(p(0.9))),
        )
        .test(
            Test::new("t")
                .with_cost(StepCost::fixed(Money::new(0.5)))
                .with_coverage(p(0.99)),
        )
        .build()
        .unwrap()
    }

    #[test]
    fn zero_units_rejected() {
        let err = simulate_line(&simple_line(), Money::ZERO, 1, &SimOptions::new(0)).unwrap_err();
        assert_eq!(err, FlowError::NoUnits);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let opts = SimOptions::new(20_000).with_seed(42);
        let a = simulate_line(&simple_line(), Money::ZERO, 1, &opts).unwrap();
        let b = simulate_line(&simple_line(), Money::ZERO, 1, &opts).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.scrapped, b.scrapped);
    }

    #[test]
    fn different_seeds_differ() {
        let a = simulate_line(
            &simple_line(),
            Money::ZERO,
            1,
            &SimOptions::new(20_000).with_seed(1),
        )
        .unwrap();
        let b = simulate_line(
            &simple_line(),
            Money::ZERO,
            1,
            &SimOptions::new(20_000).with_seed(2),
        )
        .unwrap();
        assert_ne!(a.report.shipped(), b.report.shipped());
    }

    #[test]
    fn mc_matches_analytic_on_simple_line() {
        let line = simple_line();
        let analytic = crate::analytic::analyze_line(&line, Money::ZERO, 1).unwrap();
        let mc = simulate_line(&line, Money::ZERO, 1, &SimOptions::new(200_000).with_seed(7))
            .unwrap()
            .report;
        assert!((mc.shipped_fraction() - analytic.shipped_fraction()).abs() < 0.005);
        let rel = mc.final_cost_per_shipped().units() / analytic.final_cost_per_shipped().units();
        assert!((rel - 1.0).abs() < 0.01, "relative error {rel}");
    }

    #[test]
    fn mc_matches_analytic_with_subassembly() {
        let sub = Line::builder(
            "sub",
            Part::new("blank", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(4.0))),
        )
        .process(Process::new("fab").with_yield(YieldModel::flat(p(0.6))))
        .test(Test::new("probe"))
        .build()
        .unwrap();
        let line = Line::builder("main", Part::new("pcb", CostCategory::Substrate))
            .attach(Attach::new("join").input(sub, 2))
            .build()
            .unwrap();
        let analytic = crate::analytic::analyze_line(&line, Money::ZERO, 1).unwrap();
        let sim = simulate_line(&line, Money::ZERO, 1, &SimOptions::new(100_000).with_seed(3))
            .unwrap();
        let mc = sim.report;
        assert!(sim.sub_units_built > 200_000); // retries needed at 60 % yield
        let rel = mc.final_cost_per_shipped().units() / analytic.final_cost_per_shipped().units();
        assert!((rel - 1.0).abs() < 0.01, "relative error {rel}");
        assert!((mc.yield_loss_per_shipped().units() - analytic.yield_loss_per_shipped().units())
            .abs()
            < 0.2);
    }

    #[test]
    fn starved_subassembly_is_reported() {
        let sub = Line::builder("dead", Part::new("blank", CostCategory::Substrate))
            .process(Process::new("kill").with_yield(YieldModel::flat(p(0.0))))
            .test(Test::new("probe"))
            .build()
            .unwrap();
        let line = Line::builder("main", Part::new("pcb", CostCategory::Substrate))
            .attach(Attach::new("join").input(sub, 1))
            .build()
            .unwrap();
        let err = simulate_line(&line, Money::ZERO, 1, &SimOptions::new(10)).unwrap_err();
        assert!(matches!(err, FlowError::SubassemblyStarved { .. }));
    }

    #[test]
    fn defect_pareto_tracks_sources() {
        let report = simulate_line(
            &simple_line(),
            Money::ZERO,
            1,
            &SimOptions::new(50_000).with_seed(5),
        )
        .unwrap()
        .report;
        let pareto = report.defect_pareto();
        assert_eq!(pareto.len(), 1);
        assert_eq!(pareto[0].0, "p");
        assert!((pareto[0].1 - 0.1).abs() < 0.01);
    }
}
