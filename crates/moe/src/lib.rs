//! MOE — the **M**odular **O**ptimization **E**nvironment.
//!
//! A reimplementation of the production-flow cost modeling tool used in
//! *Assessing the Cost Effectiveness of Integrated Passives* (Scheffler &
//! Tröster, DATE 2000) and described in Scheffler et al., *Modeling and
//! Optimizing the Cost of Electronic Systems*, IEEE Design & Test 15(3),
//! 1998.
//!
//! A manufacturing flow is modeled as a production [`Line`]: a carrier
//! (PCB, MCM substrate) enters the line and passes process, attach
//! (assembly) and test stages. Attach stages consume [`Part`]s — which may
//! themselves be produced by nested lines — and every stage can add cost
//! and introduce defects according to a [`YieldModel`]. Test stages detect
//! defective units with a finite fault coverage and route failures to
//! scrap or to a bounded rework loop.
//!
//! Two evaluation engines are provided and agree with each other:
//!
//! * [`Flow::analyze`] — closed-form expected-value propagation (exact,
//!   including bounded rework loops), and
//! * [`Flow::simulate`] — seeded Monte Carlo unit routing, the approach
//!   the paper describes ("yield figures are translated into faults using
//!   Monte Carlo simulation").
//!
//! Both produce a [`CostReport`] implementing the paper's Eq. 1:
//!
//! ```text
//! final cost per shipped unit =
//!     (Σ direct cost + Σ scrap cost + Σ NRE) / #shipped units
//! ```
//!
//! # Examples
//!
//! ```
//! use ipass_moe::{
//!     CostCategory, FailAction, Flow, Line, Part, Process, StepCost, Test, YieldModel,
//! };
//! use ipass_units::{Money, Probability};
//!
//! // A toy two-step line: a board, one soldering process, one test.
//! let board = Part::new("board", CostCategory::Substrate)
//!     .with_cost(StepCost::fixed(Money::new(5.0)))
//!     .with_incoming_yield(YieldModel::flat(Probability::new(0.99)?));
//! let line = Line::builder("toy", board)
//!     .process(
//!         Process::new("solder")
//!             .with_cost(StepCost::fixed(Money::new(1.0)))
//!             .with_yield(YieldModel::flat(Probability::new(0.95)?)),
//!     )
//!     .test(
//!         Test::new("final test")
//!             .with_cost(StepCost::fixed(Money::new(2.0)))
//!             .with_coverage(Probability::new(0.99)?)
//!             .on_fail(FailAction::Scrap),
//!     )
//!     .build()?;
//! let report = Flow::new(line).analyze()?;
//! assert!(report.shipped_fraction() > 0.9);
//! assert!(report.final_cost_per_shipped().units() > 8.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// explicitly-vectorized lane kernel (`lane::simd`), which needs
// `core::arch` intrinsics and carries its own `allow` + safety docs.
// Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analytic;
mod compile;
mod cost;
mod diagnostics;
mod dual;
mod error;
mod flow;
mod labels;
mod lane;
mod line;
mod mc;
mod part;
mod patch;
mod report;
mod sensitivity;
mod stage;
mod sweep;
mod verify;
mod yield_model;

#[doc(hidden)]
pub use analytic::analyze_line_reference;
pub use compile::SlotKind;
pub use cost::{CostCategory, CostVector, StepCost};
pub use diagnostics::{Diagnostic, Diagnostics, Severity};
pub use dual::{DualDirection, DualReport, Gradient};
pub use error::FlowError;
pub use flow::Flow;
pub use ipass_obs::{Probe, Profiler, RunStats};
pub use ipass_sim::{Executor, StopRule};
pub use lane::effective_lane_width;
pub use line::{Line, LineBuilder};
#[doc(hidden)]
pub use mc::simulate_line_reference;
pub use mc::{SimOptions, SimSummary, DEFAULT_LANE_WIDTH, DEFAULT_SUBASSEMBLY_RETRY_BUDGET};
pub use part::{AttachInput, Part};
pub use patch::{analyze_patched_batch, CompiledFlow, FlowPatch, PatchDirective};
pub use report::{CostBreakdownRow, CostReport};
pub use sensitivity::{Tornado, TornadoDirection, TornadoInput, TornadoPatch, TornadoRow};
pub use stage::{Attach, FailAction, Process, Rework, Stage, Test};
pub use sweep::{
    find_crossover, sweep, sweep_patched, sweep_patched_with, sweep_series, sweep_with,
    CrossoverError, SweepPoint,
};
pub use verify::{CountInterval, Interval, StaticBounds};
pub use yield_model::{DefectModel, YieldModel};
