//! Cost terms attached to parts and stages, and cost attribution by
//! category.

use ipass_units::{Area, Money};
use std::fmt;
use std::ops::{Add, AddAssign, Index, Mul};

/// Accounting category a cost contribution is booked under.
///
/// Categories drive the stacked breakdown of the paper's Fig. 5 (direct
/// cost with "thereof: chip cost") and the per-implementation reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CostCategory {
    /// Active dies / packaged ICs (Fig. 5 singles this share out).
    Chip,
    /// Carrier: PCB, MCM-D substrate, including per-area substrate cost.
    Substrate,
    /// Purchased passive components (SMDs, filters).
    PassiveParts,
    /// Assembly and interconnect operations (placement, bonding).
    Assembly,
    /// Module packaging (e.g. BGA laminate).
    Packaging,
    /// Test operations.
    Test,
    /// Anything else (rework, logistics…).
    Other,
}

impl CostCategory {
    /// Number of categories (size of a [`CostVector`]).
    pub const COUNT: usize = 7;

    /// All categories in display order.
    pub const ALL: [CostCategory; CostCategory::COUNT] = [
        CostCategory::Chip,
        CostCategory::Substrate,
        CostCategory::PassiveParts,
        CostCategory::Assembly,
        CostCategory::Packaging,
        CostCategory::Test,
        CostCategory::Other,
    ];

    /// Stable index into a [`CostVector`].
    pub fn index(self) -> usize {
        match self {
            CostCategory::Chip => 0,
            CostCategory::Substrate => 1,
            CostCategory::PassiveParts => 2,
            CostCategory::Assembly => 3,
            CostCategory::Packaging => 4,
            CostCategory::Test => 5,
            CostCategory::Other => 6,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CostCategory::Chip => "chips",
            CostCategory::Substrate => "substrate",
            CostCategory::PassiveParts => "passive parts",
            CostCategory::Assembly => "assembly",
            CostCategory::Packaging => "packaging",
            CostCategory::Test => "test",
            CostCategory::Other => "other",
        }
    }
}

impl fmt::Display for CostCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Money totals broken down by [`CostCategory`].
///
/// # Examples
///
/// ```
/// use ipass_moe::{CostCategory, CostVector};
/// use ipass_units::Money;
///
/// let mut v = CostVector::default();
/// v.book(CostCategory::Chip, Money::new(198.0));
/// v.book(CostCategory::Test, Money::new(10.0));
/// assert_eq!(v[CostCategory::Chip], Money::new(198.0));
/// assert_eq!(v.total(), Money::new(208.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostVector([Money; CostCategory::COUNT]);

impl CostVector {
    /// A zeroed vector.
    pub fn new() -> CostVector {
        CostVector::default()
    }

    /// Book an amount under one category.
    ///
    /// (Named `book` rather than `add` to avoid colliding with
    /// [`std::ops::Add`], which merges two vectors.)
    pub fn book(&mut self, category: CostCategory, amount: Money) {
        self.0[category.index()] += amount;
    }

    /// Sum over all categories.
    pub fn total(&self) -> Money {
        self.0.iter().copied().sum()
    }

    /// The share (0–1) of `category` in the total; 0 when the total is 0.
    pub fn share(&self, category: CostCategory) -> f64 {
        let total = self.total().units();
        if total == 0.0 {
            0.0
        } else {
            self.0[category.index()].units() / total
        }
    }

    /// Iterate `(category, amount)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (CostCategory, Money)> + '_ {
        CostCategory::ALL
            .iter()
            .map(move |&c| (c, self.0[c.index()]))
    }
}

impl Index<CostCategory> for CostVector {
    type Output = Money;

    fn index(&self, category: CostCategory) -> &Money {
        &self.0[category.index()]
    }
}

impl Add for CostVector {
    type Output = CostVector;

    fn add(mut self, rhs: CostVector) -> CostVector {
        self += rhs;
        self
    }
}

impl AddAssign for CostVector {
    fn add_assign(&mut self, rhs: CostVector) {
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a += *b;
        }
    }
}

impl Mul<f64> for CostVector {
    type Output = CostVector;

    fn mul(mut self, rhs: f64) -> CostVector {
        for a in self.0.iter_mut() {
            *a = *a * rhs;
        }
        self
    }
}

/// The cost a part or stage contributes, combining a fixed term, a
/// per-item term (bond wires, SMD placements) and a per-area term
/// (substrate cost per cm²).
///
/// # Examples
///
/// ```
/// use ipass_moe::StepCost;
/// use ipass_units::{Area, Money};
///
/// // 212 wire bonds at 0.01 each:
/// let wb = StepCost::per_item(Money::new(0.01), 212);
/// assert_eq!(wb.total(), Money::new(2.12));
///
/// // MCM-D substrate at 1.75 per cm² for an 8.1 cm² substrate:
/// let sub = StepCost::per_area(Money::new(1.75), Area::from_cm2(8.1));
/// assert!((sub.total().units() - 14.175).abs() < 1e-9);
///
/// // Terms combine:
/// let both = StepCost::fixed(Money::new(1.0)).and(wb);
/// assert_eq!(both.total(), Money::new(3.12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepCost {
    fixed: Money,
    per_item: Money,
    items: u32,
    per_cm2: Money,
    area: Area,
}

impl StepCost {
    /// A zero cost.
    pub const ZERO: StepCost = StepCost {
        fixed: Money::ZERO,
        per_item: Money::ZERO,
        items: 0,
        per_cm2: Money::ZERO,
        area: Area::ZERO,
    };

    /// A fixed amount per unit passing the stage.
    pub fn fixed(amount: Money) -> StepCost {
        StepCost {
            fixed: amount,
            ..StepCost::ZERO
        }
    }

    /// `each × items` (e.g. per bond, per placement).
    pub fn per_item(each: Money, items: u32) -> StepCost {
        StepCost {
            per_item: each,
            items,
            ..StepCost::ZERO
        }
    }

    /// `rate × area` (e.g. substrate cost per cm²).
    pub fn per_area(rate_per_cm2: Money, area: Area) -> StepCost {
        StepCost {
            per_cm2: rate_per_cm2,
            area,
            ..StepCost::ZERO
        }
    }

    /// Combine two cost specifications term-by-term.
    ///
    /// # Panics
    ///
    /// Panics when both operands carry a per-item or per-area term with
    /// different rates — such costs cannot be merged losslessly; keep them
    /// as separate stages instead.
    pub fn and(self, other: StepCost) -> StepCost {
        let (per_item, items) = merge_rate(
            (self.per_item, self.items),
            (other.per_item, other.items),
            "per-item",
        );
        let (per_cm2, area) = merge_area((self.per_cm2, self.area), (other.per_cm2, other.area));
        StepCost {
            fixed: self.fixed + other.fixed,
            per_item,
            items,
            per_cm2,
            area,
        }
    }

    /// Total monetary amount of this cost.
    pub fn total(&self) -> Money {
        self.fixed + self.per_item * f64::from(self.items) + self.per_cm2 * self.area.cm2()
    }

    /// The number of items the per-item term covers.
    pub fn items(&self) -> u32 {
        self.items
    }

    /// Whether this cost is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.total() == Money::ZERO
    }
}

fn merge_rate(a: (Money, u32), b: (Money, u32), what: &str) -> (Money, u32) {
    match (a.1, b.1) {
        (0, _) => b,
        (_, 0) => a,
        _ => {
            assert!(
                a.0 == b.0,
                "cannot merge {what} costs with different rates ({} vs {})",
                a.0,
                b.0
            );
            (a.0, a.1 + b.1)
        }
    }
}

fn merge_area(a: (Money, Area), b: (Money, Area)) -> (Money, Area) {
    if a.1 == Area::ZERO || a.0 == Money::ZERO {
        return b;
    }
    if b.1 == Area::ZERO || b.0 == Money::ZERO {
        return a;
    }
    assert!(
        a.0 == b.0,
        "cannot merge per-area costs with different rates ({} vs {})",
        a.0,
        b.0
    );
    (a.0, a.1 + b.1)
}

impl fmt::Display for StepCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_indices_are_dense_and_unique() {
        let mut seen = [false; CostCategory::COUNT];
        for c in CostCategory::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vector_accumulates_and_shares() {
        let mut v = CostVector::new();
        v.book(CostCategory::Chip, Money::new(70.0));
        v.book(CostCategory::Substrate, Money::new(20.0));
        v.book(CostCategory::Test, Money::new(10.0));
        assert_eq!(v.total(), Money::new(100.0));
        assert!((v.share(CostCategory::Chip) - 0.7).abs() < 1e-12);
        assert_eq!(v.share(CostCategory::Packaging), 0.0);
        assert_eq!(CostVector::new().share(CostCategory::Chip), 0.0);
    }

    #[test]
    fn vector_add_and_scale() {
        let mut a = CostVector::new();
        a.book(CostCategory::Chip, Money::new(1.0));
        let mut b = CostVector::new();
        b.book(CostCategory::Chip, Money::new(2.0));
        b.book(CostCategory::Test, Money::new(4.0));
        let sum = a + b;
        assert_eq!(sum[CostCategory::Chip], Money::new(3.0));
        let scaled = sum * 0.5;
        assert_eq!(scaled[CostCategory::Chip], Money::new(1.5));
        assert_eq!(scaled[CostCategory::Test], Money::new(2.0));
    }

    #[test]
    fn vector_iter_in_display_order() {
        let mut v = CostVector::new();
        v.book(CostCategory::Other, Money::new(1.0));
        let items: Vec<_> = v.iter().collect();
        assert_eq!(items.len(), CostCategory::COUNT);
        assert_eq!(items[0].0, CostCategory::Chip);
        assert_eq!(items[6], (CostCategory::Other, Money::new(1.0)));
    }

    #[test]
    fn step_cost_terms() {
        assert_eq!(StepCost::ZERO.total(), Money::ZERO);
        assert!(StepCost::ZERO.is_zero());
        assert_eq!(StepCost::fixed(Money::new(7.3)).total(), Money::new(7.3));
        assert_eq!(
            StepCost::per_item(Money::new(0.01), 112).total(),
            Money::new(1.12)
        );
        let a = StepCost::per_area(Money::new(2.25), Area::from_cm2(2.6));
        assert!((a.total().units() - 5.85).abs() < 1e-12);
    }

    #[test]
    fn step_cost_combines() {
        let c = StepCost::fixed(Money::new(1.0))
            .and(StepCost::per_item(Money::new(0.1), 10))
            .and(StepCost::per_area(Money::new(2.0), Area::from_cm2(3.0)));
        assert!((c.total().units() - (1.0 + 1.0 + 6.0)).abs() < 1e-12);
        assert_eq!(c.items(), 10);
    }

    #[test]
    fn step_cost_merges_same_rates() {
        let c =
            StepCost::per_item(Money::new(0.01), 100).and(StepCost::per_item(Money::new(0.01), 12));
        assert_eq!(c.items(), 112);
    }

    #[test]
    #[should_panic(expected = "different rates")]
    fn step_cost_rejects_mixed_rates() {
        let _ =
            StepCost::per_item(Money::new(0.01), 100).and(StepCost::per_item(Money::new(0.02), 12));
    }

    #[test]
    fn display_shows_total() {
        let c = StepCost::fixed(Money::new(2.5));
        assert_eq!(c.to_string(), "2.50");
    }
}
