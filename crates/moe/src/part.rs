//! Parts consumed by the production line.

use crate::cost::{CostCategory, StepCost};
use crate::line::Line;
use crate::yield_model::YieldModel;

/// A purchased or fabricated component entering the flow: a die, a
/// substrate, an SMD kit.
///
/// A part carries its purchase cost and an *incoming yield* — the
/// probability that the part is good on arrival (bare dies are typically
/// not fully tested; the paper uses 95 % for the RF die).
///
/// # Examples
///
/// ```
/// use ipass_moe::{CostCategory, Part, StepCost, YieldModel};
/// use ipass_units::{Money, Probability};
///
/// let rf = Part::new("RF chip (bare die)", CostCategory::Chip)
///     .with_cost(StepCost::fixed(Money::new(79.3)))
///     .with_incoming_yield(YieldModel::flat(Probability::new(0.95)?));
/// assert_eq!(rf.name(), "RF chip (bare die)");
/// assert_eq!(rf.cost().total(), Money::new(79.3));
/// # Ok::<(), ipass_units::ProbabilityError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Part {
    name: String,
    category: CostCategory,
    cost: StepCost,
    incoming_yield: YieldModel,
}

impl Part {
    /// Create a free, always-good part; chain `with_*` to configure.
    pub fn new(name: impl Into<String>, category: CostCategory) -> Part {
        Part {
            name: name.into(),
            category,
            cost: StepCost::ZERO,
            incoming_yield: YieldModel::Certain,
        }
    }

    /// Set the purchase cost.
    pub fn with_cost(mut self, cost: StepCost) -> Part {
        self.cost = cost;
        self
    }

    /// Set the incoming yield (probability of being good on arrival).
    pub fn with_incoming_yield(mut self, incoming: YieldModel) -> Part {
        self.incoming_yield = incoming;
        self
    }

    /// The part's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The accounting category of the purchase cost.
    pub fn category(&self) -> CostCategory {
        self.category
    }

    /// The purchase cost.
    pub fn cost(&self) -> &StepCost {
        &self.cost
    }

    /// The incoming yield model.
    pub fn incoming_yield(&self) -> &YieldModel {
        &self.incoming_yield
    }
}

/// What an [`Attach`](crate::Attach) stage consumes: a bought [`Part`] or
/// the output of a nested production [`Line`] (a pre-assembled and
/// possibly pre-tested subassembly).
#[derive(Debug, Clone, PartialEq)]
pub enum AttachInput {
    /// A purchased part.
    Part(Part),
    /// A unit produced by a nested line. Scrap generated inside the
    /// nested line is booked against the overall flow; only passing units
    /// are consumed.
    Line(Box<Line>),
}

impl AttachInput {
    /// Display name of the input.
    pub fn name(&self) -> &str {
        match self {
            AttachInput::Part(p) => p.name(),
            AttachInput::Line(l) => l.name(),
        }
    }
}

impl From<Part> for AttachInput {
    fn from(p: Part) -> AttachInput {
        AttachInput::Part(p)
    }
}

impl From<Line> for AttachInput {
    fn from(l: Line) -> AttachInput {
        AttachInput::Line(Box::new(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipass_units::{Money, Probability};

    #[test]
    fn builder_defaults() {
        let p = Part::new("x", CostCategory::Other);
        assert_eq!(p.cost().total(), Money::ZERO);
        assert!(p.incoming_yield().value().is_certain());
        assert_eq!(p.category(), CostCategory::Other);
    }

    #[test]
    fn attach_input_names() {
        let p = Part::new("die", CostCategory::Chip);
        let input: AttachInput = p.into();
        assert_eq!(input.name(), "die");
    }

    #[test]
    fn part_with_yield() {
        let p = Part::new("die", CostCategory::Chip)
            .with_incoming_yield(YieldModel::flat(Probability::new(0.95).unwrap()));
        assert!((p.incoming_yield().value().value() - 0.95).abs() < 1e-12);
    }
}
