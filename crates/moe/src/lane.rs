//! The batched lane kernel: routes a *lane* of `W` units through a
//! sub-line-free routing program one op at a time, instead of one unit
//! through all ops.
//!
//! The scalar walk pays three costs per unit that a lane amortizes or
//! removes outright:
//!
//! * **Cost bookkeeping.** Every *alive* unit accrues exactly the same
//!   cost sequence — op costs are added unconditionally, and a unit's
//!   spending only diverges from the shared schedule when it is
//!   scrapped (frozen at that op) or enters a rework loop (rare). The
//!   kernel therefore precomputes one [`LanePrefix`] per program: the
//!   running `(cost, by-category)` state after every op, folded
//!   left-to-right exactly as the scalar walk folds it — so the
//!   snapshot values are bit-identical — and the hot loop carries **no
//!   per-unit cost state at all**.
//! * **Draw addressing.** Draw `j` of unit `i` is
//!   `mix64(key_i + j·G)`. The lane carries the running mix input
//!   `h_i = key_i + j·G` ([`SimRng::mix_input`]) and advances it by one
//!   add per consumed draw ([`SimRng::advance_mix_input`]) instead of
//!   re-multiplying `j·G`, saving a third of the multiply pressure the
//!   finalizer is bottlenecked on.
//! * **Branches.** Per-op lane loops are straight-line masked code over
//!   independent elements (auto-vectorizable); the scalar walk's
//!   per-unit branch mispredictions disappear.
//!
//! # Why the results are bit-identical to the scalar kernel
//!
//! * **Draws.** Unit streams are independent, and conditional draw
//!   consumption is reproduced with per-unit mix inputs: a masked op
//!   advances `h_i` only when the scalar kernel would have consumed a
//!   draw (alive and non-defective for yield draws, alive and defective
//!   for coverage draws). Every unit therefore sees exactly the scalar
//!   draw sequence.
//! * **Per-unit sums.** An alive unit's cost state is the [`LanePrefix`]
//!   snapshot — the same adds in the same order as the scalar walk. A
//!   unit caught by a rework test *materializes* that snapshot into
//!   explicit per-unit state and continues accruing op by op, again in
//!   scalar order.
//! * **Cross-unit sums.** Scrapped and shipped units book into
//!   *disjoint* [`Totals`] fields (`scrap_spend`/`scrap_by_cat` vs
//!   `embodied`/`embodied_by_cat`), so booking a lane's scrapped units
//!   first and its shipped units second — each group in unit order —
//!   feeds every order-sensitive float accumulator the exact operand
//!   sequence of the scalar unit-order interleaving. Bookings made
//!   during the op walk (`attempted`, defect counts, rework attempts)
//!   are exact-integer adds, associative below 2⁵³. Lanes where no
//!   unit diverged from the shared schedule go further: counters are
//!   booked as popcounts, scrap snapshots fold branch-free with the
//!   scrap mask applied to the value *bits*, and the identical ship
//!   adds are *deferred* and replayed in one tight loop before any
//!   booking that could interleave (see the post-pass in [`run_lane`]
//!   and [`flush_ships`]) — all three transformations provably
//!   preserve every accumulator's operand sequence.
//! * **Chunk geometry.** Lanes are decomposed *inside* each executor
//!   chunk (full lanes plus a scalar tail) and never straddle chunk
//!   boundaries, so the chunk accumulators — and therefore the merge
//!   tree, every golden value and every [`StopRule`] stopping point —
//!   are invariant under lane width and thread count.
//!
//! Programs containing [`Op::SubLine`] fall back to the scalar per-unit
//! walk (nested retry loops have data-dependent draw counts that defeat
//! lane batching), as does the `width == 1` configuration.
//!
//! [`StopRule`]: ipass_sim::StopRule

use crate::compile::{Op, Routed, RoutingProgram, Totals, UnitState, NCAT, OTHER_CAT, TEST_CAT};
use crate::error::FlowError;
use ipass_sim::{BatchSampler, SimRng};

/// Explicit AVX-512 kernels for the wide lanes (widths 16, 32 and 64)
/// — compiled only when the needed instructions are statically
/// available; every call site falls back to the portable loops
/// otherwise (same bits either way).
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx512dq",
    target_feature = "avx512vl"
))]
#[path = "lane_simd.rs"]
#[allow(unsafe_code)] // the crate's one sanctioned `core::arch` island
mod simd;

/// Lane widths with monomorphized kernels. A requested width rounds
/// *down* to the largest supported value (minimum 1 — the scalar walk).
const SUPPORTED_LANE_WIDTHS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The lane width the kernel will actually run for a requested
/// [`SimOptions::lane_width`](crate::SimOptions::lane_width): the
/// largest supported width that does not exceed the request (widths `1`
/// through `64` in powers of two; `1` is the scalar walk).
///
/// # Examples
///
/// ```
/// use ipass_moe::effective_lane_width;
///
/// assert_eq!(effective_lane_width(8), 8);
/// assert_eq!(effective_lane_width(12), 8); // rounds down
/// assert_eq!(effective_lane_width(1_000), 64); // widest kernel
/// assert_eq!(effective_lane_width(0), 1); // scalar floor
/// ```
pub fn effective_lane_width(requested: usize) -> usize {
    SUPPORTED_LANE_WIDTHS
        .iter()
        .copied()
        .filter(|&w| w <= requested)
        .max()
        .unwrap_or(1)
}

/// All-ones lane mask: "true" for one unit of a lane. Lane flags are
/// `u64` masks (`0` / `ALL`) rather than `bool`s so every hot loop is
/// homogeneous 64-bit element-wise code the auto-vectorizer maps onto
/// full-width vector compares, blends and bitwise ops.
const ALL: u64 = u64::MAX;

/// The shared cost schedule of a flat program: the running
/// `(cost, by-category)` state of an alive unit after each op's
/// unconditional cost add, folded left-to-right exactly like the scalar
/// walk (so every snapshot is bit-identical to the scalar accumulator
/// at that op).
struct LanePrefix {
    /// `cost[j]` — running total cost after op `j`.
    cost: Vec<f64>,
    /// `by_cat[j]` — running per-category costs after op `j`.
    by_cat: Vec<[f64; NCAT]>,
    /// Category indices any op of the program can ever make non-zero.
    /// Bookings iterate only these; the rest are identically `+0.0` on
    /// every snapshot, and `x += 0.0` is an exact no-op (no accumulator
    /// is ever `-0.0`), so skipping them changes no bits.
    active: Vec<u8>,
    /// Snapshot of a unit that survives the whole program (the last
    /// op's state; zeros for an empty program).
    ship_cost: f64,
    ship_by_cat: [f64; NCAT],
    /// `run_len[j]` — number of consecutive [`Op::Step`] /
    /// [`Op::Cost`] ops starting at op `j` (`0` unless op `j` is one of
    /// those). A whole run is evaluated as one batch: within a run a
    /// still-clean unit consumes exactly one draw per step, so its
    /// `s`-th draw input is `h + s·G` — independent of the other draws
    /// — and the per-step work is pure mask algebra off the multiply
    /// critical path. Interleaved `Cost` ops ride along for free: they
    /// touch no mask and no draw, and alive units take their cost from
    /// the shared prefix anyway.
    run_len: Vec<u32>,
    /// `kind_prefix[j]` — ops executed *by kind* on the routing path of
    /// a unit that has walked ops `0..j` (region-relative; length
    /// `ops.len() + 1`). The probe pass reads one row per unit — a
    /// scrapped unit executed `scrap_op + 1` ops, a surviving one all of
    /// them — reproducing the scalar walk's per-iteration counts without
    /// any hot-loop work.
    kind_prefix: Vec<[u64; 6]>,
}

impl LanePrefix {
    /// Fold the top region's cost schedule. Only called for flat
    /// programs (no [`Op::SubLine`], whose cost is data-dependent).
    fn build(program: &RoutingProgram) -> LanePrefix {
        let (entry, len) = program.top_region();
        let ops = &program.ops()[entry as usize..(entry + len) as usize];
        let mut running = 0.0f64;
        let mut running_cat = [0.0f64; NCAT];
        let mut touched = [false; NCAT];
        let mut cost = Vec::with_capacity(ops.len());
        let mut by_cat = Vec::with_capacity(ops.len());
        for op in ops {
            let (c, cat) = match *op {
                Op::Cost { cost, cat } => (cost, cat.index()),
                Op::Condemn { cost, cat, .. } => (cost, cat.index()),
                Op::Step { cost, cat, .. } => (cost, cat.index()),
                Op::SubLine { .. } => unreachable!("lane prefix of a non-flat program"),
                Op::TestScrap { cost, .. } => (cost, TEST_CAT),
                Op::TestRework {
                    cost, rework_cost, ..
                } => {
                    // Rework attempts book under `Other` too.
                    touched[OTHER_CAT] |= rework_cost != 0.0;
                    (cost, TEST_CAT)
                }
            };
            running += c;
            running_cat[cat] += c;
            touched[cat] |= c != 0.0;
            cost.push(running);
            by_cat.push(running_cat);
        }
        let active = (0..NCAT as u8).filter(|&k| touched[k as usize]).collect();
        let mut run_len = vec![0u32; ops.len()];
        for j in (0..ops.len()).rev() {
            if matches!(ops[j], Op::Step { .. } | Op::Cost { .. }) {
                run_len[j] = 1 + run_len.get(j + 1).copied().unwrap_or(0);
            }
        }
        let mut kind_prefix = Vec::with_capacity(ops.len() + 1);
        let mut kinds = [0u64; 6];
        kind_prefix.push(kinds);
        for op in ops {
            kinds[op.kind_index()] += 1;
            kind_prefix.push(kinds);
        }
        LanePrefix {
            ship_cost: running,
            ship_by_cat: running_cat,
            cost,
            by_cat,
            active,
            run_len,
            kind_prefix,
        }
    }
}

/// Structure-of-arrays state of one lane of `W` units. Allocated once
/// per sampled range and re-initialized per lane; `scrap_op`, `cost`
/// and `by_cat` need no reset because they are only read for units
/// whose `scrapped`/`mat` flag was set — and therefore written — within
/// the current lane.
struct LaneState<const W: usize> {
    /// Stream keys (only read to rebuild a scalar stream on the rare
    /// rework path).
    key: [u64; W],
    /// Running draw mix inputs (see [`SimRng::mix_input`]).
    h: [u64; W],
    /// `0` / [`ALL`] masks.
    defective: [u64; W],
    /// `0` / [`ALL`] masks.
    scrapped: [u64; W],
    /// Op index the unit was scrapped at — selects the [`LanePrefix`]
    /// snapshot its sunk cost froze at.
    scrap_op: [u64; W],
    /// Materialized: the unit's cost diverged from the shared prefix
    /// (rework), so it carries explicit state in `cost`/`by_cat`.
    mat: [bool; W],
    cost: [f64; W],
    by_cat: [[f64; W]; NCAT],
}

impl<const W: usize> LaneState<W> {
    fn new() -> LaneState<W> {
        LaneState {
            key: [0; W],
            h: [0; W],
            defective: [0; W],
            scrapped: [0; W],
            scrap_op: [0; W],
            mat: [false; W],
            cost: [0.0; W],
            by_cat: [[0.0; W]; NCAT],
        }
    }

    /// Reset for the lane of units `base..base + W`.
    #[inline]
    fn reset(&mut self, seed: u64, base: u64) {
        if !simd_keys(self, seed, base) {
            for i in 0..W {
                let (key, _) = SimRng::stream(seed, base + i as u64).state();
                self.key[i] = key;
                // A fresh stream's mix input is its key (counter 0).
                self.h[i] = key;
            }
        }
        self.defective = [0; W];
        self.scrapped = [0; W];
        self.mat = [false; W];
    }

    /// Add `c` (category `cat`) to every alive materialized unit — the
    /// per-unit continuation of the scalar walk's unconditional cost
    /// add for units that diverged from the shared prefix.
    #[inline]
    fn mat_cost_add(&mut self, c: f64, cat: usize) {
        let LaneState {
            mat,
            scrapped,
            cost,
            by_cat,
            ..
        } = self;
        let col = &mut by_cat[cat];
        for i in 0..W {
            if mat[i] && scrapped[i] == 0 {
                cost[i] += c;
                col[i] += c;
            }
        }
    }

    /// Gather one materialized unit's category columns.
    #[inline]
    fn gather_cats(&self, i: usize) -> [f64; NCAT] {
        let mut cols = [0.0; NCAT];
        for (slot, col) in cols.iter_mut().zip(self.by_cat.iter()) {
            *slot = col[i];
        }
        cols
    }
}

/// The compiled production line as a batched [`ipass_sim`] sampler: one
/// range call routes a contiguous run of carrier units, a lane of `W`
/// at a time where the program allows it.
pub(crate) struct LaneSampler<'a> {
    program: &'a RoutingProgram,
    retry_budget: u32,
    /// Requested lane width (rounded by [`effective_lane_width`]).
    width: usize,
    /// Shared cost schedule — `Some` exactly for flat programs.
    prefix: Option<LanePrefix>,
    /// Deterministic probe counting for this run (off by default; set
    /// on every accumulator the sampler creates).
    probe: ipass_obs::Probe,
}

impl<'a> LaneSampler<'a> {
    pub(crate) fn new(
        program: &'a RoutingProgram,
        retry_budget: u32,
        width: usize,
        probe: ipass_obs::Probe,
    ) -> Self {
        let prefix = program.flat().then(|| LanePrefix::build(program));
        LaneSampler {
            program,
            retry_budget,
            width,
            prefix,
            probe,
        }
    }
}

impl BatchSampler for LaneSampler<'_> {
    type Acc = Totals;
    type Error = FlowError;

    fn make_acc(&self) -> Totals {
        let mut totals = Totals::new(self.program.names().len());
        totals.probe = self.probe.is_on();
        totals
    }

    fn sample_range(
        &self,
        seed: u64,
        lo: u64,
        hi: u64,
        totals: &mut Totals,
    ) -> Result<(), FlowError> {
        let Some(prefix) = &self.prefix else {
            // Nested sub-lines: scalar per-unit walk (recursion and
            // retry loops have data-dependent draw counts).
            return self.scalar_range(seed, lo, hi, totals);
        };
        match effective_lane_width(self.width) {
            64 => self.lane_range::<64>(prefix, seed, lo, hi, totals),
            32 => self.lane_range::<32>(prefix, seed, lo, hi, totals),
            16 => self.lane_range::<16>(prefix, seed, lo, hi, totals),
            8 => self.lane_range::<8>(prefix, seed, lo, hi, totals),
            4 => self.lane_range::<4>(prefix, seed, lo, hi, totals),
            2 => self.lane_range::<2>(prefix, seed, lo, hi, totals),
            _ => self.scalar_range(seed, lo, hi, totals),
        }
    }

    fn merge(&self, into: &mut Totals, from: Totals) {
        into.merge(&from);
    }

    fn ci_half_width(&self, acc: &Totals, z: f64) -> Option<f64> {
        Some(crate::mc::shipped_half_width(acc, z))
    }
}

impl LaneSampler<'_> {
    /// The canonical scalar walk — one unit at a time through the whole
    /// program. Used for non-flat programs, width 1, and the tail of a
    /// chunk that does not fill a full lane.
    fn scalar_range(
        &self,
        seed: u64,
        lo: u64,
        hi: u64,
        totals: &mut Totals,
    ) -> Result<(), FlowError> {
        for unit in lo..hi {
            let mut rng = SimRng::stream(seed, unit);
            totals.attempted += 1;
            let mut state = UnitState::new();
            if self
                .program
                .run_unit(&mut rng, totals, &mut state, self.retry_budget)?
                == Routed::Shipped
            {
                totals.ship(state.cost, &state.by_cat, state.defective);
            }
            if totals.probe {
                // The stream counter *is* the unit's draw count
                // (sub-line draws included — one stream per unit).
                totals.obs.record_unit(rng.state().1);
                totals.obs.lanes[0] += 1;
            }
        }
        Ok(())
    }

    /// Full lanes of `W`, then the scalar walk for the remainder (a
    /// flat program cannot actually fail, so the result is always `Ok`).
    fn lane_range<const W: usize>(
        &self,
        prefix: &LanePrefix,
        seed: u64,
        lo: u64,
        hi: u64,
        totals: &mut Totals,
    ) -> Result<(), FlowError> {
        let mut state = LaneState::<W>::new();
        let mut pending = ShipPending::default();
        let mut unit = lo;
        while unit + W as u64 <= hi {
            run_lane::<W>(
                self.program,
                prefix,
                seed,
                unit,
                &mut state,
                totals,
                &mut pending,
            );
            unit += W as u64;
        }
        // The scalar tail ships per unit — deferred adds land first.
        flush_ships(prefix, totals, &mut pending);
        self.scalar_range(seed, unit, hi, totals)
    }
}

/// Evaluate a whole run of yield steps with the explicit SIMD kernel —
/// entry mask, draws, defect booking and `h` writeback. Returns `false`
/// (taking no action) when the lane width has no explicit kernel — the
/// caller then runs the portable loop, which computes the identical
/// bits.
///
/// Runs longer than [`simd::STEP_CHUNK`] re-enter [`simd::run_zmm`]
/// with the written-back state; a unit alive across the seam has
/// consumed exactly one draw per step either way, so its draw inputs —
/// and every downstream bit — are unchanged. A later chunk with no
/// entering units stops the loop before booking: the skipped bookings
/// are all `+0.0`, an exact no-op.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx512dq",
    target_feature = "avx512vl"
))]
#[inline]
fn simd_run<const W: usize>(
    state: &mut LaneState<W>,
    run_ops: &[Op],
    totals: &mut Totals,
    n_def_alive: &mut u32,
) -> bool {
    if W != 16 && W != 32 && W != 64 {
        return false;
    }
    let LaneState {
        h,
        defective,
        scrapped,
        ..
    } = state;
    let mut th = [0u64; simd::STEP_CHUNK];
    let mut lb = [0u32; simd::STEP_CHUNK];
    let mut newly = [0u64; simd::STEP_CHUNK];
    let mut it = run_ops.iter();
    loop {
        let mut n = 0usize;
        for op in it.by_ref() {
            // An interleaved `Cost` draws nothing.
            if let Op::Step {
                threshold, label, ..
            } = op
            {
                th[n] = *threshold;
                lb[n] = *label;
                n += 1;
                if n == simd::STEP_CHUNK {
                    break;
                }
            }
        }
        if n == 0 {
            break;
        }
        let entered = match W {
            16 => simd::run_zmm::<2>(h, defective, scrapped, &th[..n], &mut newly[..n]),
            32 => simd::run_zmm::<4>(h, defective, scrapped, &th[..n], &mut newly[..n]),
            _ => simd::run_zmm::<8>(h, defective, scrapped, &th[..n], &mut newly[..n]),
        };
        if !entered {
            break;
        }
        for s in 0..n {
            // Unconditional: `+0.0` on a no-defect step is an exact
            // no-op.
            totals.defects[lb[s] as usize] += newly[s] as f64;
            *n_def_alive += newly[s] as u32;
        }
        if n < simd::STEP_CHUNK {
            break;
        }
    }
    true
}

#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "avx512dq",
    target_feature = "avx512vl"
)))]
#[inline]
fn simd_run<const W: usize>(
    _state: &mut LaneState<W>,
    _run_ops: &[Op],
    _totals: &mut Totals,
    _n_def_alive: &mut u32,
) -> bool {
    false
}

/// SIMD stream-key initialization; `false` (no action) when unavailable
/// — the portable per-unit `SimRng::stream` runs instead.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx512dq",
    target_feature = "avx512vl"
))]
#[inline]
fn simd_keys<const W: usize>(state: &mut LaneState<W>, seed: u64, base: u64) -> bool {
    let LaneState { key, h, .. } = state;
    match W {
        16 => simd::keys_zmm::<2>(seed, base, key, h),
        32 => simd::keys_zmm::<4>(seed, base, key, h),
        64 => simd::keys_zmm::<8>(seed, base, key, h),
        _ => return false,
    }
    true
}

#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "avx512dq",
    target_feature = "avx512vl"
)))]
#[inline]
fn simd_keys<const W: usize>(_state: &mut LaneState<W>, _seed: u64, _base: u64) -> bool {
    false
}

/// The SIMD coverage pass of a `TestScrap` threshold branch; `false`
/// (no action) when unavailable — portable loop runs instead.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx512dq",
    target_feature = "avx512vl"
))]
#[inline]
fn simd_cover<const W: usize>(
    state: &mut LaneState<W>,
    t: u64,
    jj: u64,
    caught_n: &mut u64,
) -> bool {
    let LaneState {
        h,
        defective,
        scrapped,
        scrap_op,
        ..
    } = state;
    *caught_n += match W {
        16 => simd::cover_zmm::<2>(h, t, jj, defective, scrapped, scrap_op),
        32 => simd::cover_zmm::<4>(h, t, jj, defective, scrapped, scrap_op),
        64 => simd::cover_zmm::<8>(h, t, jj, defective, scrapped, scrap_op),
        _ => return false,
    };
    true
}

#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "avx512dq",
    target_feature = "avx512vl"
)))]
#[inline]
fn simd_cover<const W: usize>(
    _state: &mut LaneState<W>,
    _t: u64,
    _jj: u64,
    _caught_n: &mut u64,
) -> bool {
    false
}

/// Deferred fast-path ship bookings (see the post-pass in
/// [`run_lane`]): counts of shipped / shipped-and-good units whose
/// embodied-cost adds — all the identical prefix ship snapshot — have
/// not been replayed into [`Totals`] yet.
#[derive(Default)]
struct ShipPending {
    n_ship: u64,
    n_good: u64,
}

/// Replay `pending.n_ship` deferred ship bookings: the exact adds the
/// scalar walk performs for those units, in one tight loop. The float
/// chains (`embodied` + active categories) are independent and overlap;
/// the counter adds are integer-exact in any order.
fn flush_ships(prefix: &LanePrefix, totals: &mut Totals, pending: &mut ShipPending) {
    if pending.n_ship == 0 {
        return;
    }
    let mut t_embodied = totals.embodied;
    let mut t_by_cat = totals.embodied_by_cat;
    for _ in 0..pending.n_ship {
        t_embodied += prefix.ship_cost;
        // All categories, const-length (accumulators stay in
        // registers): untouched ones add `+0.0`, an exact no-op —
        // the scalar walk's `Totals::ship` adds all of them too.
        for (acc, add) in t_by_cat.iter_mut().zip(prefix.ship_by_cat.iter()) {
            *acc += add;
        }
    }
    totals.embodied = t_embodied;
    totals.embodied_by_cat = t_by_cat;
    totals.shipped += pending.n_ship as f64;
    totals.good_shipped += pending.n_good as f64;
    pending.n_ship = 0;
    pending.n_good = 0;
}

/// Route the lane of units `base..base + W` through a flat program.
fn run_lane<const W: usize>(
    program: &RoutingProgram,
    prefix: &LanePrefix,
    seed: u64,
    base: u64,
    state: &mut LaneState<W>,
    totals: &mut Totals,
    pending: &mut ShipPending,
) {
    state.reset(seed, base);
    let mut live = W as u32;
    // Defective *and* alive — the units a test still has to catch; the
    // whole coverage pass is skipped when a lane has none.
    let mut n_def_alive = 0u32;
    let mut any_mat = false;

    totals.attempted += W as u64;

    let (entry, len) = program.top_region();
    let ops = &program.ops()[entry as usize..(entry + len) as usize];
    let mut j = 0usize;
    while j < ops.len() {
        let op = &ops[j];
        // A run of consecutive steps is evaluated as one batch: a unit
        // still clean at step `s` of the run has consumed exactly one
        // draw per step so far, so its draw input is `h + s·G` — a
        // value independent of every other draw. That keeps the
        // multiply-heavy finalizer off the loop-carried critical path
        // (which shrinks to two mask ops per step) and advances `h`
        // once per run by `consumed·G`.
        if let Op::Step { .. } = op {
            let run = prefix.run_len[j] as usize;
            if any_mat {
                for op in &ops[j..j + run] {
                    match op {
                        Op::Step { cost: c, cat, .. } | Op::Cost { cost: c, cat } => {
                            state.mat_cost_add(*c, cat.index());
                        }
                        _ => unreachable!("run contains only steps and costs"),
                    }
                }
            }
            if !simd_run(state, &ops[j..j + run], totals, &mut n_def_alive) {
                // Entry clean mask: the units that will draw this run.
                let mut entered = [0u64; W];
                let mut any_alive = 0u64;
                for (e, (d, s)) in entered
                    .iter_mut()
                    .zip(state.defective.iter().zip(state.scrapped.iter()))
                {
                    *e = !(d | s);
                    any_alive |= *e;
                }
                if any_alive != 0 {
                    let mut alive = entered;
                    let mut consumed = [0u64; W];
                    // s·G, maintained additively.
                    let mut sg = 0u64;
                    for op in &ops[j..j + run] {
                        let Op::Step {
                            threshold, label, ..
                        } = op
                        else {
                            continue; // an interleaved `Cost` draws nothing
                        };
                        // Masks are 0 / ALL, so subtracting them counts.
                        let mut newly = 0u64;
                        for i in 0..W {
                            let draw = SimRng::mix_to_u53(state.h[i].wrapping_add(sg));
                            let fail = alive[i] & 0u64.wrapping_sub(u64::from(draw >= *threshold));
                            consumed[i] = consumed[i].wrapping_sub(alive[i]);
                            alive[i] &= !fail;
                            newly = newly.wrapping_sub(fail);
                        }
                        // Unconditional: `+0.0` on a no-defect step is
                        // an exact no-op.
                        totals.defects[*label as usize] += newly as f64;
                        n_def_alive += newly as u32;
                        sg = SimRng::advance_mix_input(sg);
                    }
                    for i in 0..W {
                        state.h[i] = SimRng::mix_input(state.h[i], consumed[i]);
                        state.defective[i] |= entered[i] & !alive[i];
                    }
                }
            }
            j += run;
            continue;
        }
        match *op {
            // Alive units take op costs from the shared prefix; only
            // materialized (rework-diverged) units accrue explicitly.
            Op::Cost { cost: c, cat } => {
                if any_mat {
                    state.mat_cost_add(c, cat.index());
                }
            }
            Op::Condemn {
                cost: c,
                cat,
                label,
            } => {
                if any_mat {
                    state.mat_cost_add(c, cat.index());
                }
                let mut newly = 0u64;
                for i in 0..W {
                    let hit = !(state.scrapped[i] | state.defective[i]);
                    newly = newly.wrapping_sub(hit);
                    state.defective[i] |= !state.scrapped[i];
                }
                if newly > 0 {
                    totals.defects[label as usize] += newly as f64;
                    n_def_alive += newly as u32;
                }
            }
            Op::Step { .. } => unreachable!("steps are consumed by run batches"),
            Op::SubLine { .. } => unreachable!("lane kernel runs flat programs only"),
            Op::TestScrap { cost: c, coverage } => {
                if any_mat {
                    state.mat_cost_add(c, TEST_CAT);
                }
                if n_def_alive > 0 && coverage > 0.0 {
                    let jj = j as u64;
                    let mut caught_n = 0u64;
                    if coverage >= 1.0 {
                        // Certain coverage consumes no draw (mirrors
                        // `bernoulli`).
                        for i in 0..W {
                            let caught = state.defective[i] & !state.scrapped[i];
                            state.scrapped[i] |= caught;
                            state.scrap_op[i] = (caught & jj) | (!caught & state.scrap_op[i]);
                            caught_n = caught_n.wrapping_sub(caught);
                        }
                    } else {
                        let t = SimRng::threshold(coverage);
                        if !simd_cover(state, t, jj, &mut caught_n) {
                            for i in 0..W {
                                // Only defective units draw coverage.
                                let check = state.defective[i] & !state.scrapped[i];
                                let draw = SimRng::mix_to_u53(state.h[i]);
                                let next = SimRng::advance_mix_input(state.h[i]);
                                let caught = check & 0u64.wrapping_sub(u64::from(draw < t));
                                state.h[i] = (check & next) | (!check & state.h[i]);
                                state.scrapped[i] |= caught;
                                state.scrap_op[i] = (caught & jj) | (!caught & state.scrap_op[i]);
                                caught_n = caught_n.wrapping_sub(caught);
                            }
                        }
                    }
                    live -= caught_n as u32;
                    n_def_alive -= caught_n as u32;
                    if live == 0 {
                        break;
                    }
                }
            }
            Op::TestRework {
                cost: c,
                coverage,
                rework_cost,
                success,
                max_attempts,
            } => {
                if !any_mat && n_def_alive == 0 {
                    j += 1;
                    continue; // nothing to catch, nothing accruing
                }
                // Rework draws a data-dependent number of times: run
                // per unit on a rebuilt scalar stream, in unit order.
                for i in 0..W {
                    if state.scrapped[i] != 0 {
                        continue;
                    }
                    if state.mat[i] {
                        state.cost[i] += c;
                        state.by_cat[TEST_CAT][i] += c;
                    }
                    if state.defective[i] == 0 {
                        continue;
                    }
                    let ctr = SimRng::ctr_of_mix_input(state.key[i], state.h[i]);
                    let mut rng = SimRng::from_state(state.key[i], ctr);
                    if rng.bernoulli(coverage) {
                        // Caught: this unit's spending diverges from
                        // the shared schedule — materialize the prefix
                        // snapshot (which already includes this op's
                        // `c`) and accrue explicitly from here on.
                        if !state.mat[i] {
                            state.mat[i] = true;
                            any_mat = true;
                            state.cost[i] = prefix.cost[j];
                            for (col, snap) in state.by_cat.iter_mut().zip(prefix.by_cat[j].iter())
                            {
                                col[i] = *snap;
                            }
                        }
                        let mut recovered = false;
                        for _ in 0..max_attempts {
                            totals.rework_attempts += 1;
                            state.cost[i] += rework_cost;
                            state.by_cat[OTHER_CAT][i] += rework_cost;
                            state.cost[i] += c;
                            state.by_cat[TEST_CAT][i] += c;
                            if rng.bernoulli(success) {
                                state.defective[i] = 0;
                                n_def_alive -= 1;
                                recovered = true;
                                break;
                            }
                            if !rng.bernoulli(coverage) {
                                // Escaped on re-test: continues defective.
                                recovered = true;
                                break;
                            }
                        }
                        if !recovered {
                            state.scrapped[i] = ALL;
                            // A rework-scrapped unit is materialized, so
                            // its cost never reads `scrap_op` — but the
                            // probe pass still needs its last op index.
                            state.scrap_op[i] = j as u64;
                            live -= 1;
                            n_def_alive -= 1;
                        }
                    }
                    state.h[i] = SimRng::mix_input(state.key[i], rng.state().1);
                }
                if live == 0 {
                    break;
                }
            }
        }
        j += 1;
    }

    // Probe pass — off the hot path entirely: one predicted-false
    // branch when probes are disabled, and when enabled the work is
    // per-*unit* (not per-op): each unit's draw count is recovered
    // exactly from its final mix input (`h = key + draws·G`), and its
    // op-by-kind counts are a single prefix-table row selected by where
    // it stopped. Integer adds only, folded into the chunk accumulator
    // — bit-identical across thread counts by construction.
    if totals.probe {
        totals.obs.lanes[W.trailing_zeros() as usize] += W as u64;
        for i in 0..W {
            totals
                .obs
                .record_unit(SimRng::ctr_of_mix_input(state.key[i], state.h[i]));
            let end = if state.scrapped[i] != 0 {
                state.scrap_op[i] as usize + 1
            } else {
                ops.len()
            };
            for (slot, n) in totals.obs.ops.iter_mut().zip(prefix.kind_prefix[end]) {
                *slot += n;
            }
        }
    }

    // Book scrapped units first, shipped units second — each group in
    // unit order. Scrap and ship touch disjoint `Totals` fields, so
    // every order-sensitive accumulator sees the exact operand sequence
    // of the scalar kernel's unit-order interleaving.
    if !any_mat {
        // Fast path — no unit diverged from the shared prefix, so every
        // booked value comes from the prefix tables:
        //
        // * Counters (`scrapped`/`shipped`/`good_shipped`) only ever
        //   receive `+1.0`; every intermediate value is an exactly
        //   representable integer (`attempted < 2^53`), so those adds
        //   are associative and batched popcount adds are bit-identical
        //   to the scalar per-unit adds.
        // * Scrap accumulators receive each unit's frozen snapshot with
        //   the scrap mask applied to its *bits*: non-members
        //   contribute `+0.0`, an exact no-op (no accumulator is ever
        //   `-0.0`), so the operand sequence each accumulator folds is
        //   exactly the scalar one. A lane with no scrap skips the fold
        //   — all its adds would be `+0.0`. The loop is branch-free and
        //   staged through locals so the float chains stay in registers
        //   and overlap.
        // * Ship bookings are *deferred*: every shipped fast-path unit
        //   adds the same `ship_cost`/`ship_by_cat` snapshot, so the
        //   lane only counts them here and [`flush_ships`] replays the
        //   adds — same count, same operand, same order — before any
        //   booking that could interleave (a materialized lane's
        //   per-unit ships, the scalar tail) and at the end of the
        //   range. Accumulator-disjointness makes the deferral
        //   invisible: `embodied`/`embodied_by_cat` still fold exactly
        //   the scalar sequence.
        let mut smask = 0u64;
        let mut dmask = 0u64;
        for i in 0..W {
            smask |= u64::from(state.scrapped[i] != 0) << i;
            dmask |= u64::from(state.defective[i] != 0) << i;
        }
        let lane_mask = if W == 64 { ALL } else { (1u64 << W) - 1 };
        let n_scrap = smask.count_ones();
        totals.scrapped += f64::from(n_scrap);
        pending.n_ship += u64::from(W as u32 - n_scrap);
        pending.n_good += u64::from((!smask & !dmask & lane_mask).count_ones());
        if smask != 0 {
            // Non-empty: a scrapped unit implies at least one op. The
            // clamp makes the (masked-irrelevant) stale `scrap_op`
            // indices of non-scrapped units verifiably in-bounds.
            let last = prefix.cost.len() - 1;
            let mut t_spend = totals.scrap_spend;
            let mut t_cat = totals.scrap_by_cat;
            for i in 0..W {
                let sm = state.scrapped[i];
                let sj = (state.scrap_op[i] as usize).min(last);
                t_spend += f64::from_bits(prefix.cost[sj].to_bits() & sm);
                for (acc, snap) in t_cat.iter_mut().zip(prefix.by_cat[sj].iter()) {
                    *acc += f64::from_bits(snap.to_bits() & sm);
                }
            }
            totals.scrap_spend = t_spend;
            totals.scrap_by_cat = t_cat;
        }
        return;
    }
    // Slow path — at least one unit materialized per-unit state. Its
    // per-unit ship values interleave into `embodied`, so earlier
    // lanes' deferred ship adds must land first.
    flush_ships(prefix, totals, pending);
    for i in 0..W {
        if state.scrapped[i] == 0 {
            continue;
        }
        if state.mat[i] {
            totals.scrap_active(state.cost[i], &state.gather_cats(i), &prefix.active);
        } else {
            let sj = state.scrap_op[i] as usize;
            totals.scrap_active(prefix.cost[sj], &prefix.by_cat[sj], &prefix.active);
        }
    }
    for i in 0..W {
        if state.scrapped[i] != 0 {
            continue;
        }
        let defective = state.defective[i] != 0;
        if state.mat[i] {
            totals.ship_active(
                state.cost[i],
                &state.gather_cats(i),
                defective,
                &prefix.active,
            );
        } else {
            totals.ship_active(
                prefix.ship_cost,
                &prefix.ship_by_cat,
                defective,
                &prefix.active,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_width_rounds_down_to_supported() {
        assert_eq!(effective_lane_width(0), 1);
        assert_eq!(effective_lane_width(1), 1);
        assert_eq!(effective_lane_width(2), 2);
        assert_eq!(effective_lane_width(3), 2);
        assert_eq!(effective_lane_width(4), 4);
        assert_eq!(effective_lane_width(7), 4);
        assert_eq!(effective_lane_width(8), 8);
        assert_eq!(effective_lane_width(15), 8);
        assert_eq!(effective_lane_width(16), 16);
        assert_eq!(effective_lane_width(31), 16);
        assert_eq!(effective_lane_width(32), 32);
        assert_eq!(effective_lane_width(64), 64);
        assert_eq!(effective_lane_width(usize::MAX), 64);
    }

    #[test]
    fn supported_widths_are_sorted_powers_of_two() {
        assert!(SUPPORTED_LANE_WIDTHS.windows(2).all(|w| w[0] < w[1]));
        assert!(SUPPORTED_LANE_WIDTHS.iter().all(|w| w.is_power_of_two()));
        assert_eq!(SUPPORTED_LANE_WIDTHS[0], 1);
    }
}
