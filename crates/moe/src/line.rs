//! A production line: the ordered stages a carrier passes through.

use crate::error::FlowError;
use crate::part::{AttachInput, Part};
use crate::stage::{Attach, Process, Stage, Test};

/// Maximum nesting depth of subassembly lines.
pub(crate) const MAX_DEPTH: usize = 16;

/// An ordered production line.
///
/// A line starts with a carrier [`Part`] (the PCB or MCM substrate) and
/// proceeds through [`Stage`]s. Lines nest: an
/// [`Attach`] input may be another line whose shipped units are consumed
/// as parts (e.g. a pre-tested substrate subassembly).
///
/// Construct via [`Line::builder`].
///
/// # Examples
///
/// ```
/// use ipass_moe::{CostCategory, Line, Part, Process, StepCost};
/// use ipass_units::Money;
///
/// let line = Line::builder("demo", Part::new("pcb", CostCategory::Substrate))
///     .process(Process::new("print").with_cost(StepCost::fixed(Money::new(0.5))))
///     .build()?;
/// assert_eq!(line.name(), "demo");
/// assert_eq!(line.stages().len(), 1);
/// # Ok::<(), ipass_moe::FlowError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Line {
    name: String,
    carrier: Part,
    stages: Vec<Stage>,
}

impl Line {
    /// Start building a line around a carrier part.
    pub fn builder(name: impl Into<String>, carrier: Part) -> LineBuilder {
        LineBuilder {
            name: name.into(),
            carrier,
            stages: Vec::new(),
        }
    }

    /// The line's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The carrier entering the line.
    pub fn carrier(&self) -> &Part {
        &self.carrier
    }

    /// The stages after the carrier start, in order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Validate the line (and nested lines) against structural rules.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] when a line is empty, an attach stage has
    /// no inputs or a zero quantity, or nesting exceeds the depth limit.
    pub fn validate(&self) -> Result<(), FlowError> {
        self.validate_at_depth(0)
    }

    fn validate_at_depth(&self, depth: usize) -> Result<(), FlowError> {
        if depth >= MAX_DEPTH {
            return Err(FlowError::TooDeeplyNested { limit: MAX_DEPTH });
        }
        if self.stages.is_empty() {
            return Err(FlowError::EmptyLine {
                line: self.name.clone(),
            });
        }
        for stage in &self.stages {
            if let Stage::Attach(attach) = stage {
                if attach.inputs().is_empty() {
                    return Err(FlowError::AttachWithoutInputs {
                        stage: attach.name().to_owned(),
                    });
                }
                for (input, qty) in attach.inputs() {
                    if *qty == 0 {
                        return Err(FlowError::ZeroQuantityInput {
                            stage: attach.name().to_owned(),
                            input: input.name().to_owned(),
                        });
                    }
                    if let AttachInput::Line(sub) = input {
                        sub.validate_at_depth(depth + 1)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Render the line as a Fig. 4-style text diagram: numbered boxes
    /// with their kind, cost and yield, plus the implicit collector and
    /// scrap sinks.
    ///
    /// # Examples
    ///
    /// ```
    /// use ipass_moe::{CostCategory, Line, Part, Process, Test};
    ///
    /// let line = Line::builder("demo", Part::new("pcb", CostCategory::Substrate))
    ///     .process(Process::new("print"))
    ///     .test(Test::new("ft"))
    ///     .build()?;
    /// let diagram = line.render_diagram();
    /// assert!(diagram.contains("ID0") && diagram.contains("SCRAP"));
    /// # Ok::<(), ipass_moe::FlowError>(())
    /// ```
    pub fn render_diagram(&self) -> String {
        let mut out = String::new();
        let mut id = 0usize;
        let mut push = |out: &mut String, kind: &str, name: &str, detail: String| {
            out.push_str(&format!("  [ID{id:<2}] {kind:<9} {name:<34} {detail}\n"));
            id += 1;
        };
        push(
            &mut out,
            "Carrier",
            self.carrier.name(),
            format!(
                "cost {} yield {}",
                self.carrier.cost().total(),
                self.carrier.incoming_yield()
            ),
        );
        for stage in &self.stages {
            match stage {
                Stage::Process(p) => push(
                    &mut out,
                    "Process",
                    p.name(),
                    format!("cost {} yield {}", p.cost().total(), p.process_yield()),
                ),
                Stage::Attach(a) => {
                    let inputs: Vec<String> = a
                        .inputs()
                        .iter()
                        .map(|(input, qty)| format!("{}×{qty}", input.name()))
                        .collect();
                    push(
                        &mut out,
                        "Assembly",
                        a.name(),
                        format!(
                            "inputs [{}] cost {} yield {}",
                            inputs.join(", "),
                            a.cost().total(),
                            a.attach_yield()
                        ),
                    );
                }
                Stage::Test(t) => {
                    let fail = match t.fail_action() {
                        crate::stage::FailAction::Scrap => "fail→SCRAP".to_owned(),
                        crate::stage::FailAction::Rework(r) => {
                            format!("fail→rework(≤{})", r.max_attempts)
                        }
                    };
                    push(
                        &mut out,
                        "Test",
                        t.name(),
                        format!("cost {} coverage {} {fail}", t.cost().total(), t.coverage()),
                    );
                }
            }
        }
        push(
            &mut out,
            "Collector",
            "modules to be shipped",
            String::new(),
        );
        push(&mut out, "Sink", "SCRAP", String::new());
        out
    }

    /// Total number of stages including nested lines (useful for model
    /// size reporting).
    pub fn stage_count(&self) -> usize {
        let mut n = self.stages.len();
        for stage in &self.stages {
            if let Stage::Attach(attach) = stage {
                for (input, _) in attach.inputs() {
                    if let AttachInput::Line(sub) = input {
                        n += 1 + sub.stage_count();
                    }
                }
            }
        }
        n
    }
}

/// Builder for [`Line`] (see [`Line::builder`]).
#[derive(Debug, Clone)]
pub struct LineBuilder {
    name: String,
    carrier: Part,
    stages: Vec<Stage>,
}

impl LineBuilder {
    /// Append a process stage.
    pub fn process(mut self, p: Process) -> LineBuilder {
        self.stages.push(Stage::Process(p));
        self
    }

    /// Append an attach (assembly) stage.
    pub fn attach(mut self, a: Attach) -> LineBuilder {
        self.stages.push(Stage::Attach(a));
        self
    }

    /// Append a test stage.
    pub fn test(mut self, t: Test) -> LineBuilder {
        self.stages.push(Stage::Test(t));
        self
    }

    /// Append any pre-built stage.
    pub fn stage(mut self, s: impl Into<Stage>) -> LineBuilder {
        self.stages.push(s.into());
        self
    }

    /// Finish and validate the line.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] if the line violates a structural rule
    /// (see [`Line::validate`]).
    pub fn build(self) -> Result<Line, FlowError> {
        let line = Line {
            name: self.name,
            carrier: self.carrier,
            stages: self.stages,
        };
        line.validate()?;
        Ok(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostCategory;

    fn carrier() -> Part {
        Part::new("carrier", CostCategory::Substrate)
    }

    #[test]
    fn empty_line_rejected() {
        let err = Line::builder("empty", carrier()).build().unwrap_err();
        assert!(matches!(err, FlowError::EmptyLine { .. }));
    }

    #[test]
    fn attach_without_inputs_rejected() {
        let err = Line::builder("bad", carrier())
            .attach(Attach::new("lonely"))
            .build()
            .unwrap_err();
        assert!(matches!(err, FlowError::AttachWithoutInputs { .. }));
    }

    #[test]
    fn zero_quantity_rejected() {
        let err = Line::builder("bad", carrier())
            .attach(Attach::new("a").input(Part::new("p", CostCategory::Chip), 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, FlowError::ZeroQuantityInput { .. }));
    }

    #[test]
    fn nested_lines_validate_recursively() {
        let bad_sub = Line {
            name: "sub".into(),
            carrier: carrier(),
            stages: vec![],
        };
        let err = Line::builder("outer", carrier())
            .attach(Attach::new("join").input(bad_sub, 1))
            .build()
            .unwrap_err();
        assert!(matches!(err, FlowError::EmptyLine { .. }));
    }

    #[test]
    fn stage_count_includes_nesting() {
        let sub = Line::builder("sub", carrier())
            .process(Process::new("p1"))
            .build()
            .unwrap();
        let line = Line::builder("outer", carrier())
            .attach(Attach::new("join").input(sub, 2))
            .test(Test::new("t"))
            .build()
            .unwrap();
        // outer: attach + test = 2, nested: 1 line marker + 1 stage = 2.
        assert_eq!(line.stage_count(), 4);
    }

    #[test]
    fn depth_limit_enforced() {
        let mut inner = Line::builder("l0", carrier())
            .process(Process::new("p"))
            .build()
            .unwrap();
        for i in 1..=MAX_DEPTH {
            inner = Line {
                name: format!("l{i}"),
                carrier: carrier(),
                stages: vec![Stage::Attach(Attach::new("join").input(inner, 1))],
            };
        }
        assert!(matches!(
            inner.validate(),
            Err(FlowError::TooDeeplyNested { .. })
        ));
    }
}
