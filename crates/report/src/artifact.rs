//! The artifact sum type, the output formats, and the JSON encoding.

use crate::json::Json;
use crate::value::{Breakdown, Cell, Direction, Findings, FrontierPlot, Series, SeriesX, Table};
use std::error::Error;
use std::fmt;

/// An output format of the artifact pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Format {
    /// Aligned plain text.
    Txt,
    /// Comma-separated values (full float precision).
    Csv,
    /// A Markdown table.
    Md,
    /// A JSON document (full float precision).
    Json,
    /// A standalone SVG figure.
    Svg,
}

impl Format {
    /// All formats, in the order `regen` writes them.
    pub const ALL: [Format; 5] = [
        Format::Txt,
        Format::Csv,
        Format::Md,
        Format::Json,
        Format::Svg,
    ];

    /// The file extension (no dot).
    pub fn ext(self) -> &'static str {
        match self {
            Format::Txt => "txt",
            Format::Csv => "csv",
            Format::Md => "md",
            Format::Json => "json",
            Format::Svg => "svg",
        }
    }

    /// Parse a format name (the CLI's `--format` values).
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "txt" => Some(Format::Txt),
            "csv" => Some(Format::Csv),
            "md" => Some(Format::Md),
            "json" => Some(Format::Json),
            "svg" => Some(Format::Svg),
            _ => None,
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.ext())
    }
}

/// Error rendering an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReportError {
    /// The artifact does not support the requested format (tables have
    /// no SVG form).
    UnsupportedFormat {
        /// The artifact's title.
        artifact: String,
        /// The requested format.
        format: Format,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::UnsupportedFormat { artifact, format } => {
                write!(f, "artifact {artifact:?} has no {format} form")
            }
        }
    }
}

impl Error for ReportError {}

/// Any renderable artifact value.
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    /// A titled table.
    Table(Table),
    /// An x axis with named lines.
    Series(Series),
    /// Stacked or range (tornado) bars.
    Breakdown(Breakdown),
    /// A screened design space with its frontier.
    Frontier(FrontierPlot),
    /// Typed diagnostics from a verification/lint pass.
    Findings(Findings),
}

impl Artifact {
    /// The artifact's title.
    pub fn title(&self) -> &str {
        match self {
            Artifact::Table(t) => &t.title,
            Artifact::Series(s) => &s.title,
            Artifact::Breakdown(b) => &b.title,
            Artifact::Frontier(f) => &f.title,
            Artifact::Findings(d) => &d.title,
        }
    }

    /// The formats this artifact renders to, in `regen` order.
    pub fn formats(&self) -> Vec<Format> {
        match self {
            // Tables and findings lists have no meaningful figure form.
            Artifact::Table(_) | Artifact::Findings(_) => {
                vec![Format::Txt, Format::Csv, Format::Md, Format::Json]
            }
            _ => Format::ALL.to_vec(),
        }
    }

    /// Render to one format.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::UnsupportedFormat`] when the artifact has
    /// no such form (see [`Artifact::formats`]).
    pub fn render(&self, format: Format) -> Result<String, ReportError> {
        let unsupported = || ReportError::UnsupportedFormat {
            artifact: self.title().to_owned(),
            format,
        };
        Ok(match (self, format) {
            (Artifact::Table(t), Format::Txt) => t.to_txt(),
            (Artifact::Table(t), Format::Csv) => t.to_csv(),
            (Artifact::Table(t), Format::Md) => t.to_md(),
            (Artifact::Table(_), Format::Svg) => return Err(unsupported()),
            (Artifact::Series(s), Format::Txt) => s.to_txt(),
            (Artifact::Series(s), Format::Csv) => s.to_csv(),
            (Artifact::Series(s), Format::Md) => s.to_md(),
            (Artifact::Series(s), Format::Svg) => s.to_svg(),
            (Artifact::Breakdown(b), Format::Txt) => b.to_txt(),
            (Artifact::Breakdown(b), Format::Csv) => b.to_csv(),
            (Artifact::Breakdown(b), Format::Md) => b.to_md(),
            (Artifact::Breakdown(b), Format::Svg) => b.to_svg(),
            (Artifact::Frontier(f), Format::Txt) => f.to_txt(),
            (Artifact::Frontier(f), Format::Csv) => f.to_csv(),
            (Artifact::Frontier(f), Format::Md) => f.to_md(),
            (Artifact::Frontier(f), Format::Svg) => f.to_svg(),
            (Artifact::Findings(d), Format::Txt) => d.to_txt(),
            (Artifact::Findings(d), Format::Csv) => d.to_csv(),
            (Artifact::Findings(d), Format::Md) => d.to_md(),
            (Artifact::Findings(_), Format::Svg) => return Err(unsupported()),
            (_, Format::Json) => self.to_json().render(),
        })
    }

    /// The artifact as a [`Json`] value tree (the `json` sink renders
    /// this; adapters and tests can inspect it structurally).
    pub fn to_json(&self) -> Json {
        fn notes(notes: &[String]) -> Json {
            Json::strs(notes.iter().cloned())
        }
        match self {
            Artifact::Table(t) => Json::obj(vec![
                ("kind", Json::str("table")),
                ("title", Json::str(&t.title)),
                (
                    "columns",
                    Json::strs(t.columns.iter().map(|c| c.name.clone())),
                ),
                (
                    "rows",
                    Json::Arr(
                        t.rows
                            .iter()
                            .map(|row| Json::Arr(row.iter().map(cell_json).collect()))
                            .collect(),
                    ),
                ),
                ("notes", notes(&t.notes)),
            ]),
            Artifact::Series(s) => Json::obj(vec![
                ("kind", Json::str("series")),
                ("title", Json::str(&s.title)),
                ("x_name", Json::str(&s.x_name)),
                (
                    "x",
                    match &s.x {
                        SeriesX::Labels(l) => Json::strs(l.iter().cloned()),
                        SeriesX::Values(v) => Json::nums(v.iter().cloned()),
                    },
                ),
                (
                    "lines",
                    Json::Arr(
                        s.lines
                            .iter()
                            .map(|l| {
                                Json::obj(vec![
                                    ("name", Json::str(&l.name)),
                                    ("values", Json::nums(l.values.iter().cloned())),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("notes", notes(&s.notes)),
            ]),
            Artifact::Breakdown(b) => Json::obj(vec![
                ("kind", Json::str("breakdown")),
                ("title", Json::str(&b.title)),
                ("unit", Json::str(&b.unit)),
                (
                    "baseline",
                    match b.baseline {
                        Some(v) => Json::Num(v),
                        None => Json::Null,
                    },
                ),
                (
                    "groups",
                    Json::Arr(
                        b.groups
                            .iter()
                            .map(|g| {
                                Json::obj(vec![
                                    ("label", Json::str(&g.label)),
                                    (
                                        "segments",
                                        Json::Arr(g.segments.iter().map(segment_json).collect()),
                                    ),
                                    (
                                        "callouts",
                                        Json::Arr(g.callouts.iter().map(segment_json).collect()),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("notes", notes(&b.notes)),
            ]),
            Artifact::Frontier(f) => Json::obj(vec![
                ("kind", Json::str("frontier")),
                ("title", Json::str(&f.title)),
                ("axes", Json::strs(f.axes.iter().cloned())),
                ("objectives", Json::strs(f.objectives.iter().cloned())),
                (
                    "directions",
                    Json::strs(f.directions.iter().map(|d| match d {
                        Direction::LowerIsBetter => "lower",
                        Direction::HigherIsBetter => "higher",
                    })),
                ),
                (
                    "points",
                    Json::Arr(
                        f.points
                            .iter()
                            .map(|p| {
                                Json::obj(vec![
                                    ("index", Json::Int(p.index as i64)),
                                    ("coords", Json::nums(p.coords.iter().cloned())),
                                    ("objectives", Json::nums(p.objectives.iter().cloned())),
                                    ("on_frontier", Json::Bool(p.on_frontier)),
                                    (
                                        "confirmed",
                                        match &p.confirmed {
                                            Some(v) => Json::nums(v.iter().cloned()),
                                            None => Json::Null,
                                        },
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("notes", notes(&f.notes)),
            ]),
            Artifact::Findings(d) => Json::obj(vec![
                ("kind", Json::str("findings")),
                ("title", Json::str(&d.title)),
                (
                    "counts",
                    Json::Obj(
                        d.counts()
                            .into_iter()
                            .map(|(name, n)| (name, Json::Int(n as i64)))
                            .collect(),
                    ),
                ),
                (
                    "items",
                    Json::Arr(
                        d.items
                            .iter()
                            .map(|item| {
                                Json::obj(vec![
                                    ("severity", Json::str(&item.severity)),
                                    ("code", Json::str(&item.code)),
                                    ("path", Json::str(&item.path)),
                                    ("message", Json::str(&item.message)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("notes", notes(&d.notes)),
            ]),
        }
    }
}

fn cell_json(cell: &Cell) -> Json {
    match cell {
        Cell::Empty => Json::Null,
        Cell::Text(s) => Json::str(s),
        Cell::Int(v) => Json::Int(*v),
        Cell::Num(v) => Json::Num(*v),
    }
}

fn segment_json(s: &crate::value::Segment) -> Json {
    Json::obj(vec![
        ("label", Json::str(&s.label)),
        ("value", Json::Num(s.value)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Cell;

    fn table() -> Artifact {
        Artifact::Table(
            Table::new("t")
                .text_column("a")
                .numeric_column("b", 2)
                .row(vec![Cell::text("x"), Cell::num(1.5)]),
        )
    }

    #[test]
    fn formats_and_rendering_agree() {
        let t = table();
        for format in t.formats() {
            assert!(t.render(format).is_ok(), "{format}");
        }
        assert_eq!(
            t.render(Format::Svg),
            Err(ReportError::UnsupportedFormat {
                artifact: "t".into(),
                format: Format::Svg
            })
        );
    }

    #[test]
    fn json_schema_is_tagged() {
        let json = table().render(Format::Json).unwrap();
        assert!(json.contains("\"kind\": \"table\""));
        assert!(json.contains("\"rows\""));
        // The scanner can read the writer's output.
        let objs = crate::json::objects(&json);
        assert_eq!(crate::json::string_field(objs[0], "kind"), Some("table"));
    }

    #[test]
    fn format_parse_round_trips() {
        for f in Format::ALL {
            assert_eq!(Format::parse(f.ext()), Some(f));
        }
        assert_eq!(Format::parse("pdf"), None);
    }
}
