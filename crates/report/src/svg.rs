//! The SVG sink: standalone, deterministic vector figures.
//!
//! No timestamps, no randomness, fixed canvas and palette, all
//! coordinates formatted to two decimals — regenerating a figure from
//! the same value yields identical bytes. The figures are deliberately
//! plain (a title, axes, marks, a legend): they are *artifacts* for
//! the docs book, not an interactive charting layer.

use crate::value::{Breakdown, FrontierPlot, Series, SeriesX};

const W: f64 = 720.0;
const H: f64 = 480.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 48.0;
const MARGIN_B: f64 = 56.0;

/// The fixed series palette.
const PALETTE: [&str; 6] = [
    "#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed", "#0891b2",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn f(v: f64) -> String {
    format!("{v:.2}")
}

struct Canvas {
    body: String,
}

impl Canvas {
    fn new(title: &str) -> Canvas {
        let mut body = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
             viewBox=\"0 0 {W} {H}\" font-family=\"monospace\" font-size=\"12\">\n"
        );
        body.push_str(&format!(
            "<rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>\n\
             <text x=\"{}\" y=\"24\" font-size=\"14\" font-weight=\"bold\">{}</text>\n",
            f(MARGIN_L),
            esc(title)
        ));
        Canvas { body }
    }

    fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        self.body.push_str(&format!(
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{stroke}\" stroke-width=\"{}\"/>\n",
            f(x1), f(y1), f(x2), f(y2), f(width)
        ));
    }

    fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        self.body.push_str(&format!(
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{fill}\"/>\n",
            f(x),
            f(y),
            f(w.max(0.0)),
            f(h.max(0.0))
        ));
    }

    fn circle(&mut self, x: f64, y: f64, r: f64, fill: &str) {
        self.body.push_str(&format!(
            "<circle cx=\"{}\" cy=\"{}\" r=\"{}\" fill=\"{fill}\"/>\n",
            f(x),
            f(y),
            f(r)
        ));
    }

    fn text(&mut self, x: f64, y: f64, anchor: &str, content: &str) {
        self.body.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"{anchor}\">{}</text>\n",
            f(x),
            f(y),
            esc(content)
        ));
    }

    fn polyline(&mut self, points: &[(f64, f64)], stroke: &str) {
        if points.len() < 2 {
            return;
        }
        let path: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{},{}", f(*x), f(*y)))
            .collect();
        self.body.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"1.50\"/>\n",
            path.join(" ")
        ));
    }

    fn finish(mut self) -> String {
        self.body.push_str("</svg>\n");
        self.body
    }
}

/// Linear map of `v` in `[lo, hi]` onto `[a, b]` (degenerate ranges
/// collapse to the midpoint).
fn scale(v: f64, lo: f64, hi: f64, a: f64, b: f64) -> f64 {
    if hi <= lo {
        (a + b) / 2.0
    } else {
        a + (v - lo) / (hi - lo) * (b - a)
    }
}

/// Pad a data range so marks sit off the frame edge.
fn padded(lo: f64, hi: f64) -> (f64, f64) {
    let span = if hi > lo { hi - lo } else { lo.abs().max(1.0) };
    (lo - 0.05 * span, hi + 0.05 * span)
}

fn frame(c: &mut Canvas) {
    c.line(
        MARGIN_L,
        H - MARGIN_B,
        W - MARGIN_R,
        H - MARGIN_B,
        "#111827",
        1.0,
    );
    c.line(MARGIN_L, MARGIN_T, MARGIN_L, H - MARGIN_B, "#111827", 1.0);
}

fn legend(c: &mut Canvas, names: &[String]) {
    for (i, name) in names.iter().enumerate() {
        let y = MARGIN_T + 14.0 * i as f64;
        c.rect(
            W - MARGIN_R + 12.0,
            y - 8.0,
            10.0,
            10.0,
            PALETTE[i % PALETTE.len()],
        );
        c.text(W - MARGIN_R + 28.0, y, "start", name);
    }
}

pub(crate) fn series(s: &Series) -> String {
    let mut c = Canvas::new(&s.title);
    frame(&mut c);
    let n = s.x.len();
    let (x_lo, x_hi) = match &s.x {
        SeriesX::Values(v) => {
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            padded(lo, hi)
        }
        SeriesX::Labels(_) => (-0.5, n as f64 - 0.5),
    };
    let ys: Vec<f64> = s
        .lines
        .iter()
        .flat_map(|l| l.values.iter().cloned())
        .collect();
    let y_lo = ys.iter().cloned().fold(f64::INFINITY, f64::min).min(0.0);
    let y_hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let (y_lo, y_hi) = padded(y_lo, y_hi);

    let px = |i: usize| -> f64 {
        let v = match &s.x {
            SeriesX::Values(v) => v[i],
            SeriesX::Labels(_) => i as f64,
        };
        scale(v, x_lo, x_hi, MARGIN_L, W - MARGIN_R)
    };
    let py = |v: f64| scale(v, y_lo, y_hi, H - MARGIN_B, MARGIN_T);

    // X tick labels (at most 8, evenly thinned).
    let step = n.div_ceil(8).max(1);
    for i in (0..n).step_by(step) {
        c.text(
            px(i),
            H - MARGIN_B + 16.0,
            "middle",
            &s.x.display_label(i, s.precision.or(Some(3))),
        );
    }
    c.text(
        (MARGIN_L + W - MARGIN_R) / 2.0,
        H - 16.0,
        "middle",
        &s.x_name,
    );
    // Y tick labels at the quartiles.
    for k in 0..=4 {
        let v = y_lo + (y_hi - y_lo) * k as f64 / 4.0;
        c.text(MARGIN_L - 6.0, py(v) + 4.0, "end", &format!("{v:.4}"));
        c.line(MARGIN_L, py(v), W - MARGIN_R, py(v), "#e5e7eb", 0.5);
    }
    for (li, l) in s.lines.iter().enumerate() {
        let color = PALETTE[li % PALETTE.len()];
        let pts: Vec<(f64, f64)> = (0..n).map(|i| (px(i), py(l.values[i]))).collect();
        c.polyline(&pts, color);
        for &(x, y) in &pts {
            c.circle(x, y, 2.5, color);
        }
    }
    legend(
        &mut c,
        &s.lines.iter().map(|l| l.name.clone()).collect::<Vec<_>>(),
    );
    c.finish()
}

pub(crate) fn breakdown(b: &Breakdown) -> String {
    let mut c = Canvas::new(&b.title);
    let rows = b.groups.len().max(1) as f64;
    let row_h = ((H - MARGIN_T - MARGIN_B) / rows).min(56.0);
    let bar_h = row_h * 0.55;

    match b.baseline {
        Some(baseline) => {
            // Tornado: range bars around the baseline.
            let mut lo = baseline;
            let mut hi = baseline;
            for g in &b.groups {
                for seg in &g.segments {
                    lo = lo.min(seg.value);
                    hi = hi.max(seg.value);
                }
            }
            let (lo, hi) = padded(lo, hi);
            let px = |v: f64| scale(v, lo, hi, MARGIN_L, W - MARGIN_R);
            frame(&mut c);
            for k in 0..=4 {
                let v = lo + (hi - lo) * k as f64 / 4.0;
                c.text(px(v), H - MARGIN_B + 16.0, "middle", &format!("{v:.1}"));
            }
            c.text((MARGIN_L + W - MARGIN_R) / 2.0, H - 16.0, "middle", &b.unit);
            for (i, g) in b.groups.iter().enumerate() {
                let [s_lo, s_hi] = g.segments.as_slice() else {
                    panic!("range breakdown group {:?} must be [low, high]", g.label);
                };
                let y = MARGIN_T + row_h * i as f64 + (row_h - bar_h) / 2.0;
                let (x0, x1) = (
                    px(s_lo.value.min(s_hi.value)),
                    px(s_lo.value.max(s_hi.value)),
                );
                c.rect(x0, y, x1 - x0, bar_h, PALETTE[0]);
                c.text(
                    W - MARGIN_R + 12.0,
                    y + bar_h / 2.0 + 4.0,
                    "start",
                    &g.label,
                );
            }
            // The baseline marker goes on top of the bars.
            c.line(
                px(baseline),
                MARGIN_T,
                px(baseline),
                H - MARGIN_B,
                "#111827",
                1.0,
            );
        }
        None => {
            // Stacked horizontal bars, one per group.
            let max_total = b
                .groups
                .iter()
                .map(|g| g.segments.iter().map(|s| s.value).sum::<f64>())
                .fold(f64::MIN_POSITIVE, f64::max);
            let px = |v: f64| scale(v, 0.0, max_total * 1.05, MARGIN_L, W - MARGIN_R);
            frame(&mut c);
            for k in 0..=4 {
                let v = max_total * 1.05 * k as f64 / 4.0;
                c.text(px(v), H - MARGIN_B + 16.0, "middle", &format!("{v:.1}"));
            }
            c.text((MARGIN_L + W - MARGIN_R) / 2.0, H - 16.0, "middle", &b.unit);
            let mut segment_names: Vec<String> = Vec::new();
            for g in &b.groups {
                for s in &g.segments {
                    if !segment_names.contains(&s.label) {
                        segment_names.push(s.label.clone());
                    }
                }
            }
            for (i, g) in b.groups.iter().enumerate() {
                let y = MARGIN_T + row_h * i as f64 + (row_h - bar_h) / 2.0;
                let mut x = px(0.0);
                for s in &g.segments {
                    let w = px(s.value) - px(0.0);
                    let color_index = segment_names
                        .iter()
                        .position(|n| *n == s.label)
                        .unwrap_or(0);
                    c.rect(x, y, w, bar_h, PALETTE[color_index % PALETTE.len()]);
                    x += w;
                }
                c.text(
                    W - MARGIN_R + 12.0,
                    y + bar_h / 2.0 + 4.0,
                    "start",
                    &g.label,
                );
            }
            legend(&mut c, &segment_names);
        }
    }
    c.finish()
}

pub(crate) fn frontier(p: &FrontierPlot) -> String {
    let mut c = Canvas::new(&p.title);
    frame(&mut c);
    // Scatter of the first two objectives (a single-objective plot
    // falls back to objective vs first axis).
    type Getter = fn(&crate::FrontierPoint) -> f64;
    let (x_of, y_of, x_name, y_name): (Getter, Getter, String, String) = if p.objectives.len() >= 2
    {
        (
            |pt| pt.objectives[0],
            |pt| pt.objectives[1],
            format!("{} {}", p.objectives[0], p.directions[0].arrow()),
            format!("{} {}", p.objectives[1], p.directions[1].arrow()),
        )
    } else {
        (
            |pt| pt.coords[0],
            |pt| pt.objectives[0],
            p.axes.first().cloned().unwrap_or_default(),
            format!("{} {}", p.objectives[0], p.directions[0].arrow()),
        )
    };
    let xs: Vec<f64> = p.points.iter().map(x_of).collect();
    let ys: Vec<f64> = p.points.iter().map(y_of).collect();
    let (x_lo, x_hi) = padded(
        xs.iter().cloned().fold(f64::INFINITY, f64::min),
        xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let (y_lo, y_hi) = padded(
        ys.iter().cloned().fold(f64::INFINITY, f64::min),
        ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let px = |v: f64| scale(v, x_lo, x_hi, MARGIN_L, W - MARGIN_R);
    let py = |v: f64| scale(v, y_lo, y_hi, H - MARGIN_B, MARGIN_T);
    for k in 0..=4 {
        let vx = x_lo + (x_hi - x_lo) * k as f64 / 4.0;
        c.text(px(vx), H - MARGIN_B + 16.0, "middle", &format!("{vx:.3}"));
        let vy = y_lo + (y_hi - y_lo) * k as f64 / 4.0;
        c.text(MARGIN_L - 6.0, py(vy) + 4.0, "end", &format!("{vy:.3}"));
    }
    c.text((MARGIN_L + W - MARGIN_R) / 2.0, H - 16.0, "middle", &x_name);
    c.text(MARGIN_L, MARGIN_T - 10.0, "start", &y_name);

    // Dominated screen first (underneath), then the frontier.
    for pt in p.points.iter().filter(|pt| !pt.on_frontier) {
        c.circle(px(x_of(pt)), py(y_of(pt)), 2.0, "#d1d5db");
    }
    let mut members: Vec<&crate::FrontierPoint> = p.frontier().collect();
    members.sort_by(|a, b| {
        x_of(a)
            .partial_cmp(&x_of(b))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    let path: Vec<(f64, f64)> = members
        .iter()
        .map(|pt| (px(x_of(pt)), py(y_of(pt))))
        .collect();
    c.polyline(&path, PALETTE[0]);
    for pt in &members {
        c.circle(px(x_of(pt)), py(y_of(pt)), 3.5, PALETTE[0]);
    }
    // MC confirmations as open red rings around their screen point.
    for pt in p.points.iter().filter(|pt| pt.confirmed.is_some()) {
        let (x, y) = (px(x_of(pt)), py(y_of(pt)));
        c.body.push_str(&format!(
            "<circle cx=\"{}\" cy=\"{}\" r=\"5.50\" fill=\"none\" stroke=\"{}\" stroke-width=\"1.00\"/>\n",
            f(x), f(y), PALETTE[1]
        ));
    }
    legend(&mut c, &["frontier".to_owned(), "MC confirmed".to_owned()]);
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::value::SeriesX;
    use crate::{Breakdown, Direction, FrontierPlot, FrontierPoint, Segment, Series};

    fn plot() -> FrontierPlot {
        FrontierPlot::new(
            "f",
            vec!["x".into()],
            vec!["cost".into(), "shipped".into()],
            vec![Direction::LowerIsBetter, Direction::HigherIsBetter],
            vec![
                FrontierPoint {
                    index: 0,
                    coords: vec![0.0],
                    objectives: vec![1.0, 0.9],
                    on_frontier: true,
                    confirmed: Some(vec![1.01, 0.89]),
                },
                FrontierPoint {
                    index: 1,
                    coords: vec![1.0],
                    objectives: vec![2.0, 0.8],
                    on_frontier: false,
                    confirmed: None,
                },
            ],
        )
    }

    #[test]
    fn svg_is_wellformed_and_deterministic() {
        let s = Series::new("s & t", "x", SeriesX::Values(vec![1.0, 2.0]))
            .line("y <1>", vec![3.0, 4.0]);
        let svg = s.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("s &amp; t"));
        assert!(svg.contains("y &lt;1&gt;"));
        assert_eq!(svg, s.to_svg());
    }

    #[test]
    fn tornado_svg_draws_baseline_and_bars() {
        let b = Breakdown::new("t", "cu")
            .with_baseline(100.0)
            .range("p", 90.0, 110.0);
        let svg = b.to_svg();
        assert!(svg.matches("<rect").count() >= 2); // background + bar
        assert!(svg.contains("cu"));
    }

    #[test]
    fn stacked_svg_has_legend_entries() {
        let b = Breakdown::new("s", "cu").group(
            "g",
            vec![Segment::new("direct", 2.0), Segment::new("yield loss", 1.0)],
        );
        let svg = b.to_svg();
        assert!(svg.contains("direct") && svg.contains("yield loss"));
    }

    #[test]
    fn frontier_svg_marks_confirmations() {
        let svg = plot().to_svg();
        assert!(svg.contains("stroke-width=\"1.00\""), "confirmation ring");
        assert!(svg.contains("MC confirmed"));
    }
}
