//! The typed artifact values the sinks render.

/// Horizontal alignment of a [`Table`] column in the text sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Flush left (labels).
    Left,
    /// Flush right (numbers).
    Right,
}

/// One column of a [`Table`].
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Header label.
    pub name: String,
    /// Text-sink alignment.
    pub align: Align,
    /// Fixed decimal places for [`Cell::Num`] values in the *display*
    /// sinks (txt, Markdown). `None` prints the shortest round-trip
    /// form. CSV and JSON always carry full precision.
    pub precision: Option<usize>,
}

/// One cell of a [`Table`] row.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// An empty cell.
    Empty,
    /// A label.
    Text(String),
    /// An integer quantity.
    Int(i64),
    /// A measurement.
    Num(f64),
}

impl Cell {
    /// A text cell.
    pub fn text(s: impl Into<String>) -> Cell {
        Cell::Text(s.into())
    }

    /// An integer cell.
    pub fn int(v: i64) -> Cell {
        Cell::Int(v)
    }

    /// A numeric cell.
    pub fn num(v: f64) -> Cell {
        Cell::Num(v)
    }

    /// A counter cell: an exact `u64` counter (e.g. a probe snapshot
    /// field), saturating at `i64::MAX` — far beyond any real count.
    pub fn count(v: u64) -> Cell {
        Cell::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Display-sink rendering under a column's precision.
    pub(crate) fn display(&self, precision: Option<usize>) -> String {
        match self {
            Cell::Empty => String::new(),
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Num(v) => match precision {
                Some(p) => format!("{v:.p$}"),
                None => crate::fmt_f64(*v),
            },
        }
    }
}

/// A titled table: columns with alignment/precision, rows of cells,
/// optional footnotes.
///
/// # Examples
///
/// ```
/// use ipass_report::{Cell, Table};
///
/// let t = Table::new("Table 1 — areas [mm²]")
///     .text_column("component")
///     .numeric_column("paper", 3)
///     .numeric_column("measured", 3)
///     .row(vec![Cell::text("IP-R 100 kΩ"), Cell::num(0.25), Cell::num(0.254)])
///     .note("synthesized in the SUMMIT process");
/// assert!(t.to_txt().contains("IP-R"));
/// assert!(t.to_csv().starts_with("component,paper,measured"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Title line.
    pub title: String,
    /// Column specs.
    pub columns: Vec<Column>,
    /// Rows; every row has exactly `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
    /// Footnotes.
    pub notes: Vec<String>,
}

impl Table {
    /// An empty table.
    pub fn new(title: impl Into<String>) -> Table {
        Table {
            title: title.into(),
            columns: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a left-aligned text column.
    pub fn text_column(mut self, name: impl Into<String>) -> Table {
        self.columns.push(Column {
            name: name.into(),
            align: Align::Left,
            precision: None,
        });
        self
    }

    /// Append a right-aligned numeric column with fixed decimals in the
    /// display sinks.
    pub fn numeric_column(mut self, name: impl Into<String>, precision: usize) -> Table {
        self.columns.push(Column {
            name: name.into(),
            align: Align::Right,
            precision: Some(precision),
        });
        self
    }

    /// Append a right-aligned column without fixed precision (integers,
    /// shortest-round-trip floats).
    pub fn integer_column(mut self, name: impl Into<String>) -> Table {
        self.columns.push(Column {
            name: name.into(),
            align: Align::Right,
            precision: None,
        });
        self
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count disagrees with the column count — a
    /// programming error in the adapter, not a data condition.
    pub fn row(mut self, cells: Vec<Cell>) -> Table {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "table {:?}: row has {} cells for {} columns",
            self.title,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
        self
    }

    /// Append a footnote.
    pub fn note(mut self, note: impl Into<String>) -> Table {
        self.notes.push(note.into());
        self
    }

    /// Render as aligned plain text.
    pub fn to_txt(&self) -> String {
        crate::txt::table(self)
    }

    /// Render as CSV (headers + rows; notes are omitted).
    pub fn to_csv(&self) -> String {
        crate::csv::table(self)
    }

    /// Render as a Markdown pipe table.
    pub fn to_md(&self) -> String {
        crate::md::table(self)
    }
}

/// One row of a [`Findings`] report: a typed diagnostic from a
/// verification or lint pass.
///
/// The severity is carried as a plain string (`"error"`, `"warning"`,
/// `"info"`, …) so this crate stays below the domain crates — the
/// producer's severity enum maps to its display name at the adapter.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Severity name, e.g. `"error"`.
    pub severity: String,
    /// Stable machine-readable code, e.g. `"threshold-mismatch"`.
    pub code: String,
    /// Where in the subject the finding anchors (a stage/part path,
    /// an op index, or `"program"`).
    pub path: String,
    /// Human-readable explanation.
    pub message: String,
}

/// A titled list of [`Finding`]s — the renderable form of a static
/// verifier's diagnostics.
///
/// Renders to txt/CSV/Markdown as a four-column table and to JSON as a
/// `"kind": "findings"` document carrying per-severity counts, so CI
/// gates can read the counts without re-parsing rows.
///
/// # Examples
///
/// ```
/// use ipass_report::Findings;
///
/// let f = Findings::new("lint — demo flow")
///     .finding("warning", "zero-coverage-test", "ft", "test detects nothing")
///     .note("1 finding");
/// assert!(f.to_csv().starts_with("severity,code,path,message"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Findings {
    /// Title line.
    pub title: String,
    /// The findings, in emission order.
    pub items: Vec<Finding>,
    /// Footnotes.
    pub notes: Vec<String>,
}

impl Findings {
    /// An empty findings list.
    pub fn new(title: impl Into<String>) -> Findings {
        Findings {
            title: title.into(),
            items: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one finding.
    #[must_use]
    pub fn finding(
        mut self,
        severity: impl Into<String>,
        code: impl Into<String>,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Findings {
        self.push(severity, code, path, message);
        self
    }

    /// Append one finding in place.
    pub fn push(
        &mut self,
        severity: impl Into<String>,
        code: impl Into<String>,
        path: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.items.push(Finding {
            severity: severity.into(),
            code: code.into(),
            path: path.into(),
            message: message.into(),
        });
    }

    /// Append a footnote.
    #[must_use]
    pub fn note(mut self, note: impl Into<String>) -> Findings {
        self.notes.push(note.into());
        self
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the list carries no findings.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Per-severity counts, keyed by severity name in first-seen order.
    pub fn counts(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for item in &self.items {
            match counts.iter_mut().find(|(name, _)| *name == item.severity) {
                Some((_, n)) => *n += 1,
                None => counts.push((item.severity.clone(), 1)),
            }
        }
        counts
    }

    /// The tabular form the text sinks render.
    pub(crate) fn as_table(&self) -> Table {
        let mut table = Table::new(&self.title)
            .text_column("severity")
            .text_column("code")
            .text_column("path")
            .text_column("message");
        for item in &self.items {
            table = table.row(vec![
                Cell::text(&item.severity),
                Cell::text(&item.code),
                Cell::text(&item.path),
                Cell::text(&item.message),
            ]);
        }
        for note in &self.notes {
            table = table.note(note);
        }
        table
    }

    /// Render as aligned plain text.
    pub fn to_txt(&self) -> String {
        self.as_table().to_txt()
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        self.as_table().to_csv()
    }

    /// Render as a Markdown pipe table.
    pub fn to_md(&self) -> String {
        self.as_table().to_md()
    }
}

/// The x axis of a [`Series`].
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesX {
    /// Categorical positions (e.g. SMD case codes).
    Labels(Vec<String>),
    /// Numeric positions (e.g. a swept parameter).
    Values(Vec<f64>),
}

impl SeriesX {
    /// Number of x positions.
    pub fn len(&self) -> usize {
        match self {
            SeriesX::Labels(l) => l.len(),
            SeriesX::Values(v) => v.len(),
        }
    }

    /// Whether there are no positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Machine-precision string of position `i` (CSV, JSON).
    pub(crate) fn label(&self, i: usize) -> String {
        match self {
            SeriesX::Labels(l) => l[i].clone(),
            SeriesX::Values(v) => crate::fmt_f64(v[i]),
        }
    }

    /// Display string of position `i` under a precision (txt, md, SVG
    /// tick labels).
    pub(crate) fn display_label(&self, i: usize, precision: Option<usize>) -> String {
        match (self, precision) {
            (SeriesX::Values(v), Some(p)) => format!("{:.p$}", v[i]),
            _ => self.label(i),
        }
    }
}

/// One named line of a [`Series`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesLine {
    /// Line label.
    pub name: String,
    /// One value per x position.
    pub values: Vec<f64>,
}

/// One x axis, n named lines — parameter sweeps, the Fig. 1 area
/// ladder.
///
/// # Examples
///
/// ```
/// use ipass_report::{Series, SeriesLine, SeriesX};
///
/// let s = Series::new(
///     "Fig. 1 — area vs SMD type [mm²]",
///     "type",
///     SeriesX::Labels(vec!["0805".into(), "0603".into()]),
/// )
/// .line("body", vec![2.0, 1.28])
/// .line("footprint", vec![4.5, 3.75]);
/// assert!(s.to_csv().starts_with("type,body,footprint"));
/// assert!(s.to_svg().starts_with("<svg"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Title line.
    pub title: String,
    /// The x axis name.
    pub x_name: String,
    /// The x positions.
    pub x: SeriesX,
    /// The named lines; every line has `x.len()` values.
    pub lines: Vec<SeriesLine>,
    /// Fixed decimal places for the *display* sinks (txt, Markdown,
    /// SVG tick labels). `None` prints the shortest round-trip form.
    /// CSV and JSON always carry full precision.
    pub precision: Option<usize>,
    /// Footnotes.
    pub notes: Vec<String>,
}

impl Series {
    /// A series with no lines yet.
    pub fn new(title: impl Into<String>, x_name: impl Into<String>, x: SeriesX) -> Series {
        Series {
            title: title.into(),
            x_name: x_name.into(),
            x,
            lines: Vec::new(),
            precision: None,
            notes: Vec::new(),
        }
    }

    /// Fix the display precision (txt/Markdown/SVG ticks; CSV and JSON
    /// stay at full precision).
    pub fn with_precision(mut self, precision: usize) -> Series {
        self.precision = Some(precision);
        self
    }

    /// Append a line.
    ///
    /// # Panics
    ///
    /// Panics when the value count disagrees with the x positions.
    pub fn line(mut self, name: impl Into<String>, values: Vec<f64>) -> Series {
        assert_eq!(
            values.len(),
            self.x.len(),
            "series {:?}: line has {} values for {} x positions",
            self.title,
            values.len(),
            self.x.len()
        );
        self.lines.push(SeriesLine {
            name: name.into(),
            values,
        });
        self
    }

    /// Append a footnote.
    pub fn note(mut self, note: impl Into<String>) -> Series {
        self.notes.push(note.into());
        self
    }

    /// Render as aligned plain text.
    pub fn to_txt(&self) -> String {
        crate::txt::series(self)
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        crate::csv::series(self)
    }

    /// Render as a Markdown pipe table.
    pub fn to_md(&self) -> String {
        crate::md::series(self)
    }

    /// Render as a standalone SVG chart.
    pub fn to_svg(&self) -> String {
        crate::svg::series(self)
    }
}

/// One labeled amount inside a [`BreakdownGroup`].
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Segment label.
    pub label: String,
    /// Amount.
    pub value: f64,
}

impl Segment {
    /// Create a segment.
    pub fn new(label: impl Into<String>, value: f64) -> Segment {
        Segment {
            label: label.into(),
            value,
        }
    }
}

/// One bar of a [`Breakdown`].
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownGroup {
    /// Bar label (a solution, a perturbed parameter).
    pub label: String,
    /// Stacked mode: the additive amounts. Range mode: exactly the
    /// `low` and `high` endpoints.
    pub segments: Vec<Segment>,
    /// Non-additive callouts ("thereof: chip cost").
    pub callouts: Vec<Segment>,
}

/// Stacked bars (Fig. 5 cost composition) or — with a
/// [`baseline`](Breakdown::baseline) — low/high range bars around it
/// (the sensitivity tornado).
///
/// # Examples
///
/// ```
/// use ipass_report::{Breakdown, Segment};
///
/// // A tornado: two parameters swung around a 276.2 baseline.
/// let b = Breakdown::new("sensitivity", "cost units")
///     .with_baseline(276.2)
///     .range("chip cost ±10 %", 258.0, 295.0)
///     .range("test cost ±50 %", 271.0, 281.0);
/// assert!(b.to_txt().contains("chip cost"));
/// assert!(b.to_svg().contains("<svg"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Title line.
    pub title: String,
    /// Unit of every amount (display only).
    pub unit: String,
    /// `Some(b)`: range mode — every group is a `[low, high]` pair
    /// drawn around `b`. `None`: stacked mode.
    pub baseline: Option<f64>,
    /// The bars, in presentation order.
    pub groups: Vec<BreakdownGroup>,
    /// Footnotes.
    pub notes: Vec<String>,
}

impl Breakdown {
    /// An empty stacked breakdown.
    pub fn new(title: impl Into<String>, unit: impl Into<String>) -> Breakdown {
        Breakdown {
            title: title.into(),
            unit: unit.into(),
            baseline: None,
            groups: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Switch to range (tornado) mode around a baseline value.
    pub fn with_baseline(mut self, baseline: f64) -> Breakdown {
        self.baseline = Some(baseline);
        self
    }

    /// Append a stacked bar.
    pub fn group(mut self, label: impl Into<String>, segments: Vec<Segment>) -> Breakdown {
        self.groups.push(BreakdownGroup {
            label: label.into(),
            segments,
            callouts: Vec::new(),
        });
        self
    }

    /// Append a stacked bar with non-additive callouts.
    pub fn group_with_callouts(
        mut self,
        label: impl Into<String>,
        segments: Vec<Segment>,
        callouts: Vec<Segment>,
    ) -> Breakdown {
        self.groups.push(BreakdownGroup {
            label: label.into(),
            segments,
            callouts,
        });
        self
    }

    /// Append a range bar (low/high endpoints; range mode).
    pub fn range(self, label: impl Into<String>, low: f64, high: f64) -> Breakdown {
        self.group(
            label,
            vec![Segment::new("low", low), Segment::new("high", high)],
        )
    }

    /// Append a footnote.
    pub fn note(mut self, note: impl Into<String>) -> Breakdown {
        self.notes.push(note.into());
        self
    }

    /// Render as aligned plain text (with unit-width bars).
    pub fn to_txt(&self) -> String {
        crate::txt::breakdown(self)
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        crate::csv::breakdown(self)
    }

    /// Render as Markdown.
    pub fn to_md(&self) -> String {
        crate::md::breakdown(self)
    }

    /// Render as a standalone SVG chart.
    pub fn to_svg(&self) -> String {
        crate::svg::breakdown(self)
    }
}

/// The sense of a [`FrontierPlot`] objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (costs).
    LowerIsBetter,
    /// Larger is better (shipped fraction).
    HigherIsBetter,
}

impl Direction {
    /// Short arrow for display sinks.
    pub(crate) fn arrow(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "↓",
            Direction::HigherIsBetter => "↑",
        }
    }
}

/// One evaluated point of a [`FrontierPlot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Sampler point index (the point's identity).
    pub index: usize,
    /// Coordinates, one per axis.
    pub coords: Vec<f64>,
    /// Screened objective values, one per objective.
    pub objectives: Vec<f64>,
    /// Whether the point is on the Pareto frontier.
    pub on_frontier: bool,
    /// Monte Carlo-confirmed objective values, when the point was
    /// promoted by adaptive refinement.
    pub confirmed: Option<Vec<f64>>,
}

/// A screened design space with its non-dominated subset — the
/// design-space frontier artifact.
///
/// # Examples
///
/// ```
/// use ipass_report::{Direction, FrontierPlot, FrontierPoint};
///
/// let plot = FrontierPlot::new(
///     "design space",
///     vec!["volume".into()],
///     vec!["final cost".into()],
///     vec![Direction::LowerIsBetter],
///     vec![FrontierPoint {
///         index: 0,
///         coords: vec![1000.0],
///         objectives: vec![291.3],
///         on_frontier: true,
///         confirmed: None,
///     }],
/// );
/// assert!(plot.to_txt().contains("frontier"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPlot {
    /// Title line.
    pub title: String,
    /// Axis names, aligned with every point's `coords`.
    pub axes: Vec<String>,
    /// Objective names, aligned with every point's `objectives`.
    pub objectives: Vec<String>,
    /// Objective senses, aligned with `objectives`.
    pub directions: Vec<Direction>,
    /// All evaluated points, in sampler index order.
    pub points: Vec<FrontierPoint>,
    /// Footnotes.
    pub notes: Vec<String>,
}

impl FrontierPlot {
    /// Create a plot.
    ///
    /// # Panics
    ///
    /// Panics when `objectives` and `directions` disagree in length, or
    /// a point's arity disagrees with the axis/objective names.
    pub fn new(
        title: impl Into<String>,
        axes: Vec<String>,
        objectives: Vec<String>,
        directions: Vec<Direction>,
        points: Vec<FrontierPoint>,
    ) -> FrontierPlot {
        assert_eq!(
            objectives.len(),
            directions.len(),
            "objective/direction arity mismatch"
        );
        for p in &points {
            assert_eq!(p.coords.len(), axes.len(), "point/axis arity mismatch");
            assert_eq!(
                p.objectives.len(),
                objectives.len(),
                "point/objective arity mismatch"
            );
        }
        FrontierPlot {
            title: title.into(),
            axes,
            objectives,
            directions,
            points,
            notes: Vec::new(),
        }
    }

    /// Append a footnote.
    pub fn note(mut self, note: impl Into<String>) -> FrontierPlot {
        self.notes.push(note.into());
        self
    }

    /// The frontier members, in point-index order.
    pub fn frontier(&self) -> impl Iterator<Item = &FrontierPoint> {
        self.points.iter().filter(|p| p.on_frontier)
    }

    /// Render as aligned plain text (the frontier table plus a screen
    /// summary).
    pub fn to_txt(&self) -> String {
        crate::txt::frontier(self)
    }

    /// Render as CSV (every screened point, with frontier/confirmation
    /// columns).
    pub fn to_csv(&self) -> String {
        crate::csv::frontier(self)
    }

    /// Render as Markdown (the frontier table).
    pub fn to_md(&self) -> String {
        crate::md::frontier(self)
    }

    /// Render as a standalone SVG scatter of the first two objectives.
    pub fn to_svg(&self) -> String {
        crate::svg::frontier(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "row has 1 cells for 2 columns")]
    fn table_arity_is_enforced() {
        let _ = Table::new("t")
            .text_column("a")
            .numeric_column("b", 1)
            .row(vec![Cell::text("only one")]);
    }

    #[test]
    #[should_panic(expected = "line has 1 values for 2 x positions")]
    fn series_arity_is_enforced() {
        let _ = Series::new("s", "x", SeriesX::Values(vec![1.0, 2.0])).line("l", vec![1.0]);
    }

    #[test]
    fn count_cells_are_exact_integers_saturating_at_i64_max() {
        assert_eq!(Cell::count(0), Cell::Int(0));
        assert_eq!(Cell::count(12_345).display(None), "12345");
        assert_eq!(Cell::count(u64::MAX), Cell::Int(i64::MAX));
    }

    #[test]
    fn cell_display_honors_precision() {
        assert_eq!(Cell::num(1.23456).display(Some(2)), "1.23");
        assert_eq!(Cell::num(1.5).display(None), "1.5");
        assert_eq!(Cell::int(7).display(Some(2)), "7");
        assert_eq!(Cell::text("x").display(Some(2)), "x");
        assert_eq!(Cell::Empty.display(None), "");
    }

    #[test]
    fn frontier_filters_members() {
        let plot = FrontierPlot::new(
            "f",
            vec!["x".into()],
            vec!["y".into()],
            vec![Direction::LowerIsBetter],
            vec![
                FrontierPoint {
                    index: 0,
                    coords: vec![0.0],
                    objectives: vec![1.0],
                    on_frontier: true,
                    confirmed: None,
                },
                FrontierPoint {
                    index: 1,
                    coords: vec![1.0],
                    objectives: vec![2.0],
                    on_frontier: false,
                    confirmed: None,
                },
            ],
        );
        assert_eq!(plot.frontier().count(), 1);
    }
}
