//! Pluggable sinks: where rendered artifacts go.
//!
//! A [`Sink`] receives `(name, format, content)` triples; the two
//! implementations cover the pipeline's needs — [`DirSink`] writes
//! `name.ext` files under a directory (the `ipass regen` path) and
//! [`MemorySink`] collects into an ordered map (golden tests, the
//! idempotence check).

use crate::artifact::{Artifact, Format, ReportError};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// A destination for rendered artifacts.
pub trait Sink {
    /// Accept one rendered artifact.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the destination cannot be written.
    fn write(&mut self, name: &str, format: Format, content: &str) -> io::Result<()>;
}

/// Render `artifact` in every format it supports into `sink`, as
/// `regen` does.
///
/// # Errors
///
/// Returns an [`io::Error`] when the sink rejects a write. Rendering
/// itself cannot fail for supported formats.
pub fn emit(sink: &mut dyn Sink, name: &str, artifact: &Artifact) -> io::Result<()> {
    for format in artifact.formats() {
        let content = artifact
            .render(format)
            .map_err(|e: ReportError| io::Error::other(e.to_string()))?;
        sink.write(name, format, &content)?;
    }
    Ok(())
}

/// A sink writing `name.ext` files under a root directory (created on
/// first write).
#[derive(Debug, Clone)]
pub struct DirSink {
    root: PathBuf,
    written: Vec<PathBuf>,
}

impl DirSink {
    /// A sink rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> DirSink {
        DirSink {
            root: root.into(),
            written: Vec::new(),
        }
    }

    /// The files written so far, in write order.
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }

    /// The path `name`/`format` lands at.
    pub fn path_for(&self, name: &str, format: Format) -> PathBuf {
        self.root.join(format!("{name}.{}", format.ext()))
    }
}

impl Sink for DirSink {
    fn write(&mut self, name: &str, format: Format, content: &str) -> io::Result<()> {
        std::fs::create_dir_all(&self.root)?;
        let path = self.path_for(name, format);
        std::fs::write(&path, content)?;
        self.written.push(path);
        Ok(())
    }
}

/// A sink collecting into an ordered in-memory map keyed by
/// `(name, format)`.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    entries: BTreeMap<(String, Format), String>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The collected entries.
    pub fn entries(&self) -> &BTreeMap<(String, Format), String> {
        &self.entries
    }

    /// One entry's content.
    pub fn get(&self, name: &str, format: Format) -> Option<&str> {
        self.entries
            .get(&(name.to_owned(), format))
            .map(String::as_str)
    }
}

impl Sink for MemorySink {
    fn write(&mut self, name: &str, format: Format, content: &str) -> io::Result<()> {
        self.entries
            .insert((name.to_owned(), format), content.to_owned());
        Ok(())
    }
}

/// Compare a directory's committed artifact files against a freshly
/// rendered [`MemorySink`]: the drift check behind the CI gate.
/// Returns the relative file names that differ, sorted — a file is
/// stale when its content differs, when it is missing from disk, *or*
/// when it sits on disk but is no longer rendered (the orphaned pages
/// of a removed or renamed artifact).
///
/// # Errors
///
/// Returns an [`io::Error`] when an existing file or the directory
/// cannot be read.
pub fn diff_against_dir(rendered: &MemorySink, root: &Path) -> io::Result<Vec<String>> {
    let mut stale = Vec::new();
    let mut expected = std::collections::BTreeSet::new();
    for ((name, format), content) in rendered.entries() {
        let file = format!("{name}.{}", format.ext());
        let path = root.join(&file);
        let on_disk = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        if on_disk != *content {
            stale.push(file.clone());
        }
        expected.insert(file);
    }
    match std::fs::read_dir(root) {
        Ok(dir_entries) => {
            for entry in dir_entries {
                let entry = entry?;
                if !entry.file_type()?.is_file() {
                    continue;
                }
                let file = entry.file_name().to_string_lossy().into_owned();
                if !expected.contains(&file) {
                    stale.push(file);
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    stale.sort_unstable();
    Ok(stale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Cell, Table};

    fn artifact() -> Artifact {
        Artifact::Table(Table::new("t").text_column("a").row(vec![Cell::text("x")]))
    }

    #[test]
    fn memory_sink_collects_all_formats() {
        let mut sink = MemorySink::new();
        emit(&mut sink, "demo", &artifact()).unwrap();
        assert_eq!(sink.entries().len(), 4); // txt, csv, md, json — no svg for tables
        assert!(sink.get("demo", Format::Txt).unwrap().contains('x'));
        assert!(sink.get("demo", Format::Svg).is_none());
    }

    #[test]
    fn dir_sink_writes_files() {
        let dir = std::env::temp_dir().join("ipass_report_sink_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink = DirSink::new(&dir);
        emit(&mut sink, "demo", &artifact()).unwrap();
        assert_eq!(sink.written().len(), 4);
        let txt = std::fs::read_to_string(dir.join("demo.txt")).unwrap();
        assert!(txt.contains('x'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_reports_stale_and_missing() {
        let dir = std::env::temp_dir().join("ipass_report_diff_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut mem = MemorySink::new();
        emit(&mut mem, "demo", &artifact()).unwrap();
        // Nothing on disk yet: everything differs.
        let stale = diff_against_dir(&mem, &dir).unwrap();
        assert_eq!(stale.len(), 4);
        // Write them out: clean.
        let mut disk = DirSink::new(&dir);
        emit(&mut disk, "demo", &artifact()).unwrap();
        assert!(diff_against_dir(&mem, &dir).unwrap().is_empty());
        // Corrupt one: exactly that file reports.
        std::fs::write(dir.join("demo.csv"), "stale").unwrap();
        assert_eq!(diff_against_dir(&mem, &dir).unwrap(), vec!["demo.csv"]);
        // An orphan — on disk but no longer rendered — also reports.
        std::fs::write(dir.join("demo.csv"), mem.get("demo", Format::Csv).unwrap()).unwrap();
        std::fs::write(dir.join("removed_artifact.txt"), "left behind").unwrap();
        assert_eq!(
            diff_against_dir(&mem, &dir).unwrap(),
            vec!["removed_artifact.txt"]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
