//! `ipass-report` — the artifact pipeline: typed paper artifacts with
//! deterministic, pluggable output sinks.
//!
//! The paper's deliverables are *artifacts* — the Table 2 cost cards,
//! the Fig. 5 cost breakdowns, the Fig. 6 decision, the sensitivity
//! tornado, the design-space frontier. Upstream crates compute them;
//! this crate gives them one typed output layer so the CLI, the docs
//! book, CI and downstream consumers can all regenerate and diff the
//! same bytes:
//!
//! * **Values** — [`Table`] (aligned columns), [`Series`] (one x axis,
//!   n named lines), [`Breakdown`] (stacked or low/high-range bars),
//!   [`FrontierPlot`] (a screened design space with its non-dominated
//!   subset). [`Artifact`] is the sum type the sinks accept.
//! * **Sinks** — every artifact renders to aligned plain text, CSV,
//!   Markdown and JSON; [`Series`], [`Breakdown`] and [`FrontierPlot`]
//!   additionally render to standalone SVG. All five are pure
//!   functions of the value: no timestamps, no locale, no iteration
//!   over unordered containers — rendering twice yields identical
//!   bytes, which is what the `ipass regen` drift gate in CI relies
//!   on.
//! * **[`json`]** — the hand-rolled JSON layer shared by the sinks and
//!   the bench harness (the build has no network, hence no serde): a
//!   [`json::Json`] value tree with deterministic rendering, plus the
//!   tolerant object [scanner](json::objects) `bench_gate` uses to
//!   read committed baselines.
//! * **[`Sink`]** — where rendered artifacts go: a directory
//!   ([`DirSink`]), or memory ([`MemorySink`]) for golden tests and
//!   idempotence checks.
//!
//! This crate sits *below* the domain crates (it depends on nothing),
//! so `ipass-moe`, `ipass-core`, `ipass-explore` and `ipass-gps` can
//! each attach artifact adapters to their own result types.
//!
//! # Examples
//!
//! ```
//! use ipass_report::{Artifact, Cell, Format, Table};
//!
//! let table = Table::new("Fig. 6 — figure of merit")
//!     .text_column("implementation")
//!     .numeric_column("FoM", 2)
//!     .row(vec![Cell::text("PCB/SMD"), Cell::num(1.0)])
//!     .row(vec![Cell::text("MCM/FC/IP&SMD"), Cell::num(1.81)]);
//! let artifact = Artifact::Table(table);
//!
//! let txt = artifact.render(Format::Txt)?;
//! assert!(txt.contains("MCM/FC/IP&SMD"));
//! let json = artifact.render(Format::Json)?;
//! assert!(json.contains("\"kind\": \"table\""));
//! // Determinism: rendering is a pure function of the value.
//! assert_eq!(txt, artifact.render(Format::Txt)?);
//! # Ok::<(), ipass_report::ReportError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod artifact;
mod csv;
pub mod json;
mod md;
mod sink;
mod svg;
mod txt;
mod value;

pub use artifact::{Artifact, Format, ReportError};
pub use sink::{diff_against_dir, emit, DirSink, MemorySink, Sink};
pub use value::{
    Align, Breakdown, BreakdownGroup, Cell, Column, Direction, Finding, Findings, FrontierPlot,
    FrontierPoint, Segment, Series, SeriesLine, SeriesX, Table,
};

/// Deterministic shortest-round-trip rendering of an `f64` for the
/// machine-readable sinks (CSV, JSON, SVG path data).
///
/// Rust's `Display` for floats is already shortest-round-trip and
/// platform-independent; this helper only pins the two JSON-hostile
/// cases: non-finite values render as `null` and negative zero loses
/// its sign (`-0.0` and `0.0` are the same measurement).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_owned()
    } else if v == 0.0 {
        "0".to_owned()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_f64_is_deterministic_and_json_safe() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(-0.0), "0");
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        // Shortest round-trip: the classic third.
        assert_eq!(fmt_f64(0.1 + 0.2), "0.30000000000000004");
    }
}
