//! The aligned plain-text sink.
//!
//! Alignment is computed over the *rendered* cells (so precision
//! participates in the width), columns are separated by two spaces,
//! and every artifact ends with a trailing newline — the byte layout
//! golden tests pin.

use crate::value::{Align, Breakdown, FrontierPlot, Series, Table};

/// Unicode-aware-enough display width: counts chars, not bytes
/// (the artifact vocabulary is Latin plus a few symbols — `Ω`, `█`,
/// `◀`, `↓` — all single-width).
fn width(s: &str) -> usize {
    s.chars().count()
}

fn pad(s: &str, w: usize, align: Align) -> String {
    let fill = w.saturating_sub(width(s));
    match align {
        Align::Left => format!("{s}{}", " ".repeat(fill)),
        Align::Right => format!("{}{s}", " ".repeat(fill)),
    }
}

fn push_notes(out: &mut String, notes: &[String]) {
    for note in notes {
        out.push_str(&format!("note: {note}\n"));
    }
}

/// Render an aligned grid: `columns[i]` pairs a header with an
/// alignment; `rows` are pre-rendered cells.
fn grid(out: &mut String, headers: &[(String, Align)], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|(h, _)| width(h)).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(width(cell));
        }
    }
    let mut line = String::new();
    for (i, (h, align)) in headers.iter().enumerate() {
        if i > 0 {
            line.push_str("  ");
        }
        line.push_str(&pad(h, widths[i], *align));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&pad(cell, widths[i], headers[i].1));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
}

pub(crate) fn table(t: &Table) -> String {
    let mut out = format!("{}\n", t.title);
    let headers: Vec<(String, Align)> = t
        .columns
        .iter()
        .map(|c| (c.name.clone(), c.align))
        .collect();
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|row| {
            row.iter()
                .zip(&t.columns)
                .map(|(cell, col)| cell.display(col.precision))
                .collect()
        })
        .collect();
    grid(&mut out, &headers, &rows);
    push_notes(&mut out, &t.notes);
    out
}

pub(crate) fn series(s: &Series) -> String {
    let value = |v: f64| match s.precision {
        Some(p) => format!("{v:.p$}"),
        None => crate::fmt_f64(v),
    };
    let mut out = format!("{}\n", s.title);
    let mut headers = vec![(s.x_name.clone(), Align::Left)];
    headers.extend(s.lines.iter().map(|l| (l.name.clone(), Align::Right)));
    let rows: Vec<Vec<String>> = (0..s.x.len())
        .map(|i| {
            let mut row = vec![s.x.display_label(i, s.precision)];
            row.extend(s.lines.iter().map(|l| value(l.values[i])));
            row
        })
        .collect();
    grid(&mut out, &headers, &rows);
    push_notes(&mut out, &s.notes);
    out
}

/// Bar width in characters for the txt breakdown/tornado bars.
const BAR: f64 = 30.0;

pub(crate) fn breakdown(b: &Breakdown) -> String {
    let mut out = format!("{}\n", b.title);
    match b.baseline {
        Some(baseline) => {
            out.push_str(&format!("baseline {baseline:.2} {}\n", b.unit));
            let max_swing = b
                .groups
                .iter()
                .filter_map(|g| match g.segments.as_slice() {
                    [lo, hi] => Some((hi.value - lo.value).abs()),
                    _ => None,
                })
                .fold(f64::MIN_POSITIVE, f64::max);
            let mut rows = Vec::new();
            for g in &b.groups {
                let [lo, hi] = g.segments.as_slice() else {
                    panic!(
                        "breakdown {:?}: range group {:?} must have exactly [low, high] segments",
                        b.title, g.label
                    );
                };
                let swing = (hi.value - lo.value).abs();
                let chars = ((swing / max_swing) * BAR).round().max(1.0) as usize;
                rows.push(vec![
                    g.label.clone(),
                    format!("{:.2}", lo.value),
                    "…".to_owned(),
                    format!("{:.2}", hi.value),
                    "█".repeat(chars),
                ]);
            }
            let headers = [
                ("parameter".to_owned(), Align::Left),
                ("low".to_owned(), Align::Right),
                ("".to_owned(), Align::Left),
                ("high".to_owned(), Align::Right),
                ("swing".to_owned(), Align::Left),
            ];
            grid(&mut out, &headers, &rows);
        }
        None => {
            for g in &b.groups {
                let total: f64 = g.segments.iter().map(|s| s.value).sum();
                out.push_str(&format!("{}  (total {:.2} {})\n", g.label, total, b.unit));
                let denom = if total == 0.0 { 1.0 } else { total };
                for seg in &g.segments {
                    let chars = ((seg.value / denom).abs() * BAR).round() as usize;
                    out.push_str(&format!(
                        "  {:<24} {:>10.2}  ({:>5.1} %)  {}\n",
                        seg.label,
                        seg.value,
                        100.0 * seg.value / denom,
                        "█".repeat(chars.max(1))
                    ));
                }
                for c in &g.callouts {
                    out.push_str(&format!(
                        "  {:<24} {:>10.2}  ({:>5.1} %)\n",
                        format!("thereof: {}", c.label),
                        c.value,
                        100.0 * c.value / denom,
                    ));
                }
            }
        }
    }
    push_notes(&mut out, &b.notes);
    out
}

pub(crate) fn frontier(f: &FrontierPlot) -> String {
    let members: Vec<_> = f.frontier().collect();
    let confirmed = f.points.iter().filter(|p| p.confirmed.is_some()).count();
    let mut out = format!(
        "{}\nfrontier: {} of {} screened points",
        f.title,
        members.len(),
        f.points.len()
    );
    if confirmed > 0 {
        out.push_str(&format!(", {confirmed} MC-confirmed"));
    }
    out.push('\n');
    let mut headers = vec![("point".to_owned(), Align::Right)];
    headers.extend(f.axes.iter().map(|a| (a.clone(), Align::Right)));
    headers.extend(
        f.objectives
            .iter()
            .zip(&f.directions)
            .map(|(o, d)| (format!("{o} {}", d.arrow()), Align::Right)),
    );
    let rows: Vec<Vec<String>> = members
        .iter()
        .map(|m| {
            let mut row = vec![m.index.to_string()];
            row.extend(m.coords.iter().map(|v| format!("{v:.4}")));
            row.extend(m.objectives.iter().map(|v| format!("{v:.4}")));
            row
        })
        .collect();
    grid(&mut out, &headers, &rows);
    push_notes(&mut out, &f.notes);
    out
}

#[cfg(test)]
mod tests {
    use crate::value::{Cell, SeriesX};
    use crate::{Breakdown, Segment, Series, Table};

    #[test]
    fn table_aligns_and_trims() {
        let t = Table::new("t")
            .text_column("name")
            .numeric_column("v", 1)
            .row(vec![Cell::text("long-label"), Cell::num(1.0)])
            .row(vec![Cell::text("x"), Cell::num(12.25)]);
        let txt = t.to_txt();
        assert_eq!(
            txt,
            "t\nname           v\nlong-label   1.0\nx           12.2\n"
        );
    }

    #[test]
    fn stacked_breakdown_draws_shares() {
        let b = Breakdown::new("costs", "cu").group(
            "sol 2",
            vec![Segment::new("direct", 75.0), Segment::new("yield", 25.0)],
        );
        let txt = b.to_txt();
        assert!(txt.contains("sol 2"));
        assert!(txt.contains("75.0 %") || txt.contains(" 75.0"));
        assert!(txt.contains('█'));
    }

    #[test]
    fn tornado_bars_scale_with_swing() {
        let b = Breakdown::new("tornado", "cu")
            .with_baseline(100.0)
            .range("big", 80.0, 120.0)
            .range("small", 99.0, 101.0);
        let txt = b.to_txt();
        assert!(txt.contains("baseline 100.00 cu"));
        let big_bar = txt.lines().find(|l| l.contains("big")).unwrap();
        let small_bar = txt.lines().find(|l| l.contains("small")).unwrap();
        assert!(
            big_bar.matches('█').count() > small_bar.matches('█').count(),
            "{txt}"
        );
    }

    #[test]
    fn series_uses_x_labels() {
        let s =
            Series::new("s", "case", SeriesX::Labels(vec!["0805".into()])).line("body", vec![2.0]);
        assert!(s.to_txt().contains("0805"));
    }
}
