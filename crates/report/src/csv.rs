//! The CSV sink: RFC-4180-style quoting, `\n` line endings, full
//! float precision ([`crate::fmt_f64`]), headers always present.
//! Titles and notes are not part of the data and are omitted.

use crate::value::{Breakdown, Cell, FrontierPlot, Series, Table};

/// Quote a field when it contains a comma, a quote or a newline.
fn field(s: &str) -> String {
    if s.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

fn line(out: &mut String, fields: &[String]) {
    let rendered: Vec<String> = fields.iter().map(|f| field(f)).collect();
    out.push_str(&rendered.join(","));
    out.push('\n');
}

fn cell_csv(cell: &Cell) -> String {
    match cell {
        Cell::Empty => String::new(),
        Cell::Text(s) => s.clone(),
        Cell::Int(v) => v.to_string(),
        Cell::Num(v) => crate::fmt_f64(*v),
    }
}

pub(crate) fn table(t: &Table) -> String {
    let mut out = String::new();
    line(
        &mut out,
        &t.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>(),
    );
    for row in &t.rows {
        line(&mut out, &row.iter().map(cell_csv).collect::<Vec<_>>());
    }
    out
}

pub(crate) fn series(s: &Series) -> String {
    let mut out = String::new();
    let mut headers = vec![s.x_name.clone()];
    headers.extend(s.lines.iter().map(|l| l.name.clone()));
    line(&mut out, &headers);
    for i in 0..s.x.len() {
        let mut row = vec![s.x.label(i)];
        row.extend(s.lines.iter().map(|l| crate::fmt_f64(l.values[i])));
        line(&mut out, &row);
    }
    out
}

pub(crate) fn breakdown(b: &Breakdown) -> String {
    let mut out = String::new();
    match b.baseline {
        Some(baseline) => {
            line(
                &mut out,
                &["parameter", "low", "high", "swing", "baseline"].map(String::from),
            );
            for g in &b.groups {
                let [lo, hi] = g.segments.as_slice() else {
                    panic!("range breakdown group {:?} must be [low, high]", g.label);
                };
                line(
                    &mut out,
                    &[
                        g.label.clone(),
                        crate::fmt_f64(lo.value),
                        crate::fmt_f64(hi.value),
                        crate::fmt_f64((hi.value - lo.value).abs()),
                        crate::fmt_f64(baseline),
                    ],
                );
            }
        }
        None => {
            line(
                &mut out,
                &["group", "segment", "additive", "value"].map(String::from),
            );
            for g in &b.groups {
                for seg in &g.segments {
                    line(
                        &mut out,
                        &[
                            g.label.clone(),
                            seg.label.clone(),
                            "true".to_owned(),
                            crate::fmt_f64(seg.value),
                        ],
                    );
                }
                for c in &g.callouts {
                    line(
                        &mut out,
                        &[
                            g.label.clone(),
                            c.label.clone(),
                            "false".to_owned(),
                            crate::fmt_f64(c.value),
                        ],
                    );
                }
            }
        }
    }
    out
}

pub(crate) fn frontier(f: &FrontierPlot) -> String {
    let mut out = String::new();
    let mut headers = vec!["point".to_owned()];
    headers.extend(f.axes.iter().cloned());
    headers.extend(f.objectives.iter().cloned());
    headers.push("on_frontier".to_owned());
    headers.extend(f.objectives.iter().map(|o| format!("{o} (mc)")));
    line(&mut out, &headers);
    for p in &f.points {
        let mut row = vec![p.index.to_string()];
        row.extend(p.coords.iter().map(|v| crate::fmt_f64(*v)));
        row.extend(p.objectives.iter().map(|v| crate::fmt_f64(*v)));
        row.push(p.on_frontier.to_string());
        match &p.confirmed {
            Some(vals) => row.extend(vals.iter().map(|v| crate::fmt_f64(*v))),
            None => row.extend(f.objectives.iter().map(|_| String::new())),
        }
        line(&mut out, &row);
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::value::{Cell, SeriesX};
    use crate::{Breakdown, Series, Table};

    #[test]
    fn quoting_is_rfc4180ish() {
        let t = Table::new("t")
            .text_column("label")
            .numeric_column("v", 2)
            .row(vec![Cell::text("a, \"quoted\" name"), Cell::num(1.5)]);
        assert_eq!(t.to_csv(), "label,v\n\"a, \"\"quoted\"\" name\",1.5\n");
    }

    #[test]
    fn series_full_precision() {
        let s = Series::new("s", "x", SeriesX::Values(vec![0.1])).line("y", vec![0.1 + 0.2]);
        assert_eq!(s.to_csv(), "x,y\n0.1,0.30000000000000004\n");
    }

    #[test]
    fn tornado_rows_carry_baseline() {
        let b = Breakdown::new("t", "cu")
            .with_baseline(10.0)
            .range("p", 9.0, 11.5);
        assert_eq!(
            b.to_csv(),
            "parameter,low,high,swing,baseline\np,9,11.5,2.5,10\n"
        );
    }
}
