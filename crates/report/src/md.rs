//! The Markdown sink: pipe tables with alignment markers, the title as
//! a bold caption, notes as blockquotes. Display precision follows the
//! column spec (like the txt sink); pipes in labels are escaped.

use crate::value::{Align, Breakdown, FrontierPlot, Series, Table};

fn esc(s: &str) -> String {
    s.replace('|', "\\|")
}

fn pipe_row(out: &mut String, cells: &[String]) {
    out.push_str("| ");
    out.push_str(&cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | "));
    out.push_str(" |\n");
}

fn separator(out: &mut String, aligns: &[Align]) {
    out.push('|');
    for a in aligns {
        out.push_str(match a {
            Align::Left => " :-- |",
            Align::Right => " --: |",
        });
    }
    out.push('\n');
}

fn caption_and_notes(title: &str, body: String, notes: &[String]) -> String {
    let mut out = format!("**{}**\n\n{body}", esc(title));
    if !notes.is_empty() {
        out.push('\n');
        for n in notes {
            out.push_str(&format!("> {n}\n"));
        }
    }
    out
}

pub(crate) fn table(t: &Table) -> String {
    let mut body = String::new();
    pipe_row(
        &mut body,
        &t.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>(),
    );
    separator(
        &mut body,
        &t.columns.iter().map(|c| c.align).collect::<Vec<_>>(),
    );
    for row in &t.rows {
        pipe_row(
            &mut body,
            &row.iter()
                .zip(&t.columns)
                .map(|(cell, col)| cell.display(col.precision))
                .collect::<Vec<_>>(),
        );
    }
    caption_and_notes(&t.title, body, &t.notes)
}

pub(crate) fn series(s: &Series) -> String {
    let mut body = String::new();
    let mut headers = vec![s.x_name.clone()];
    headers.extend(s.lines.iter().map(|l| l.name.clone()));
    pipe_row(&mut body, &headers);
    let mut aligns = vec![Align::Left];
    aligns.extend(s.lines.iter().map(|_| Align::Right));
    separator(&mut body, &aligns);
    let value = |v: f64| match s.precision {
        Some(p) => format!("{v:.p$}"),
        None => crate::fmt_f64(v),
    };
    for i in 0..s.x.len() {
        let mut row = vec![s.x.display_label(i, s.precision)];
        row.extend(s.lines.iter().map(|l| value(l.values[i])));
        pipe_row(&mut body, &row);
    }
    caption_and_notes(&s.title, body, &s.notes)
}

pub(crate) fn breakdown(b: &Breakdown) -> String {
    let mut body = String::new();
    match b.baseline {
        Some(baseline) => {
            pipe_row(
                &mut body,
                &["parameter", "low", "high", "swing"].map(String::from),
            );
            separator(
                &mut body,
                &[Align::Left, Align::Right, Align::Right, Align::Right],
            );
            for g in &b.groups {
                let [lo, hi] = g.segments.as_slice() else {
                    panic!("range breakdown group {:?} must be [low, high]", g.label);
                };
                pipe_row(
                    &mut body,
                    &[
                        g.label.clone(),
                        format!("{:.2}", lo.value),
                        format!("{:.2}", hi.value),
                        format!("{:.2}", (hi.value - lo.value).abs()),
                    ],
                );
            }
            body.push_str(&format!("\nbaseline: {:.2} {}\n", baseline, b.unit));
        }
        None => {
            pipe_row(
                &mut body,
                &["group", "segment", "value", "share"].map(String::from),
            );
            separator(
                &mut body,
                &[Align::Left, Align::Left, Align::Right, Align::Right],
            );
            for g in &b.groups {
                let total: f64 = g.segments.iter().map(|s| s.value).sum();
                let denom = if total == 0.0 { 1.0 } else { total };
                for seg in &g.segments {
                    pipe_row(
                        &mut body,
                        &[
                            g.label.clone(),
                            seg.label.clone(),
                            format!("{:.2}", seg.value),
                            format!("{:.1} %", 100.0 * seg.value / denom),
                        ],
                    );
                }
                for c in &g.callouts {
                    pipe_row(
                        &mut body,
                        &[
                            g.label.clone(),
                            format!("thereof: {}", c.label),
                            format!("{:.2}", c.value),
                            format!("{:.1} %", 100.0 * c.value / denom),
                        ],
                    );
                }
            }
        }
    }
    caption_and_notes(&b.title, body, &b.notes)
}

pub(crate) fn frontier(f: &FrontierPlot) -> String {
    let mut body = String::new();
    let mut headers = vec!["point".to_owned()];
    headers.extend(f.axes.iter().cloned());
    headers.extend(
        f.objectives
            .iter()
            .zip(&f.directions)
            .map(|(o, d)| format!("{o} {}", d.arrow())),
    );
    pipe_row(&mut body, &headers);
    let mut aligns = vec![Align::Right];
    aligns.extend(f.axes.iter().map(|_| Align::Right));
    aligns.extend(f.objectives.iter().map(|_| Align::Right));
    separator(&mut body, &aligns);
    for m in f.frontier() {
        let mut row = vec![m.index.to_string()];
        row.extend(m.coords.iter().map(|v| format!("{v:.4}")));
        row.extend(m.objectives.iter().map(|v| format!("{v:.4}")));
        pipe_row(&mut body, &row);
    }
    body.push_str(&format!(
        "\nfrontier: {} of {} screened points\n",
        f.frontier().count(),
        f.points.len()
    ));
    caption_and_notes(&f.title, body, &f.notes)
}

#[cfg(test)]
mod tests {
    use crate::value::Cell;
    use crate::Table;

    #[test]
    fn pipe_table_shape() {
        let t = Table::new("T|itle")
            .text_column("name")
            .numeric_column("v", 1)
            .row(vec![Cell::text("a|b"), Cell::num(2.0)])
            .note("a note");
        let md = t.to_md();
        assert!(md.starts_with("**T\\|itle**\n\n| name | v |\n| :-- | --: |\n"));
        assert!(md.contains("| a\\|b | 2.0 |"));
        assert!(md.contains("> a note"));
    }
}
