//! Hand-rolled JSON: a deterministic writer for the sinks and a
//! tolerant object scanner for readers of committed baselines.
//!
//! The build environment has no network, hence no serde; this module
//! is the one JSON implementation the workspace shares. The writer
//! side is a plain value tree ([`Json`]) whose rendering preserves
//! insertion order and formats floats shortest-round-trip
//! ([`crate::fmt_f64`]). The reader side ([`objects`],
//! [`field_value`]) replaces the brace-splitting scanner that used to
//! live inside `bench_gate`: it is string- and nesting-aware, so an
//! escaped quote or a nested object inside a value can no longer
//! corrupt a lookup.

use std::fmt;

/// A JSON value tree. Object member order is the insertion order —
/// rendering is fully deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A float (non-finite values render as `null`).
    Num(f64),
    /// An integer (kept exact; `u64::MAX` fits).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from ordered members.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// An array of numbers.
    pub fn nums(values: impl IntoIterator<Item = f64>) -> Json {
        Json::Arr(values.into_iter().map(Json::Num).collect())
    }

    /// An array of strings.
    pub fn strs<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Json {
        Json::Arr(values.into_iter().map(Json::str).collect())
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render on a single line with no whitespace and no trailing
    /// newline — the form a newline-delimited protocol can frame.
    /// Deterministic like [`Json::render`]: member order is insertion
    /// order, floats are shortest-round-trip.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&crate::fmt_f64(*v)),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&crate::fmt_f64(*v)),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Escape a string for a JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// The reader side: tolerant object scanning.
// ---------------------------------------------------------------------

/// Advance past a string literal; `i` points at the opening quote.
/// Returns the index just past the closing quote (or `len` when
/// unterminated — the scanner degrades gracefully on truncated input).
fn skip_string(bytes: &[u8], mut i: usize) -> usize {
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// The top-level object slices of a JSON document (brace to brace,
/// inclusive), in document order. "Top-level" means not nested inside
/// another *object*: the objects of a baseline array document are
/// returned even though the array encloses them, while objects nested
/// as member values stay inside their parent's slice. String contents
/// — including escaped quotes and braces — are skipped, never parsed.
pub fn objects(json: &str) -> Vec<&str> {
    let bytes = json.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => i = skip_string(bytes, i),
            b'{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    out.push(&json[start..=i]);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Advance past one JSON value starting at `i` (string, object, array,
/// or scalar token). Returns the index just past the value.
fn skip_value(bytes: &[u8], mut i: usize) -> usize {
    match bytes.get(i) {
        Some(b'"') => skip_string(bytes, i),
        Some(b'{') | Some(b'[') => {
            let mut depth = 0usize;
            while i < bytes.len() {
                match bytes[i] {
                    b'"' => {
                        i = skip_string(bytes, i);
                        continue;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            bytes.len()
        }
        _ => {
            // Scalar token: runs to the next comma or closing bracket.
            while i < bytes.len() && !matches!(bytes[i], b',' | b'}' | b']') {
                i += 1;
            }
            i
        }
    }
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// The raw value token of the *top-level* member `field` inside one
/// object slice (as produced by [`objects`]): string values keep their
/// quotes, nested objects/arrays are returned as their full slice,
/// scalars are trimmed. Keys inside nested objects or string values
/// never match — only genuine members of `obj` itself. Returns `None`
/// when the member is absent or the slice is not an object.
pub fn field_value<'a>(obj: &'a str, field: &str) -> Option<&'a str> {
    let bytes = obj.as_bytes();
    let mut i = skip_ws(bytes, 0);
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    i = skip_ws(bytes, i + 1);
    while i < bytes.len() && bytes[i] != b'}' {
        if bytes[i] != b'"' {
            return None; // malformed member list
        }
        let key_end = skip_string(bytes, i);
        let key = &obj[i + 1..key_end - 1];
        i = skip_ws(bytes, key_end);
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i = skip_ws(bytes, i + 1);
        let value_end = skip_value(bytes, i);
        if key == field {
            return Some(obj[i..value_end].trim());
        }
        i = skip_ws(bytes, value_end);
        if bytes.get(i) == Some(&b',') {
            i = skip_ws(bytes, i + 1);
        }
    }
    None
}

/// [`field_value`] with string quotes stripped — the common "give me
/// the id" accessor.
pub fn string_field<'a>(obj: &'a str, field: &str) -> Option<&'a str> {
    field_value(obj, field).map(|v| v.trim_matches('"'))
}

/// [`field_value`] parsed as a number.
pub fn number_field(obj: &str, field: &str) -> Option<f64> {
    field_value(obj, field)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_renders_deterministically() {
        let v = Json::obj(vec![
            ("id", Json::str("mc_units/100000")),
            ("ns_per_elem", Json::Num(28.5)),
            ("elements", Json::Int(100000)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let expected = "{\n  \"id\": \"mc_units/100000\",\n  \"ns_per_elem\": 28.5,\n  \"elements\": 100000,\n  \"flags\": [\n    true,\n    null\n  ]\n}\n";
        assert_eq!(v.render(), expected);
        assert_eq!(v.render(), v.render());
    }

    #[test]
    fn writer_escapes_strings() {
        let v = Json::str("say \"hi\"\n\tok\\done\u{1}");
        assert_eq!(v.render(), "\"say \\\"hi\\\"\\n\\tok\\\\done\\u0001\"\n");
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
    }

    #[test]
    fn compact_rendering_is_one_line_and_scanner_readable() {
        let v = Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("verb", Json::str("analyze")),
            ("n", Json::Num(28.5)),
            ("tags", Json::Arr(vec![Json::Int(1), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::str("v\n"))])),
        ]);
        let line = v.render_compact();
        assert_eq!(
            line,
            r#"{"ok":true,"verb":"analyze","n":28.5,"tags":[1,null],"nested":{"k":"v\n"}}"#
        );
        assert!(!line.contains('\n'), "compact form must be frameable");
        // The reader side parses what the compact writer wrote.
        assert_eq!(field_value(&line, "ok"), Some("true"));
        assert_eq!(string_field(&line, "verb"), Some("analyze"));
        assert_eq!(number_field(&line, "n"), Some(28.5));
        assert_eq!(field_value(&line, "nested"), Some(r#"{"k":"v\n"}"#));
        assert_eq!(Json::Arr(vec![]).render_compact(), "[]");
        assert_eq!(Json::Obj(vec![]).render_compact(), "{}");
    }

    #[test]
    fn objects_splits_a_baseline_array() {
        let doc = r#"[
  {"id": "a/1", "mean_ns": 100.0},
  {"id": "b/2", "mean_ns": 7.0}
]"#;
        let objs = objects(doc);
        assert_eq!(objs.len(), 2);
        assert_eq!(string_field(objs[0], "id"), Some("a/1"));
        assert_eq!(string_field(objs[1], "id"), Some("b/2"));
    }

    #[test]
    fn objects_tolerates_braces_inside_strings() {
        // The old brace-splitting scanner miscounted here: an escaped
        // quote and literal braces inside a string value.
        let doc = r#"[{"id": "w{e}ird", "note": "say \"}{\" loudly", "v": 3.0}]"#;
        let objs = objects(doc);
        assert_eq!(objs.len(), 1);
        assert_eq!(string_field(objs[0], "id"), Some("w{e}ird"));
        assert_eq!(number_field(objs[0], "v"), Some(3.0));
    }

    #[test]
    fn nested_objects_stay_inside_their_parent() {
        let doc = r#"[{"id": "outer", "meta": {"id": "inner", "k": 1}, "v": 2.0}]"#;
        let objs = objects(doc);
        assert_eq!(objs.len(), 1, "nested object must not split the parent");
        // The nested member's keys are invisible to top-level lookup…
        assert_eq!(number_field(objs[0], "k"), None);
        // …the nested object itself is returned whole…
        assert_eq!(
            field_value(objs[0], "meta"),
            Some(r#"{"id": "inner", "k": 1}"#)
        );
        // …and siblings after it still resolve.
        assert_eq!(number_field(objs[0], "v"), Some(2.0));
        assert_eq!(string_field(objs[0], "id"), Some("outer"));
    }

    #[test]
    fn field_value_ignores_field_names_in_values() {
        let obj = r#"{"git_rev": "mean_ns", "min_ns": 1.0, "mean_ns": 5.0, "max_ns": 9.0}"#;
        assert_eq!(number_field(obj, "mean_ns"), Some(5.0));
        assert_eq!(number_field(obj, "min_ns"), Some(1.0));
        assert_eq!(number_field(obj, "max_ns"), Some(9.0));
        assert_eq!(field_value(obj, "absent"), None);
    }

    #[test]
    fn field_value_tolerates_any_whitespace() {
        let spaced = "{\n  \"id\"  :  \"a/1\" ,\n\t\"ns_per_elem\" : 10.0\n}";
        assert_eq!(string_field(spaced, "id"), Some("a/1"));
        assert_eq!(number_field(spaced, "ns_per_elem"), Some(10.0));
    }

    #[test]
    fn arrays_as_values_are_skipped_whole() {
        let obj = r#"{"samples": [1, {"mean_ns": 99}, 3], "mean_ns": 5.0}"#;
        assert_eq!(number_field(obj, "mean_ns"), Some(5.0));
        assert_eq!(
            field_value(obj, "samples"),
            Some(r#"[1, {"mean_ns": 99}, 3]"#)
        );
    }

    #[test]
    fn null_and_bool_scalars_round_trip() {
        let obj = r#"{"elements": null, "ok": true, "v": -2.5e3}"#;
        assert_eq!(field_value(obj, "elements"), Some("null"));
        assert_eq!(field_value(obj, "ok"), Some("true"));
        assert_eq!(number_field(obj, "v"), Some(-2500.0));
    }

    #[test]
    fn truncated_input_degrades_gracefully() {
        // An unterminated string value yields the partial raw token
        // rather than a panic or an out-of-bounds slice.
        assert_eq!(
            field_value(r#"{"id": "unterminated"#, "id"),
            Some("\"unterminated")
        );
        assert_eq!(field_value("", "id"), None);
        assert_eq!(field_value("not json", "id"), None);
        assert!(objects(r#"[{"id": "no close""#).is_empty());
    }

    #[test]
    fn scanner_reads_what_the_writer_wrote() {
        let doc = Json::Arr(vec![Json::obj(vec![
            ("id", Json::str("round/trip")),
            ("note", Json::str("has \"quotes\" and {braces}")),
            ("npe", Json::Num(28.25)),
        ])])
        .render();
        let objs = objects(&doc);
        assert_eq!(objs.len(), 1);
        assert_eq!(string_field(objs[0], "id"), Some("round/trip"));
        assert_eq!(number_field(objs[0], "npe"), Some(28.25));
    }
}
