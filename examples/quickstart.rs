//! Quickstart: assess whether integrating passives pays off for a small
//! mixed-signal module.
//!
//! Run with `cargo run --example quickstart`.

use integrated_passives::core::{
    BomItem, BuildUp, CandidateScore, ChipCost, CostInputs, DecisionTable, FomWeights,
    PassivePolicy, Realization, SelectionObjective, YieldBasis,
};
use integrated_passives::units::{Area, Money, Probability};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small BOM: one ASIC, some decoupling, some bias resistors.
    let bom = vec![
        BomItem::die("ASIC")
            .with_packaged(Realization::new(Area::from_mm2(400.0), Money::new(25.0)))
            .with_wire_bond(Realization::new(Area::from_mm2(49.0), Money::new(21.0)).with_bonds(64))
            .with_flip_chip(Realization::new(Area::from_mm2(36.0), Money::new(21.0))),
        BomItem::passive("decoupling C 2.2 nF", 6)
            .with_smd(Realization::new(Area::from_mm2(4.5), Money::new(0.10)))
            .with_integrated(Realization::new(Area::from_mm2(22.0), Money::ZERO)),
        BomItem::passive("bias R 47 kΩ", 24)
            .with_smd(Realization::new(Area::from_mm2(3.75), Money::new(0.02)))
            .with_integrated(Realization::new(Area::from_mm2(0.13), Money::ZERO)),
    ];

    // 2. Candidate build-ups: the PCB reference vs a passives-optimized MCM.
    let candidates = [
        BuildUp::pcb_reference(),
        BuildUp::mcm_flip_chip(PassivePolicy::Optimized),
    ];

    let mut scores = Vec::new();
    for buildup in &candidates {
        // Select a technology per component (the "passives optimized" rule).
        let plan = buildup.plan(&bom, SelectionObjective::MinArea)?;
        let area = plan.area();

        // A cost/yield card in the shape of the paper's Table 2.
        let is_pcb = !buildup.substrate().supports_integrated_passives();
        let inputs = CostInputs {
            substrate_cost_per_cm2: Money::new(if is_pcb { 0.1 } else { 2.25 }),
            substrate_fab_yield_per_cm2: Some(Probability::new(if is_pcb {
                0.9999
            } else {
                0.95
            })?),
            substrate_yield: Probability::new(if is_pcb { 0.9999 } else { 0.95 })?,
            chips: vec![ChipCost::new(
                "ASIC",
                Money::new(if is_pcb { 25.0 } else { 21.0 }),
                Probability::new(if is_pcb { 0.999 } else { 0.97 })?,
            )],
            chip_attach_cost_per_die: Money::new(if is_pcb { 0.15 } else { 0.10 }),
            chip_attach_yield: Probability::new(if is_pcb { 0.975 } else { 0.99 })?,
            wire_bond_cost_per_bond: Money::new(0.01),
            wire_bond_yield: Probability::new(0.9999)?,
            smd_parts_cost_override: None,
            smd_attach_cost_per_part: Money::new(0.01),
            smd_attach_yield: Probability::new(0.9999)?,
            packaging: (!is_pcb).then(|| (Money::new(3.50), Probability::clamped(0.968))),
            final_test_cost: Money::new(2.0),
            fault_coverage: Probability::new(0.99)?,
            yield_basis: YieldBasis::PerStep,
        };

        // Cost with test and yield aspects (Eq. 1).
        let report = plan
            .production_flow(area.substrate_area, &inputs)?
            .analyze()?;

        println!("{plan}");
        println!(
            "  final cost/shipped: {} (direct {}, yield loss {})\n",
            report.final_cost_per_shipped(),
            report.direct_cost_per_shipped(),
            report.yield_loss_per_shipped()
        );
        scores.push(CandidateScore::new(
            buildup.to_string(),
            1.0, // no RF filters in this toy BOM
            area.module_area,
            report.final_cost_per_shipped(),
        ));
    }

    // 3. The figure of merit decides.
    let table = DecisionTable::rank(&scores, "PCB/SMD", FomWeights::unweighted())?;
    println!("{table}");
    Ok(())
}
