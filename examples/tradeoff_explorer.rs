//! Explore beyond the paper's four candidates: rank *every* structurally
//! viable build-up of the GPS front end, under both selection objectives
//! and several figure-of-merit weightings.
//!
//! Run with `cargo run --example tradeoff_explorer`.

use integrated_passives::core::{
    BuildUp, CandidateScore, DecisionTable, FomWeights, SelectionObjective,
};
use integrated_passives::gps::{bom::gps_bom, filters::assess_performance, table2::cost_inputs};
use integrated_passives::units::Money;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (objective, objective_name) in [
        (
            SelectionObjective::MinArea,
            "minimum area (the paper's rule)",
        ),
        (
            SelectionObjective::MinCost {
                substrate_cost_per_cm2: Money::new(2.25),
                smd_assembly_cost: Money::new(0.01),
            },
            "minimum cost",
        ),
    ] {
        println!("== objective: {objective_name} ==");
        let mut candidates = Vec::new();
        for buildup in BuildUp::enumerate() {
            let plan = buildup.plan(&gps_bom(&buildup), objective)?;
            let area = plan.area();
            let report = plan
                .production_flow(area.substrate_area, &cost_inputs(&buildup))?
                .analyze()?;
            let perf = assess_performance(&buildup);
            println!(
                "  {:<22} {:>4} SMDs, {:>3} IPs, module {:>7.0} mm², cost {:>7.1}, perf {:.2}",
                buildup.to_string(),
                plan.smd_placements(),
                plan.integrated_count(),
                area.module_area.mm2(),
                report.final_cost_per_shipped().units(),
                perf.overall
            );
            candidates.push(CandidateScore::new(
                buildup.to_string(),
                perf.overall,
                area.module_area,
                report.final_cost_per_shipped(),
            ));
        }

        for (weights, label) in [
            (FomWeights::unweighted(), "paper weights (1/1/1)"),
            (
                FomWeights {
                    performance: 3.0,
                    size: 1.0,
                    cost: 1.0,
                },
                "performance-critical (3/1/1)",
            ),
            (
                FomWeights {
                    performance: 1.0,
                    size: 0.25,
                    cost: 2.0,
                },
                "cost-driven (1/0.25/2)",
            ),
        ] {
            let table = DecisionTable::rank(&candidates, "PCB/SMD", weights)?;
            println!(
                "  {label}: best = {} (FoM {:.2})",
                table.best().name,
                table.best().fom
            );
        }
        println!();
    }
    Ok(())
}
