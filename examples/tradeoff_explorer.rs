//! Explore beyond the paper's four candidates: rank *every* structurally
//! viable build-up of the GPS front end, under both selection objectives
//! and several figure-of-merit weightings — reported through the
//! artifact pipeline's typed decision tables.
//!
//! Run with `cargo run --example tradeoff_explorer`.

use integrated_passives::core::BuildUp;
use integrated_passives::core::{CandidateScore, DecisionTable, FomWeights, SelectionObjective};
use integrated_passives::gps::{bom::gps_bom, filters::assess_performance, table2::cost_inputs};
use integrated_passives::units::Money;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (objective, objective_name) in [
        (
            SelectionObjective::MinArea,
            "minimum area (the paper's rule)",
        ),
        (
            SelectionObjective::MinCost {
                substrate_cost_per_cm2: Money::new(2.25),
                smd_assembly_cost: Money::new(0.01),
            },
            "minimum cost",
        ),
    ] {
        let mut candidates = Vec::new();
        for buildup in BuildUp::enumerate() {
            let plan = buildup.plan(&gps_bom(&buildup), objective)?;
            let area = plan.area();
            let report = plan
                .production_flow(area.substrate_area, &cost_inputs(&buildup))?
                .analyze()?;
            candidates.push(CandidateScore::new(
                buildup.to_string(),
                assess_performance(&buildup).overall,
                area.module_area,
                report.final_cost_per_shipped(),
            ));
        }

        for (weights, label) in [
            (FomWeights::unweighted(), "paper weights (1/1/1)"),
            (
                FomWeights {
                    performance: 3.0,
                    size: 1.0,
                    cost: 1.0,
                },
                "performance-critical (3/1/1)",
            ),
            (
                FomWeights {
                    performance: 1.0,
                    size: 0.25,
                    cost: 2.0,
                },
                "cost-driven (1/0.25/2)",
            ),
        ] {
            let table = DecisionTable::rank(&candidates, "PCB/SMD", weights)?;
            // One typed artifact per weighting; assert on the values,
            // not on rendered strings.
            let artifact =
                table.artifact_titled(format!("all viable build-ups — {objective_name}, {label}"));
            assert_eq!(artifact.rows.len(), candidates.len());
            assert!(table.best().fom >= 1.0, "the reference never wins by < 1");
            println!("{}", artifact.to_txt());
        }

        // Under the paper's weights the full-integration candidates
        // must not beat the hybrid IP&SMD build-up.
        let paper_table = DecisionTable::rank(&candidates, "PCB/SMD", FomWeights::unweighted())?;
        assert!(
            paper_table.best().name.contains("IP&SMD"),
            "the paper's hybrid solution stays on top under (1/1/1)"
        );
    }
    Ok(())
}
