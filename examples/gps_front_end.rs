//! The full paper reproduction: every table and figure of *Assessing the
//! Cost Effectiveness of Integrated Passives* (DATE 2000), regenerated.
//!
//! Run with `cargo run --example gps_front_end` for everything, or pass
//! any of `--fig1 --table1 --table2 --chain --fig3 --fig4 --fig5
//! --fig5-mc --fig6 --final --sensitivity` to select artifacts.

use integrated_passives::core::BuildUp;
use integrated_passives::gps::paper::SOLUTION_NAMES;
use integrated_passives::gps::{bom, experiments, filters, table2};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    if want("--fig1") {
        println!("{}", experiments::fig1().render());
    }
    if want("--table1") {
        println!("{}", experiments::table1()?.render());
    }
    if want("--table2") {
        println!("Table 2 — cost & yield cards");
        for (buildup, label) in BuildUp::paper_solutions().iter().zip(SOLUTION_NAMES) {
            let card = table2::cost_inputs(buildup);
            println!(
                "  {label}: substrate {}/cm² (yield {}), chips {}, test {} (coverage {})",
                card.substrate_cost_per_cm2,
                card.substrate_yield,
                card.chips
                    .iter()
                    .map(|c| format!("{} {} ({})", c.name, c.cost, c.incoming_yield))
                    .collect::<Vec<_>>()
                    .join(" + "),
                card.final_test_cost,
                card.fault_coverage,
            );
        }
        println!();
    }
    if want("--chain") {
        println!("Fig. 2 — the analog chain (performance assessment, §4.1)");
        for buildup in BuildUp::paper_solutions() {
            println!("  {}", filters::assess_performance(&buildup));
        }
        println!("\nreceiver budgets (gain / noise figure, Friis):");
        for buildup in BuildUp::paper_solutions() {
            let chain = integrated_passives::gps::chain::chain_budget(&buildup);
            println!(
                "  {:<24} NF {:.2} dB, gain {:.1} dB",
                chain.buildup,
                chain.noise_figure_db(),
                chain.gain_db()
            );
        }
        println!();
    }
    if want("--fig3") {
        println!("{}", experiments::fig3()?.render());
    }
    if want("--fig4") {
        println!("{}", experiments::fig4(42)?.render());
    }
    if want("--fig5") {
        println!("{}", experiments::fig5()?.render());
    }
    if want("--fig5-mc") {
        println!(
            "Fig. 5 cross-check by Monte Carlo (100 000 units/solution):\n{}",
            experiments::fig5_monte_carlo(100_000, 2000)?.render()
        );
    }
    if want("--fig6") {
        println!("{}", experiments::fig6()?.render());
    }
    if want("--final") {
        println!("{}", experiments::final_design_check()?.render());
    }
    if want("--sensitivity") {
        println!(
            "Sensitivity of solution 4's final cost (tornado):\n{}",
            experiments::sensitivity(3)?.render()
        );
    }
    if all {
        // The per-solution selection tables, for the curious.
        println!("Per-solution technology selections (methodology step 1):");
        for buildup in BuildUp::paper_solutions() {
            let plan = buildup.plan(
                &bom::gps_bom(&buildup),
                integrated_passives::core::SelectionObjective::MinArea,
            )?;
            println!("{plan}");
        }
    }
    Ok(())
}
