//! The full paper reproduction: every table and figure of *Assessing the
//! Cost Effectiveness of Integrated Passives* (DATE 2000), regenerated
//! through the artifact pipeline (`integrated_passives::artifacts`).
//!
//! Run with `cargo run --example gps_front_end` for everything, or pass
//! any of `--fig1 --table1 --table2 --chain --fig3 --fig4 --fig5
//! --fig5-mc --fig6 --final --sensitivity` to select artifacts.
//!
//! The same artifacts are scriptable from the shell:
//! `cargo run --release --bin ipass -- artifact fig6 --format json`.

use integrated_passives::artifacts;
use integrated_passives::core::BuildUp;
use integrated_passives::gps::{bom, experiments, filters};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    // The registry renders every named paper artifact; the blocks below
    // only add the cross-checks and narrative the registry doesn't carry.
    for (flag, name) in [
        ("--fig1", "fig1"),
        ("--table1", "table1"),
        ("--table2", "table2"),
        ("--fig3", "fig3"),
        ("--fig4", "fig4"),
        ("--fig5", "fig5"),
        ("--fig6", "fig6"),
        ("--sensitivity", "sensitivity"),
    ] {
        if want(flag) {
            let spec = artifacts::find(name).expect("registered paper artifact");
            println!(
                "{}",
                spec.build()?
                    .render(integrated_passives::report::Format::Txt)?
            );
        }
    }

    if want("--fig6") {
        // Assert on the artifact *value*, not its rendering: the
        // paper's headline decision must hold.
        let fig6 = experiments::fig6()?;
        assert!(
            fig6.table.best().name.contains("IP&SMD"),
            "solution 4 must win the figure of merit"
        );
    }

    if want("--chain") {
        println!("Fig. 2 — the analog chain (performance assessment, §4.1)");
        for buildup in BuildUp::paper_solutions() {
            println!("  {}", filters::assess_performance(&buildup));
        }
        println!("\nreceiver budgets (gain / noise figure, Friis):");
        for buildup in BuildUp::paper_solutions() {
            let chain = integrated_passives::gps::chain::chain_budget(&buildup);
            println!(
                "  {:<24} NF {:.2} dB, gain {:.1} dB",
                chain.buildup,
                chain.noise_figure_db(),
                chain.gain_db()
            );
        }
        println!();
    }
    if want("--fig5-mc") {
        // The Monte Carlo cross-check of Fig. 5 (the paper's actual
        // procedure) — compare the artifact values, engine vs engine.
        let analytic = experiments::fig5()?;
        let mc = experiments::fig5_monte_carlo(100_000, 2000)?;
        println!(
            "Fig. 5 cross-check by Monte Carlo (100 000 units/solution):\n{}",
            mc.artifact_table().to_txt()
        );
        for (a, m) in analytic.rows.iter().zip(mc.rows.iter()) {
            assert!(
                (a.measured_percent - m.measured_percent).abs() < 1.0,
                "{}: analytic {:.1}% vs MC {:.1}%",
                a.label,
                a.measured_percent,
                m.measured_percent
            );
        }
    }
    if want("--final") {
        println!("{}", experiments::final_design_check()?.render());
    }
    if all {
        // The per-solution selection tables, for the curious.
        println!("Per-solution technology selections (methodology step 1):");
        for buildup in BuildUp::paper_solutions() {
            let plan = buildup.plan(
                &bom::gps_bom(&buildup),
                integrated_passives::core::SelectionObjective::MinArea,
            )?;
            println!("{plan}");
        }
    }
    Ok(())
}
