//! Design-space exploration of the paper's production economics.
//!
//! The paper costs each solution at one volume and one substrate-yield
//! card. This example asks the family question instead: across the
//! whole volume × substrate-yield plane, what is each solution's
//! cost/shipped-fraction Pareto frontier — and does solution 4 beat
//! solution 2 everywhere, or only somewhere?
//!
//! Run with `cargo run --release --example design_space`.

use integrated_passives::gps::experiments::design_space;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Solution 2 (MCM-D/WB/SMD): 16 × 16 analytic screen, Monte Carlo
    // confirmation only for the frontier-adjacent band.
    let sol2 = design_space(1, 16)?;
    println!("{}", sol2.render());

    // Solution 4 (MCM-D/FC/IP&SMD): the paper's winner.
    let sol4 = design_space(3, 16)?;
    println!("{}", sol4.render());

    // Frontier diff: which of solution 2's trade-off points does
    // solution 4 dominate outright, and vice versa?
    let diff = sol4.refined.frontier().diff(sol2.refined.frontier())?;
    println!(
        "frontier diff — solution 4 vs solution 2:\n  \
         sol4: {}/{} members survive sol2's frontier\n  \
         sol2: {}/{} members survive sol4's frontier\n  \
         verdict: {}",
        diff.left_surviving.len(),
        diff.left_total,
        diff.right_surviving.len(),
        diff.right_total,
        if diff.left_strictly_better() {
            "solution 4 dominates across the whole explored family"
        } else if diff.right_strictly_better() {
            "solution 2 dominates across the whole explored family"
        } else {
            "the candidates split the family — the choice depends on the scenario"
        }
    );
    Ok(())
}
