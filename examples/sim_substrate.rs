//! Demonstrate the `ipass-sim` determinism contract from the outside:
//! the same seeded Monte Carlo run is bit-identical for any thread
//! count, early stopping trims the unit budget without breaking that,
//! and subassembly starvation surfaces as a typed error.
//!
//! Run with `cargo run --release --example sim_substrate`.

use integrated_passives::core::{BuildUp, SelectionObjective};
use integrated_passives::gps::{bom::gps_bom, table2::cost_inputs};
use integrated_passives::moe::{
    CostCategory, Flow, Line, Part, Process, SimOptions, StopRule, Test, YieldModel,
};

fn main() {
    // The paper's solution-2 production flow, simulated at 100k units.
    let buildup = BuildUp::paper_solutions()[1];
    let plan = buildup
        .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
        .expect("solution 2 plans");
    let flow = plan
        .production_flow(plan.area().substrate_area, &cost_inputs(&buildup))
        .expect("solution 2 builds a flow");

    println!("== determinism: seeded run across thread counts ==");
    let baseline = flow
        .simulate(&SimOptions::new(100_000).with_seed(7))
        .expect("simulation runs");
    for threads in [1usize, 2, 4, 8] {
        let report = flow
            .simulate(&SimOptions::new(100_000).with_seed(7).with_threads(threads))
            .expect("simulation runs");
        println!(
            "threads={threads}: shipped {:.0}, final cost/shipped {:.6} — {}",
            report.shipped(),
            report.final_cost_per_shipped().units(),
            if report == baseline {
                "bit-identical"
            } else {
                "MISMATCH!"
            }
        );
        assert_eq!(report, baseline);
    }

    println!("\n== sequential early stopping (±0.5 % shipped-fraction CI) ==");
    let adaptive = flow
        .simulate_adaptive(
            &SimOptions::new(1_000_000).with_seed(7).with_threads(4),
            StopRule::half_width_95(0.005),
        )
        .expect("adaptive simulation runs");
    println!(
        "stopped early: {} after {:.0} of 1,000,000 units (shipped fraction {:.4})",
        adaptive.stopped_early,
        adaptive.report.started(),
        adaptive.report.shipped_fraction()
    );

    println!("\n== subassembly retry budget is a typed error, not a hang ==");
    let dead_sub = Line::builder("dead-sub", Part::new("blank", CostCategory::Substrate))
        .process(Process::new("kill").with_yield(YieldModel::percent(0.0)))
        .test(Test::new("probe"))
        .build()
        .expect("line builds");
    let starving = Flow::new(
        Line::builder("main", Part::new("pcb", CostCategory::Substrate))
            .attach(integrated_passives::moe::Attach::new("join").input(dead_sub, 1))
            .build()
            .expect("line builds"),
    );
    match starving.simulate(&SimOptions::new(100).with_seed(1).with_retry_budget(50)) {
        Err(e) => println!("error (as expected): {e}"),
        Ok(_) => unreachable!("a 0 % yield subassembly cannot deliver"),
    }
}
