//! The "rule of thumb" scenario from the paper's introduction: for a
//! purely digital board (passives are pull-ups and decoupling), at what
//! resistor count does the integrated-passives substrate become the
//! cheaper choice? (Bleiweiss & Roelants [2] claim "more than 10
//! resistors".)
//!
//! Run with `cargo run --example digital_decoupling`.

use integrated_passives::core::{
    BomItem, BuildUp, ChipCost, CostInputs, PassivePolicy, Realization, SelectionObjective,
    YieldBasis,
};
use integrated_passives::moe::find_crossover;
use integrated_passives::units::{Area, Money, Probability};

fn digital_bom(resistor_count: u32) -> Vec<BomItem> {
    vec![
        BomItem::die("logic ASIC")
            .with_packaged(Realization::new(Area::from_mm2(300.0), Money::new(12.0)))
            .with_flip_chip(Realization::new(Area::from_mm2(25.0), Money::new(10.0)))
            .with_wire_bond(
                Realization::new(Area::from_mm2(36.0), Money::new(10.0)).with_bonds(80),
            ),
        BomItem::passive("pull-up R 10 kΩ", resistor_count)
            .with_smd(Realization::new(Area::from_mm2(3.75), Money::new(0.02)))
            .with_integrated(Realization::new(Area::from_mm2(0.08), Money::ZERO)),
    ]
}

fn cost_card(is_pcb: bool) -> CostInputs {
    let p = Probability::clamped;
    CostInputs {
        substrate_cost_per_cm2: Money::new(if is_pcb { 0.1 } else { 2.0 }),
        substrate_fab_yield_per_cm2: Some(p(if is_pcb { 0.9999 } else { 0.97 })),
        substrate_yield: p(if is_pcb { 0.9999 } else { 0.97 }),
        chips: vec![ChipCost::new(
            "logic ASIC",
            Money::new(if is_pcb { 12.0 } else { 10.0 }),
            p(if is_pcb { 0.999 } else { 0.98 }),
        )],
        chip_attach_cost_per_die: Money::new(if is_pcb { 0.15 } else { 0.10 }),
        chip_attach_yield: p(if is_pcb { 0.97 } else { 0.99 }),
        wire_bond_cost_per_bond: Money::new(0.01),
        wire_bond_yield: p(0.9999),
        smd_parts_cost_override: None,
        smd_attach_cost_per_part: Money::new(0.01),
        smd_attach_yield: p(0.9999),
        packaging: (!is_pcb).then(|| (Money::new(2.0), p(0.99))),
        final_test_cost: Money::new(1.5),
        fault_coverage: p(0.99),
        yield_basis: YieldBasis::PerStep,
    }
}

fn final_cost(buildup: &BuildUp, n: u32) -> Result<f64, Box<dyn std::error::Error>> {
    let plan = buildup.plan(&digital_bom(n), SelectionObjective::MinArea)?;
    let is_pcb = !buildup.substrate().supports_integrated_passives();
    let report = plan
        .production_flow(plan.area().substrate_area, &cost_card(is_pcb))?
        .analyze()?;
    Ok(report.final_cost_per_shipped().units())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pcb = BuildUp::pcb_reference();
    let mcm = BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated);

    println!("resistors   PCB/SMD   MCM-D/IP   cheaper");
    let mut pcb_curve = Vec::new();
    let mut mcm_curve = Vec::new();
    for n in (2..=60).step_by(2) {
        let c_pcb = final_cost(&pcb, n)?;
        let c_mcm = final_cost(&mcm, n)?;
        pcb_curve.push((f64::from(n), c_pcb));
        mcm_curve.push((f64::from(n), c_mcm));
        if n % 8 == 2 {
            println!(
                "{n:>9} {c_pcb:>9.2} {c_mcm:>10.2}   {}",
                if c_mcm < c_pcb { "integrated" } else { "SMD" }
            );
        }
    }

    match find_crossover(&mcm_curve, &pcb_curve)? {
        Some(x) => println!(
            "\ncrossover at ≈ {x:.1} resistors — compare the literature's \"more than 10\" [2].\n\
             (The exact point depends on the substrate premium; sweep it in bench `ablations`.)"
        ),
        None => println!("\nno crossover in the swept range"),
    }
    Ok(())
}
