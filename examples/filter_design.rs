//! Design and analyze the GPS receiver's filters in each passive
//! technology: frequency responses, spec scoring, and tolerance yield.
//!
//! Run with `cargo run --example filter_design`.

use integrated_passives::gps::filters::{
    if_filter, if_filter_spec, image_frequency, lna_filter, lna_filter_spec, TechnologyQ,
};
use integrated_passives::passives::Tolerance;
use integrated_passives::rf::{linspace, tolerance_yield, Branch, Immittance, Ladder};
use integrated_passives::units::{Capacitance, Frequency, Inductance};

fn main() {
    let technologies = [
        ("SMD modules", TechnologyQ::smd_modules()),
        ("fully integrated", TechnologyQ::integrated()),
        ("hybrid (sol. 4)", TechnologyQ::hybrid()),
    ];

    println!("== LNA output filter: Cauer-type BP, 1.575 GHz pass / 1.225 GHz image ==");
    for (name, q) in &technologies {
        let design = lna_filter(q);
        let report = lna_filter_spec().evaluate(design.ladder());
        println!(
            "{name:<18}: passband {:.2} dB (budget {:.1}), image rejection {:.1} dB, score {:.2}",
            report.passband_loss_db(),
            report.loss_budget_db(),
            design.ladder().insertion_loss_db(image_frequency()),
            report.performance_score()
        );
    }

    println!("\n-- integrated LNA filter response --");
    let design = lna_filter(&TechnologyQ::integrated());
    let grid = linspace(Frequency::from_giga(1.0), Frequency::from_giga(2.2), 13);
    println!("f [GHz]   IL [dB]");
    for (f, s) in design.ladder().sweep(&grid) {
        println!("{:>7.3}   {:>7.2}", f.gigahertz(), s.insertion_loss_db());
    }

    println!("\n== IF filter: 2-pole Tchebyscheff BP at 175 MHz ==");
    for (name, q) in &technologies {
        let design = if_filter(q);
        let report = if_filter_spec().evaluate(design.ladder());
        println!(
            "{name:<18}: midband {:.2} dB (budget {:.1}), score {:.2} — {}",
            report.passband_loss_db(),
            report.loss_budget_db(),
            report.performance_score(),
            if report.meets_spec() {
                "meets spec"
            } else {
                "MISSES SPEC"
            }
        );
    }

    println!("\n== Tolerance Monte Carlo: hybrid IF filter, as-fabricated IPs ==");
    // Perturb the hybrid filter's elements with their technology
    // tolerances: ±2 % SMD inductors, ±15 % integrated capacitors. The
    // hybrid already sits at ≈4.5 dB nominally (hence its 0.7 score);
    // ask how much *additional* loss the IP tolerances cost against a
    // relaxed 5.5 dB system budget.
    let spec = integrated_passives::rf::FilterSpec::new(
        "IF (relaxed system budget)",
        integrated_passives::gps::filters::intermediate_frequency(),
        5.5,
    );
    let nominal = if_filter(&TechnologyQ::hybrid());
    let result = tolerance_yield(&spec, 2000, 42, |rng| {
        let branches = nominal
            .ladder()
            .branches()
            .iter()
            .map(|b| match b {
                Branch::Series(imm) => Branch::Series(perturb(imm, rng)),
                Branch::Shunt(imm) => Branch::Shunt(perturb(imm, rng)),
            })
            .collect();
        Ladder::new(
            branches,
            nominal.ladder().source_ohms(),
            nominal.ladder().load_ohms(),
        )
    });
    println!(
        "parametric yield {:.1} % over {} samples (mean loss {:.2} dB, worst {:.2} dB; nominal {:.2} dB)",
        result.yield_fraction() * 100.0,
        result.samples(),
        result.mean_passband_loss_db(),
        result.worst_passband_loss_db(),
        if_filter_spec().evaluate(nominal.ladder()).passband_loss_db(),
    );
    println!("→ the §4.1 'borderline' judgement, quantified: wide IP tolerances\n  detune the resonators and erode even a relaxed loss budget.");
}

fn perturb(imm: &Immittance, rng: &mut integrated_passives::sim::SimRng) -> Immittance {
    let tol_l = Tolerance::percent(2.0); // SMD multilayer inductors
    let tol_c = Tolerance::percent(15.0); // integrated capacitors
    match imm {
        Immittance::Inductor { henries, loss } => Immittance::Inductor {
            henries: Inductance::new(tol_l.sample_normal(henries.henries(), rng)),
            loss: *loss,
        },
        Immittance::Capacitor { farads, loss } => Immittance::Capacitor {
            farads: Capacitance::new(tol_c.sample_normal(farads.farads(), rng)),
            loss: *loss,
        },
        Immittance::Resistor(r) => Immittance::Resistor(*r),
        Immittance::Series(parts) => {
            Immittance::Series(parts.iter().map(|p| perturb(p, rng)).collect())
        }
        Immittance::Parallel(parts) => {
            Immittance::Parallel(parts.iter().map(|p| perturb(p, rng)).collect())
        }
    }
}
