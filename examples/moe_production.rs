//! A tour of the MOE cost modeling engine (the paper's Fig. 4): Monte
//! Carlo vs analytic evaluation, defect pareto, rework loops, nested
//! known-good-substrate lines, and NRE amortization.
//!
//! Run with `cargo run --example moe_production`.

use integrated_passives::gps::experiments;
use integrated_passives::moe::{
    sweep, Attach, CostCategory, FailAction, Flow, Line, Part, Process, Rework, SimOptions,
    StepCost, Test, YieldModel,
};
use integrated_passives::units::{Money, Probability};

fn p(v: f64) -> Probability {
    Probability::clamped(v)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The paper's Fig. 4 model, simulated. --------------------------
    let fig4 = experiments::fig4(42)?;
    println!("{}", fig4.render());
    println!("{}", fig4.summary.report.render());

    // --- Analytic vs Monte Carlo on the same flow. ---------------------
    println!("== engine agreement ==");
    let flow = demo_flow()?;
    let analytic = flow.analyze()?;
    for units in [1_000u64, 10_000, 100_000] {
        let mc = flow.simulate(&SimOptions::new(units).with_seed(7))?;
        println!(
            "MC {units:>7} units: final {} vs analytic {} ({:+.3} %)",
            mc.final_cost_per_shipped(),
            analytic.final_cost_per_shipped(),
            (mc.final_cost_per_shipped() / analytic.final_cost_per_shipped() - 1.0) * 100.0
        );
    }

    // --- Rework: recover failed modules instead of scrapping. ----------
    println!("\n== rework ablation ==");
    let scrap = demo_flow()?.analyze()?;
    let rework = demo_flow_with(FailAction::Rework(Rework::new(
        StepCost::fixed(Money::new(1.0)),
        p(0.65),
        2,
    )))?
    .analyze()?;
    println!(
        "scrap-on-fail: {} | rework(65 %, ≤2 attempts): {} | shipped {:.2} % → {:.2} %",
        scrap.final_cost_per_shipped(),
        rework.final_cost_per_shipped(),
        scrap.shipped_fraction() * 100.0,
        rework.shipped_fraction() * 100.0
    );

    // --- Known-good substrate as a nested line. -------------------------
    println!("\n== nested known-good-substrate line ==");
    let kgs = kgs_flow()?.analyze()?;
    println!(
        "module with pre-tested substrate: final {}, yield loss {} (substrate scrap booked)",
        kgs.final_cost_per_shipped(),
        kgs.yield_loss_per_shipped()
    );
    for (label, share) in kgs.defect_pareto() {
        println!("  defect source {label:<38} {:.2} %", share * 100.0);
    }

    // --- NRE amortization: when does an IP mask set pay off? ------------
    println!("\n== NRE amortization (50 000-unit mask set) ==");
    let points = sweep([1e3, 1e4, 1e5, 1e6], |volume| {
        Ok(demo_flow()?
            .with_nre(Money::new(50_000.0))
            .with_volume(volume as u64))
    })?;
    for pt in &points {
        println!(
            "volume {:>9}: final cost/unit {:.2}",
            pt.x as u64,
            pt.final_cost()
        );
    }
    Ok(())
}

fn demo_flow() -> Result<Flow, integrated_passives::moe::FlowError> {
    demo_flow_with(FailAction::Scrap)
}

fn demo_flow_with(on_fail: FailAction) -> Result<Flow, integrated_passives::moe::FlowError> {
    let substrate = Part::new("substrate", CostCategory::Substrate)
        .with_cost(StepCost::fixed(Money::new(12.0)))
        .with_incoming_yield(YieldModel::flat(p(0.95)));
    let die = Part::new("die", CostCategory::Chip)
        .with_cost(StepCost::fixed(Money::new(60.0)))
        .with_incoming_yield(YieldModel::flat(p(0.97)));
    Line::builder("demo module", substrate)
        .attach(
            Attach::new("die attach")
                .input(die, 1)
                .with_cost(StepCost::fixed(Money::new(0.1)))
                .with_yield(YieldModel::percent(99.0)),
        )
        .process(
            Process::new("encapsulation")
                .with_cost(StepCost::fixed(Money::new(1.5)))
                .with_yield(YieldModel::percent(98.0))
                .with_category(CostCategory::Packaging),
        )
        .test(
            Test::new("final test")
                .with_cost(StepCost::fixed(Money::new(2.0)))
                .with_coverage(p(0.98))
                .on_fail(on_fail),
        )
        .build()
        .map(Flow::new)
}

fn kgs_flow() -> Result<Flow, integrated_passives::moe::FlowError> {
    // The substrate is fabricated and probed in its own nested line;
    // only passing substrates reach module assembly.
    let substrate_line = Line::builder(
        "substrate fab",
        Part::new("raw wafer share", CostCategory::Substrate)
            .with_cost(StepCost::fixed(Money::new(6.0))),
    )
    .process(
        Process::new("thin-film deposition")
            .with_cost(StepCost::fixed(Money::new(4.0)))
            .with_yield(YieldModel::percent(88.0))
            .with_category(CostCategory::Substrate),
    )
    .test(
        Test::new("substrate probe")
            .with_cost(StepCost::fixed(Money::new(0.5)))
            .with_coverage(p(0.995)),
    )
    .build()?;

    let die = Part::new("die", CostCategory::Chip)
        .with_cost(StepCost::fixed(Money::new(60.0)))
        .with_incoming_yield(YieldModel::flat(p(0.97)));
    Line::builder(
        "module on KGS",
        Part::new("carrier tray", CostCategory::Other),
    )
    .attach(
        Attach::new("substrate + die assembly")
            .input(substrate_line, 1)
            .input(die, 1)
            .with_cost(StepCost::fixed(Money::new(0.2)))
            .with_yield(YieldModel::percent(99.0)),
    )
    .test(
        Test::new("module test")
            .with_cost(StepCost::fixed(Money::new(2.0)))
            .with_coverage(p(0.98)),
    )
    .build()
    .map(Flow::new)
}
